//! Unified one-shot GPU kernels over F-COO (paper §IV-C/D).
//!
//! All three operations share one skeleton, which is the point of the
//! unified method:
//!
//! * the grid is two-dimensional with **one-dimensional blocks** (Fig. 4):
//!   `bIdx` walks partitions of non-zeros, `bIdy` walks columns of the dense
//!   factor matrices, so the block shape never depends on the rank;
//! * each thread owns `threadlen` consecutive non-zeros, computes the
//!   per-non-zero product (`val × U(k,:)` for SpTTM, `val × B(j,:) ∗ C(k,:)`
//!   for SpMTTKRP, `val × (U₂(j,:) ⊗ U₃(k,:))` for SpTTMc) and reduces along
//!   `bf` segments;
//! * segments are finalized with a **segmented scan** (warp shuffles + one
//!   shared-memory stage), not atomics: segments fully inside a partition
//!   are written exactly once; segments spanning partition/block boundaries
//!   are carried via adjacent synchronization (fused kernels) and account
//!   for at most two extra writes per partition;
//! * factor-matrix rows are read through the **read-only data cache**, which
//!   is where tensor density shows up in performance (§V-A).
//!
//! [`LaunchConfig`] exposes the optimization toggles for the ablation
//! benches: `use_segscan = false` degenerates to per-element atomics (the
//! COO baseline behaviour), `use_rocache = false` reads factors from plain
//! global memory, `use_fusion = false` pays a separate carry-resolution
//! kernel launch.

use crate::device::{DeviceMatrix, FcooDevice};
use crate::modes::TensorOp;
use gpu_sim::memory::DeviceBuffer;
use gpu_sim::scan::{block_segscan_cycles, warp_segscan_cycles};
use gpu_sim::stats::BlockStats;
use gpu_sim::{GpuDevice, KernelStats, OutOfMemory};
use tensor_core::{DenseMatrix, SemiSparseTensor};

/// Warp-shuffle operations each BF-COO gather run spends demultiplexing the
/// bucketed lanes back onto their owning threads (arXiv:1904.03329 §4: one
/// ballot, two index shuffles, two value shuffles per 32-non-zero run).
pub const BUCKET_SHUFFLE_OPS: u64 = 5;

/// How the unified skeleton batches its scattered factor-matrix reads.
///
/// `Strided` is the paper's F-COO schedule: iteration `i` gathers lane
/// `l`'s non-zero `l·threadlen + i`, so one warp-wide batch mixes addresses
/// `threadlen` apart in the non-zero stream. `Bucketed` is the BF-COO
/// schedule: the warp walks its non-zero span in aligned 32-element runs,
/// issuing one batch **per factor** per run — consecutive non-zeros share
/// segment rows under the format's sort order, so each batch dedups to the
/// run's distinct-row count (the per-run bucket metadata streamed alongside
/// the tensor). Both schedules cover exactly the same non-zeros; only the
/// batching — and therefore the cache behaviour — differs.
#[derive(Clone, Copy)]
pub(crate) enum GatherLayout<'a> {
    /// F-COO lane-strided gathers (one batch per threadlen iteration).
    Strided,
    /// BF-COO run-bucketed gathers over per-product-mode bucket arrays.
    Bucketed {
        /// One distinct-row-count array per product mode, one entry per
        /// aligned 32-non-zero run.
        buckets: &'a [DeviceBuffer<u32>],
    },
}

/// Tunable launch parameters and optimization toggles.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// Threads per (one-dimensional) block; must be a multiple of 32.
    pub block_size: usize,
    /// Route factor-matrix reads through the read-only data cache.
    pub use_rocache: bool,
    /// Reduce segments with segmented scan; `false` falls back to one
    /// atomic per non-zero (COO-style accumulation).
    pub use_segscan: bool,
    /// Fuse product/scan/accumulate kernels with adjacent synchronization;
    /// `false` pays an extra kernel launch for boundary-carry resolution.
    pub use_fusion: bool,
}

impl Default for LaunchConfig {
    fn default() -> Self {
        LaunchConfig {
            block_size: 128,
            use_rocache: true,
            use_segscan: true,
            use_fusion: true,
        }
    }
}

impl LaunchConfig {
    /// A config with the given block size and all optimizations on.
    pub fn with_block_size(block_size: usize) -> Self {
        LaunchConfig {
            block_size,
            ..Default::default()
        }
    }
}

/// Sparse tensor-times-matrix `Y = X ×ₙ U` with the unified kernel.
///
/// `fcoo` must have been preprocessed with [`TensorOp::SpTtm`] on the same
/// mode that `u` multiplies. Returns the semi-sparse result and the
/// simulated kernel statistics.
///
/// # Panics
/// If `fcoo` was preprocessed for a different operation or `u` has the wrong
/// row count.
pub fn spttm(
    device: &GpuDevice,
    fcoo: &FcooDevice,
    u: &DeviceMatrix,
    cfg: &LaunchConfig,
) -> Result<(SemiSparseTensor, KernelStats), OutOfMemory> {
    spttm_with_layout(device, fcoo, u, cfg, GatherLayout::Strided)
}

pub(crate) fn spttm_with_layout(
    device: &GpuDevice,
    fcoo: &FcooDevice,
    u: &DeviceMatrix,
    cfg: &LaunchConfig,
    layout: GatherLayout<'_>,
) -> Result<(SemiSparseTensor, KernelStats), OutOfMemory> {
    let mode = match fcoo.op {
        TensorOp::SpTtm { mode } => mode,
        other => panic!("F-COO was preprocessed for {other:?}, not SpTTM"),
    };
    assert_eq!(
        u.rows(),
        fcoo.shape[mode],
        "matrix rows must match product-mode size"
    );
    let r = u.cols();
    let segments = fcoo.segments();
    let out = device.memory().alloc_zeroed::<f32>(segments * r)?;
    let stats = spttm_into_with_layout(device, fcoo, u, cfg, &out, layout);
    let mut result = SemiSparseTensor::new(fcoo.shape.clone(), mode, r);
    let values = out.to_vec();
    for seg in 0..segments {
        let coord: Vec<u32> = fcoo
            .segment_coords_host
            .iter()
            .map(|column| column[seg])
            .collect();
        result.push_fiber(&coord, &values[seg * r..(seg + 1) * r]);
    }
    Ok((result, stats))
}

/// [`spttm`] into a caller-provided `segments × R` output buffer.
///
/// The buffer is accumulated into, not cleared: an all-zero buffer
/// reproduces [`spttm`] exactly, while a buffer whose first row carries a
/// running partial sum extends that sum — the out-of-core path's
/// chunk-boundary seeding (`crates/ooc`). Returns the kernel statistics;
/// the caller assembles the semi-sparse result from the buffer and the
/// format's `segment_coords_host`.
///
/// # Panics
/// If the format/op/factor shapes are inconsistent or `out` is not exactly
/// `segments × R` elements.
pub fn spttm_into(
    device: &GpuDevice,
    fcoo: &FcooDevice,
    u: &DeviceMatrix,
    cfg: &LaunchConfig,
    out: &DeviceBuffer<f32>,
) -> KernelStats {
    spttm_into_with_layout(device, fcoo, u, cfg, out, GatherLayout::Strided)
}

pub(crate) fn spttm_into_with_layout(
    device: &GpuDevice,
    fcoo: &FcooDevice,
    u: &DeviceMatrix,
    cfg: &LaunchConfig,
    out: &DeviceBuffer<f32>,
    layout: GatherLayout<'_>,
) -> KernelStats {
    let mode = match fcoo.op {
        TensorOp::SpTtm { mode } => mode,
        other => panic!("F-COO was preprocessed for {other:?}, not SpTTM"),
    };
    assert_eq!(
        u.rows(),
        fcoo.shape[mode],
        "matrix rows must match product-mode size"
    );
    let r = u.cols();
    assert_eq!(
        out.len(),
        fcoo.segments() * r,
        "output buffer size mismatch"
    );
    let k_indices = &fcoo.product_indices[0];
    let factor_ws = u.rows() * u.cols() * 4;
    run_unified(
        device,
        fcoo,
        cfg,
        layout,
        r,
        out,
        r,
        factor_ws,
        |seg| seg,
        None,
        2,
        |nz, col| fcoo.values.get(nz) * u.get(k_indices.get(nz) as usize, col),
        |nz, col, addrs| addrs.push(u.addr(k_indices.get(nz) as usize, col)),
    )
}

/// Sparse MTTKRP `M = X₍ₙ₎ (⊙ factors)` with the unified one-shot kernel.
///
/// `factors` holds one device matrix per tensor mode; the entry at the
/// operating mode is ignored. Returns the dense `shape[mode] × R` result.
///
/// # Panics
/// If `fcoo` was preprocessed for a different operation or factor shapes are
/// inconsistent.
pub fn spmttkrp(
    device: &GpuDevice,
    fcoo: &FcooDevice,
    factors: &[&DeviceMatrix],
    cfg: &LaunchConfig,
) -> Result<(DenseMatrix, KernelStats), OutOfMemory> {
    spmttkrp_with_layout(device, fcoo, factors, cfg, GatherLayout::Strided)
}

pub(crate) fn spmttkrp_with_layout(
    device: &GpuDevice,
    fcoo: &FcooDevice,
    factors: &[&DeviceMatrix],
    cfg: &LaunchConfig,
    layout: GatherLayout<'_>,
) -> Result<(DenseMatrix, KernelStats), OutOfMemory> {
    let mode = match fcoo.op {
        TensorOp::SpMttkrp { mode } => mode,
        other => panic!("F-COO was preprocessed for {other:?}, not SpMTTKRP"),
    };
    let order = fcoo.shape.len();
    assert_eq!(factors.len(), order, "one factor per mode required");
    let product_modes = &fcoo.classification.product_modes;
    let r = factors[product_modes[0]].cols();
    for &m in product_modes {
        assert_eq!(
            factors[m].rows(),
            fcoo.shape[m],
            "factor {m} row count mismatch"
        );
        assert_eq!(factors[m].cols(), r, "factor {m} column count mismatch");
    }
    let rows = fcoo.shape[mode];
    let out = device.memory().alloc_zeroed::<f32>(rows * r)?;
    let stats = spmttkrp_into_with_layout(device, fcoo, factors, cfg, &out, layout);
    Ok((DenseMatrix::from_vec(rows, r, out.to_vec()), stats))
}

/// [`spmttkrp`] into a caller-provided `shape[mode] × R` output buffer.
///
/// Accumulates into `out` without clearing it (see [`spttm_into`] for the
/// out-of-core seeding contract). Returns the kernel statistics.
///
/// # Panics
/// If the format/op/factor shapes are inconsistent or `out` is not exactly
/// `shape[mode] × R` elements.
pub fn spmttkrp_into(
    device: &GpuDevice,
    fcoo: &FcooDevice,
    factors: &[&DeviceMatrix],
    cfg: &LaunchConfig,
    out: &DeviceBuffer<f32>,
) -> KernelStats {
    spmttkrp_into_with_layout(device, fcoo, factors, cfg, out, GatherLayout::Strided)
}

pub(crate) fn spmttkrp_into_with_layout(
    device: &GpuDevice,
    fcoo: &FcooDevice,
    factors: &[&DeviceMatrix],
    cfg: &LaunchConfig,
    out: &DeviceBuffer<f32>,
    layout: GatherLayout<'_>,
) -> KernelStats {
    let mode = match fcoo.op {
        TensorOp::SpMttkrp { mode } => mode,
        other => panic!("F-COO was preprocessed for {other:?}, not SpMTTKRP"),
    };
    let order = fcoo.shape.len();
    assert_eq!(factors.len(), order, "one factor per mode required");
    let product_modes = &fcoo.classification.product_modes;
    let r = factors[product_modes[0]].cols();
    for &m in product_modes {
        assert_eq!(
            factors[m].rows(),
            fcoo.shape[m],
            "factor {m} row count mismatch"
        );
        assert_eq!(factors[m].cols(), r, "factor {m} column count mismatch");
    }
    let rows = fcoo.shape[mode];
    assert_eq!(out.len(), rows * r, "output buffer size mismatch");
    let slice_of_seg = &fcoo.segment_coords_host[0];
    let product_factors: Vec<&DeviceMatrix> = product_modes.iter().map(|&m| factors[m]).collect();
    let factor_ws: usize = product_factors
        .iter()
        .map(|f| f.rows() * f.cols() * 4)
        .sum();
    run_unified(
        device,
        fcoo,
        cfg,
        layout,
        r,
        out,
        r,
        factor_ws,
        |seg| slice_of_seg[seg] as usize,
        Some(&fcoo.segment_coords[0]),
        1 + product_modes.len() as u64,
        |nz, col| {
            let mut product = fcoo.values.get(nz);
            for (factor, indices) in product_factors.iter().zip(&fcoo.product_indices) {
                product *= factor.get(indices.get(nz) as usize, col);
            }
            product
        },
        |nz, col, addrs| {
            for (factor, indices) in product_factors.iter().zip(&fcoo.product_indices) {
                addrs.push(factor.addr(indices.get(nz) as usize, col));
            }
        },
    )
}

/// Sparse TTM-chain on 3-order tensors (paper Eq. 4): the matricized
/// `Y₍ₙ₎ = Σ X(i,j,k) · (U_a(a,:) ⊗ U_b(b,:))`.
///
/// `factor_a`/`factor_b` correspond to the two product modes in ascending
/// mode order. Returns the `shape[mode] × (R_a · R_b)` result.
pub fn spttmc(
    device: &GpuDevice,
    fcoo: &FcooDevice,
    factor_a: &DeviceMatrix,
    factor_b: &DeviceMatrix,
    cfg: &LaunchConfig,
) -> Result<(DenseMatrix, KernelStats), OutOfMemory> {
    assert_eq!(
        fcoo.shape.len(),
        3,
        "use spttmc_norder for non-3-order tensors"
    );
    let product_modes = &fcoo.classification.product_modes;
    assert_eq!(
        factor_a.rows(),
        fcoo.shape[product_modes[0]],
        "factor A row mismatch"
    );
    assert_eq!(
        factor_b.rows(),
        fcoo.shape[product_modes[1]],
        "factor B row mismatch"
    );
    spttmc_norder(device, fcoo, &[factor_a, factor_b], cfg)
}

/// Sparse TTM-chain for tensors of any order: one factor per product mode in
/// ascending mode order; the output has `Π R_p` columns with the last
/// product mode varying fastest (matching `tensor_core::ops::spttmc_norder`).
pub fn spttmc_norder(
    device: &GpuDevice,
    fcoo: &FcooDevice,
    product_factors: &[&DeviceMatrix],
    cfg: &LaunchConfig,
) -> Result<(DenseMatrix, KernelStats), OutOfMemory> {
    spttmc_norder_with_layout(device, fcoo, product_factors, cfg, GatherLayout::Strided)
}

pub(crate) fn spttmc_norder_with_layout(
    device: &GpuDevice,
    fcoo: &FcooDevice,
    product_factors: &[&DeviceMatrix],
    cfg: &LaunchConfig,
    layout: GatherLayout<'_>,
) -> Result<(DenseMatrix, KernelStats), OutOfMemory> {
    let mode = match fcoo.op {
        TensorOp::SpTtmc { mode } => mode,
        other => panic!("F-COO was preprocessed for {other:?}, not SpTTMc"),
    };
    let product_modes = &fcoo.classification.product_modes;
    assert_eq!(
        product_factors.len(),
        product_modes.len(),
        "one factor per product mode required"
    );
    for (&m, factor) in product_modes.iter().zip(product_factors) {
        assert_eq!(
            factor.rows(),
            fcoo.shape[m],
            "factor row mismatch on mode {m}"
        );
    }
    let columns: usize = product_factors.iter().map(|f| f.cols()).product();
    let rows = fcoo.shape[mode];
    let out = device.memory().alloc_zeroed::<f32>(rows * columns)?;
    let stats = spttmc_norder_into_with_layout(device, fcoo, product_factors, cfg, &out, layout);
    Ok((DenseMatrix::from_vec(rows, columns, out.to_vec()), stats))
}

/// [`spttmc_norder`] into a caller-provided `shape[mode] × Π R_p` output
/// buffer.
///
/// Accumulates into `out` without clearing it (see [`spttm_into`] for the
/// out-of-core seeding contract). Returns the kernel statistics.
///
/// # Panics
/// If the format/op/factor shapes are inconsistent or `out` is not exactly
/// `shape[mode] × Π R_p` elements.
pub fn spttmc_norder_into(
    device: &GpuDevice,
    fcoo: &FcooDevice,
    product_factors: &[&DeviceMatrix],
    cfg: &LaunchConfig,
    out: &DeviceBuffer<f32>,
) -> KernelStats {
    spttmc_norder_into_with_layout(
        device,
        fcoo,
        product_factors,
        cfg,
        out,
        GatherLayout::Strided,
    )
}

pub(crate) fn spttmc_norder_into_with_layout(
    device: &GpuDevice,
    fcoo: &FcooDevice,
    product_factors: &[&DeviceMatrix],
    cfg: &LaunchConfig,
    out: &DeviceBuffer<f32>,
    layout: GatherLayout<'_>,
) -> KernelStats {
    let mode = match fcoo.op {
        TensorOp::SpTtmc { mode } => mode,
        other => panic!("F-COO was preprocessed for {other:?}, not SpTTMc"),
    };
    let product_modes = &fcoo.classification.product_modes;
    assert_eq!(
        product_factors.len(),
        product_modes.len(),
        "one factor per product mode required"
    );
    for (&m, factor) in product_modes.iter().zip(product_factors) {
        assert_eq!(
            factor.rows(),
            fcoo.shape[m],
            "factor row mismatch on mode {m}"
        );
    }
    let columns: usize = product_factors.iter().map(|f| f.cols()).product();
    // Mixed-radix strides over the Kronecker column: last factor fastest.
    let mut strides = vec![1usize; product_factors.len()];
    for p in (0..product_factors.len().saturating_sub(1)).rev() {
        strides[p] = strides[p + 1] * product_factors[p + 1].cols();
    }
    let rows = fcoo.shape[mode];
    assert_eq!(out.len(), rows * columns, "output buffer size mismatch");
    let slice_of_seg = &fcoo.segment_coords_host[0];
    let factor_ws: usize = product_factors
        .iter()
        .map(|f| f.rows() * f.cols() * 4)
        .sum();
    let digit = |col: usize, p: usize| (col / strides[p]) % product_factors[p].cols();
    run_unified(
        device,
        fcoo,
        cfg,
        layout,
        columns,
        out,
        columns,
        factor_ws,
        |seg| slice_of_seg[seg] as usize,
        Some(&fcoo.segment_coords[0]),
        1 + product_factors.len() as u64,
        |nz, col| {
            let mut product = fcoo.values.get(nz);
            for (p, (factor, indices)) in product_factors
                .iter()
                .zip(&fcoo.product_indices)
                .enumerate()
            {
                product *= factor.get(indices.get(nz) as usize, digit(col, p));
            }
            product
        },
        |nz, col, addrs| {
            for (p, (factor, indices)) in product_factors
                .iter()
                .zip(&fcoo.product_indices)
                .enumerate()
            {
                addrs.push(factor.addr(indices.get(nz) as usize, digit(col, p)));
            }
        },
    )
}

/// The shared unified kernel skeleton.
///
/// `row_of_seg` maps a segment ordinal to its output row; `coord_buffer`, if
/// given, is the device array those lookups read (charged on finalization).
/// `product` computes one non-zero's full contribution for one column;
/// `factor_addrs` lists the factor-matrix addresses that contribution reads;
/// `factor_ws` is the total bytes of those (reused) factor matrices, which
/// bounds whether misses stay in the device L2.
#[allow(clippy::too_many_arguments)]
fn run_unified<RowOf, Product, Addrs>(
    device: &GpuDevice,
    fcoo: &FcooDevice,
    cfg: &LaunchConfig,
    layout: GatherLayout<'_>,
    columns: usize,
    out: &DeviceBuffer<f32>,
    out_stride: usize,
    factor_ws: usize,
    row_of_seg: RowOf,
    coord_buffer: Option<&DeviceBuffer<u32>>,
    compute_per_element: u64,
    product: Product,
    factor_addrs: Addrs,
) -> KernelStats
where
    RowOf: Fn(usize) -> usize + Sync,
    Product: Fn(usize, usize) -> f32 + Sync,
    Addrs: Fn(usize, usize, &mut Vec<u64>) + Sync,
{
    let threadlen = fcoo.threadlen;
    let nnz = fcoo.nnz;
    let partitions = fcoo.partitions();
    let grid_x = partitions.div_ceil(cfg.block_size);
    let warp = 32usize;
    // Shared memory: one carry (value + open-flag word) per warp for the
    // block-level segmented-scan combine.
    let shared_bytes = (cfg.block_size / 32) * 8;
    let mut stats =
        device.launch_with_shared((grid_x, columns), cfg.block_size, shared_bytes, |ctx| {
            let col = ctx.block_y();
            // Column-sibling blocks resident on the same SM read adjacent
            // columns of the same factor rows: one read-only cache line (8
            // floats) serves up to 8 of them, so each block is charged its
            // share of the fill (the "data reuse" of §IV-D).
            if cfg.use_rocache {
                ctx.set_rocache_sharers(columns.min(8) as u64);
            }
            let mut ro_addrs: Vec<u64> = Vec::with_capacity(2 * warp);
            let mut factor_batch: Vec<u64> = Vec::with_capacity(warp);
            let mut write_rows: Vec<u64> = Vec::with_capacity(warp);
            let mut coord_reads: Vec<u64> = Vec::with_capacity(warp);
            let mut atomic_events: Vec<(usize, f32)> = Vec::new();
            let mut any_warp_ran = false;
            for w in 0..ctx.warps_per_block() {
                let warp_first_thread = ctx.block_x() * ctx.block_threads() + w * warp;
                let warp_nnz_start = warp_first_thread * threadlen;
                if warp_nnz_start >= nnz {
                    break;
                }
                any_warp_ran = true;
                ctx.begin_warp();
                let warp_nnz_end = ((warp_first_thread + warp) * threadlen).min(nnz);
                let span = warp_nnz_end - warp_nnz_start;

                // Streaming reads of the warp's contiguous tensor region:
                // values, product-mode indices, bit flags, partition metadata.
                // The grid places all column blocks of one partition range
                // adjacently, so the bIdy = 0 block streams the region from
                // DRAM and its co-resident column siblings hit in L2 (the
                // "data reuse" optimization of §IV-D).
                let l2_hot = ctx.block_y() > 0;
                let stream = |ctx: &mut gpu_sim::BlockCtx<'_>, addr: u64, bytes: usize| {
                    if l2_hot {
                        ctx.read_global_range_l2(addr, bytes);
                    } else {
                        ctx.read_global_range(addr, bytes);
                    }
                };
                stream(ctx, fcoo.values.addr(warp_nnz_start), span * 4);
                for indices in &fcoo.product_indices {
                    stream(ctx, indices.addr(warp_nnz_start), span * 4);
                }
                // The bit-flag bytes this warp touches: its own non-zeros plus
                // the one-byte lookahead for the head flag at `pend` (clamped to
                // the last flag byte — `head(nnz)` is never read).
                let bf_first = warp_nnz_start / 8;
                let bf_last = warp_nnz_end.min(nnz - 1) / 8;
                stream(ctx, fcoo.bf.addr(bf_first), bf_last - bf_first + 1);
                let threads_here = warp.min(partitions - warp_first_thread);
                stream(
                    ctx,
                    fcoo.partition_first_segment.addr(warp_first_thread),
                    threads_here * 4,
                );
                let sf_first = warp_first_thread / 8;
                let sf_last = (warp_first_thread + threads_here - 1) / 8;
                stream(ctx, fcoo.sf.addr(sf_first), sf_last - sf_first + 1);
                if let GatherLayout::Bucketed { buckets } = layout {
                    // BF-COO also streams its per-run distinct-row counts,
                    // one array per product mode. `warp_nnz_start` is a
                    // multiple of 32 (warps start on 32-thread boundaries),
                    // so the warp's span aligns with the global runs.
                    let run_first = warp_nnz_start / 32;
                    let runs = span.div_ceil(32);
                    for bucket in buckets {
                        stream(ctx, bucket.addr(run_first), runs * 4);
                    }
                }

                // Factor-matrix reads (scattered by product-mode indices →
                // read-only cache territory) and the product FLOPs. The
                // strided schedule batches lane-strided addresses per
                // threadlen iteration; the bucketed schedule batches each
                // aligned 32-non-zero run per factor, so consecutive
                // non-zeros sharing a segment row collapse onto the same
                // cache lines (the load balancing of arXiv:1904.03329).
                match layout {
                    GatherLayout::Strided => {
                        for i in 0..threadlen {
                            ro_addrs.clear();
                            for lane in 0..warp {
                                let nz = (warp_first_thread + lane) * threadlen + i;
                                if nz < nnz {
                                    factor_addrs(nz, col, &mut ro_addrs);
                                }
                            }
                            if ro_addrs.is_empty() {
                                break;
                            }
                            if cfg.use_rocache {
                                ctx.read_readonly_ws(&ro_addrs, factor_ws);
                            } else {
                                ctx.read_global_ws(&ro_addrs, factor_ws);
                            }
                            ctx.compute(compute_per_element);
                        }
                    }
                    GatherLayout::Bucketed { .. } => {
                        let runs = span.div_ceil(32);
                        for r in 0..runs {
                            let run_start = warp_nnz_start + r * 32;
                            let run_end = (run_start + 32).min(warp_nnz_end);
                            ro_addrs.clear();
                            for nz in run_start..run_end {
                                factor_addrs(nz, col, &mut ro_addrs);
                            }
                            if ro_addrs.is_empty() {
                                break;
                            }
                            // Each non-zero pushed the same per-factor
                            // address group; demux into one ≤32-address
                            // batch per factor so the read-only cache's
                            // line-dedup window sees a single factor's rows.
                            let live = run_end - run_start;
                            let per_nz = ro_addrs.len() / live;
                            for f in 0..per_nz {
                                factor_batch.clear();
                                factor_batch.extend(
                                    ro_addrs
                                        .iter()
                                        .enumerate()
                                        .filter(|(j, _)| j % per_nz == f)
                                        .map(|(_, &a)| a),
                                );
                                if cfg.use_rocache {
                                    ctx.read_readonly_ws(&factor_batch, factor_ws);
                                } else {
                                    ctx.read_global_ws(&factor_batch, factor_ws);
                                }
                            }
                            ctx.shuffle(BUCKET_SHUFFLE_OPS);
                            ctx.compute(compute_per_element);
                        }
                    }
                }

                // Functional per-lane segment accumulation.
                write_rows.clear();
                coord_reads.clear();
                atomic_events.clear();
                for lane in 0..warp {
                    let thread = warp_first_thread + lane;
                    let pstart = thread * threadlen;
                    if pstart >= nnz {
                        break;
                    }
                    let pend = ((thread + 1) * threadlen).min(nnz);
                    // Heads seen so far, including any before this partition.
                    let mut heads = fcoo.partition_first_segment.get(thread) as usize;
                    let mut sum = 0.0f32;
                    let mut began_inside = false;
                    let mut has_open = false;
                    for nz in pstart..pend {
                        let head = fcoo.head(nz);
                        if head {
                            if has_open {
                                // Previous segment closed by this head: its end
                                // is inside the partition.
                                finalize_segment(
                                    cfg,
                                    out,
                                    out_stride,
                                    col,
                                    &row_of_seg,
                                    coord_buffer,
                                    heads - 1,
                                    sum,
                                    began_inside,
                                    &mut write_rows,
                                    &mut coord_reads,
                                    &mut atomic_events,
                                );
                            }
                            heads += 1;
                            sum = 0.0;
                            began_inside = true;
                        } else if !has_open {
                            // Partition starts mid-segment (sf bit clear).
                            began_inside = false;
                        }
                        has_open = true;
                        if cfg.use_segscan {
                            sum += product(nz, col);
                        } else {
                            // Ablation: one atomic per non-zero, COO style.
                            let row = row_of_seg(heads - 1);
                            atomic_events.push((row * out_stride + col, product(nz, col)));
                        }
                    }
                    if has_open && cfg.use_segscan {
                        // Final open segment: exclusive only if it both began
                        // inside and the next partition starts a new segment.
                        let ends_exclusive = pend == nnz || fcoo.head(pend);
                        finalize_segment(
                            cfg,
                            out,
                            out_stride,
                            col,
                            &row_of_seg,
                            coord_buffer,
                            heads - 1,
                            sum,
                            began_inside && ends_exclusive,
                            &mut write_rows,
                            &mut coord_reads,
                            &mut atomic_events,
                        );
                    }
                }

                // Charge the warp-level segmented-scan stages and the batched
                // output traffic.
                if cfg.use_segscan {
                    ctx.compute(warp_segscan_cycles(ctx.config()));
                    for chunk in coord_reads.chunks(warp) {
                        ctx.read_global(chunk);
                    }
                    // Sibling column blocks write adjacent columns of the same
                    // output rows; the write-back L2 merges them per line.
                    let sharers = columns.min(8) as u64;
                    for chunk in write_rows.chunks(warp) {
                        ctx.write_global_shared(chunk, sharers);
                    }
                }
                for chunk in atomic_events.chunks(warp) {
                    ctx.atomic_add_f32(out, chunk);
                }
            }
            if any_warp_ran && cfg.use_segscan {
                // Block-level scan combine + barriers, plus the inter-block
                // carry when kernels are fused.
                ctx.compute(block_segscan_cycles(ctx.block_threads(), ctx.config()));
                ctx.syncthreads();
                ctx.syncthreads();
                if cfg.use_fusion {
                    ctx.adjacent_sync();
                }
            }
        });
    if cfg.use_segscan && !cfg.use_fusion {
        // Unfused variant: boundary carries resolved by a follow-up kernel
        // that re-reads one partial per partition.
        let carry_block = BlockStats {
            dram_bytes: (partitions * 8) as u64,
            transactions: (partitions * 8).div_ceil(device.config().transaction_bytes) as u64,
            max_warp_cycles: 64,
            total_warp_cycles: 64,
            warps: 1,
            ..Default::default()
        };
        let carry = KernelStats::from_blocks(&[carry_block], cfg.block_size, device.config());
        stats.merge(&carry);
    }
    stats
}

/// Finalizes one segment: exclusive segments are written once; boundary
/// segments are accumulated atomically (functionally) while the cost model
/// charges them as scan-carried writes when segmented scan is on.
#[allow(clippy::too_many_arguments)]
fn finalize_segment<RowOf: Fn(usize) -> usize>(
    cfg: &LaunchConfig,
    out: &DeviceBuffer<f32>,
    out_stride: usize,
    col: usize,
    row_of_seg: &RowOf,
    coord_buffer: Option<&DeviceBuffer<u32>>,
    seg: usize,
    sum: f32,
    exclusive: bool,
    write_rows: &mut Vec<u64>,
    coord_reads: &mut Vec<u64>,
    atomic_events: &mut Vec<(usize, f32)>,
) {
    let row = row_of_seg(seg);
    let index = row * out_stride + col;
    if let Some(coords) = coord_buffer {
        coord_reads.push(coords.addr(seg));
    }
    if cfg.use_segscan {
        write_rows.push(out.addr(index));
        if exclusive {
            // SAFETY: exclusive segments are owned by exactly one thread for
            // this output column.
            unsafe { out.write(index, sum) };
        } else {
            out.atomic_add_f32(index, sum);
        }
    } else {
        atomic_events.push((index, sum));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Fcoo;
    use tensor_core::approx::assert_slices_close;
    use tensor_core::datasets::{self, DatasetKind};
    use tensor_core::ops;
    use tensor_core::SparseTensorCoo;

    fn upload_factors(
        device: &GpuDevice,
        tensor: &SparseTensorCoo,
        r: usize,
        seed: u64,
    ) -> Vec<DeviceMatrix> {
        tensor
            .shape()
            .iter()
            .enumerate()
            .map(|(m, &size)| {
                let host = DenseMatrix::random(size, r, seed + m as u64);
                DeviceMatrix::upload(device.memory(), &host).unwrap()
            })
            .collect()
    }

    fn check_spttm(tensor: &SparseTensorCoo, mode: usize, r: usize, cfg: &LaunchConfig) {
        let device = GpuDevice::titan_x();
        let fcoo = Fcoo::from_coo(tensor, TensorOp::SpTtm { mode }, 8);
        let dev = FcooDevice::upload(device.memory(), &fcoo).unwrap();
        let u_host = DenseMatrix::random(tensor.shape()[mode], r, 7);
        let u = DeviceMatrix::upload(device.memory(), &u_host).unwrap();
        let (result, stats) = spttm(&device, &dev, &u, cfg).unwrap();
        let reference = ops::spttm(tensor, mode, &u_host);
        let diff = result
            .max_abs_diff(&reference)
            .expect("fiber sets must match");
        assert!(diff < 1e-3, "mode {mode} diff {diff}");
        assert!(stats.time_us > 0.0);
    }

    fn check_spmttkrp(tensor: &SparseTensorCoo, mode: usize, r: usize, cfg: &LaunchConfig) {
        let device = GpuDevice::titan_x();
        let fcoo = Fcoo::from_coo(tensor, TensorOp::SpMttkrp { mode }, 8);
        let dev = FcooDevice::upload(device.memory(), &fcoo).unwrap();
        let factors = upload_factors(&device, tensor, r, 40);
        let factor_refs: Vec<&DeviceMatrix> = factors.iter().collect();
        let (result, _) = spmttkrp(&device, &dev, &factor_refs, cfg).unwrap();
        let host_factors: Vec<DenseMatrix> = factors.iter().map(|f| f.download()).collect();
        let host_refs: Vec<&DenseMatrix> = host_factors.iter().collect();
        let reference = ops::spmttkrp(tensor, mode, &host_refs);
        let diff = result.max_abs_diff(&reference);
        assert!(diff < 1e-3, "mode {mode} diff {diff}");
    }

    #[test]
    fn spttm_matches_reference_all_modes() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 3000, 11);
        for mode in 0..3 {
            check_spttm(&tensor, mode, 16, &LaunchConfig::default());
        }
    }

    #[test]
    fn spmttkrp_matches_reference_all_modes() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 3000, 12);
        for mode in 0..3 {
            check_spmttkrp(&tensor, mode, 16, &LaunchConfig::default());
        }
    }

    #[test]
    fn kernels_correct_on_dense_and_skewed_datasets() {
        for kind in [DatasetKind::Brainq, DatasetKind::Nell1] {
            let (tensor, _) = datasets::generate(kind, 4000, 13);
            check_spttm(&tensor, 2, 8, &LaunchConfig::default());
            check_spmttkrp(&tensor, 0, 8, &LaunchConfig::default());
        }
    }

    #[test]
    fn results_identical_across_optimization_toggles() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 2500, 14);
        for cfg in [
            LaunchConfig {
                use_rocache: false,
                ..Default::default()
            },
            LaunchConfig {
                use_segscan: false,
                ..Default::default()
            },
            LaunchConfig {
                use_fusion: false,
                ..Default::default()
            },
            LaunchConfig {
                block_size: 32,
                ..Default::default()
            },
            LaunchConfig {
                block_size: 1024,
                ..Default::default()
            },
        ] {
            check_spttm(&tensor, 2, 8, &cfg);
            check_spmttkrp(&tensor, 0, 8, &cfg);
        }
    }

    #[test]
    fn various_threadlens_are_correct() {
        let (tensor, _) = datasets::generate(DatasetKind::Delicious, 2500, 15);
        let device = GpuDevice::titan_x();
        let u_host = DenseMatrix::random(tensor.shape()[2], 8, 3);
        let reference = ops::spttm(&tensor, 2, &u_host);
        for threadlen in [1, 3, 8, 16, 64] {
            let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpTtm { mode: 2 }, threadlen);
            let dev = FcooDevice::upload(device.memory(), &fcoo).unwrap();
            let u = DeviceMatrix::upload(device.memory(), &u_host).unwrap();
            let (result, _) = spttm(&device, &dev, &u, &LaunchConfig::default()).unwrap();
            let diff = result
                .max_abs_diff(&reference)
                .expect("fiber sets must match");
            assert!(diff < 1e-3, "threadlen {threadlen} diff {diff}");
        }
    }

    #[test]
    fn spttmc_matches_reference() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 2000, 16);
        let device = GpuDevice::titan_x();
        let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpTtmc { mode: 0 }, 8);
        let dev = FcooDevice::upload(device.memory(), &fcoo).unwrap();
        let a_host = DenseMatrix::random(tensor.shape()[1], 4, 21);
        let b_host = DenseMatrix::random(tensor.shape()[2], 3, 22);
        let a = DeviceMatrix::upload(device.memory(), &a_host).unwrap();
        let b = DeviceMatrix::upload(device.memory(), &b_host).unwrap();
        let (result, _) = spttmc(&device, &dev, &a, &b, &LaunchConfig::default()).unwrap();
        let reference = ops::spttmc(
            &tensor,
            0,
            &[&DenseMatrix::zeros(tensor.shape()[0], 1), &a_host, &b_host],
        );
        assert!(result.max_abs_diff(&reference) < 1e-3);
        assert_slices_close(result.row(0), reference.row(0), 1e-3);
    }

    #[test]
    fn spttmc_norder_matches_reference_on_4_order() {
        let tensor = tensor_core::datasets::generate_norder(&[10, 8, 12, 6], 1_500, 0.5, 44);
        let device = GpuDevice::titan_x();
        let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpTtmc { mode: 1 }, 8);
        let dev = FcooDevice::upload(device.memory(), &fcoo).unwrap();
        let hosts: Vec<DenseMatrix> = fcoo
            .classification
            .product_modes
            .iter()
            .enumerate()
            .map(|(p, &m)| DenseMatrix::random(tensor.shape()[m], 2 + p % 2, 60 + p as u64))
            .collect();
        let uploaded: Vec<DeviceMatrix> = hosts
            .iter()
            .map(|f| DeviceMatrix::upload(device.memory(), f).unwrap())
            .collect();
        let refs: Vec<&DeviceMatrix> = uploaded.iter().collect();
        let (result, _) = spttmc_norder(&device, &dev, &refs, &LaunchConfig::default()).unwrap();
        let host_refs: Vec<&DenseMatrix> = hosts.iter().collect();
        let reference = tensor_core::ops::spttmc_norder(&tensor, 1, &host_refs);
        assert!(
            result.max_abs_diff(&reference) < 1e-3,
            "diff {}",
            result.max_abs_diff(&reference)
        );
    }

    #[test]
    fn segscan_avoids_atomics_and_beats_atomic_fallback() {
        let (tensor, _) = datasets::generate(DatasetKind::Brainq, 20_000, 17);
        let device = GpuDevice::titan_x();
        let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpMttkrp { mode: 0 }, 8);
        let dev = FcooDevice::upload(device.memory(), &fcoo).unwrap();
        let factors = upload_factors(&device, &tensor, 16, 50);
        let refs: Vec<&DeviceMatrix> = factors.iter().collect();
        let (_, scan_stats) = spmttkrp(&device, &dev, &refs, &LaunchConfig::default()).unwrap();
        let (_, atomic_stats) = spmttkrp(
            &device,
            &dev,
            &refs,
            &LaunchConfig {
                use_segscan: false,
                ..Default::default()
            },
        )
        .unwrap();
        // With scan, atomics only occur on partition-boundary segments.
        assert!(scan_stats.atomics < atomic_stats.atomics / 4);
        assert!(
            scan_stats.time_us < atomic_stats.time_us,
            "scan {} vs atomic {}",
            scan_stats.time_us,
            atomic_stats.time_us
        );
    }

    #[test]
    fn rocache_helps_dense_tensors() {
        // Dense-ish tensor: factor rows are reused heavily → high hit rate.
        let (tensor, _) = datasets::generate(DatasetKind::Brainq, 20_000, 18);
        let device = GpuDevice::titan_x();
        let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpTtm { mode: 2 }, 8);
        let dev = FcooDevice::upload(device.memory(), &fcoo).unwrap();
        let u_host = DenseMatrix::random(tensor.shape()[2], 16, 5);
        let u = DeviceMatrix::upload(device.memory(), &u_host).unwrap();
        let (_, with) = spttm(&device, &dev, &u, &LaunchConfig::default()).unwrap();
        assert!(
            with.rocache_hit_rate > 0.5,
            "hit rate {}",
            with.rocache_hit_rate
        );
    }

    #[test]
    fn rocache_cuts_dram_traffic_when_factor_exceeds_l2() {
        // nell1's scaled mode-3 factor is tens of MB — far beyond the 3 MB
        // L2 — so cache hits vs. plain loads show up as DRAM savings.
        let (tensor, _) = datasets::generate(DatasetKind::Nell1, 20_000, 18);
        let device = GpuDevice::titan_x();
        let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpTtm { mode: 2 }, 8);
        let dev = FcooDevice::upload(device.memory(), &fcoo).unwrap();
        let u_host = DenseMatrix::random(tensor.shape()[2], 16, 5);
        assert!(u_host.rows() * u_host.cols() * 4 > device.config().l2_bytes);
        let u = DeviceMatrix::upload(device.memory(), &u_host).unwrap();
        let (_, with) = spttm(&device, &dev, &u, &LaunchConfig::default()).unwrap();
        let (_, without) = spttm(
            &device,
            &dev,
            &u,
            &LaunchConfig {
                use_rocache: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(with.dram_bytes < without.dram_bytes);
    }

    #[test]
    fn brainq_caches_better_than_nell1() {
        // The §V-A density analysis: dense tensors reuse factor rows.
        let device = GpuDevice::titan_x();
        let mut rates = Vec::new();
        for kind in [DatasetKind::Brainq, DatasetKind::Nell1] {
            let (tensor, _) = datasets::generate(kind, 20_000, 19);
            let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpMttkrp { mode: 0 }, 8);
            let dev = FcooDevice::upload(device.memory(), &fcoo).unwrap();
            let factors = upload_factors(&device, &tensor, 16, 60);
            let refs: Vec<&DeviceMatrix> = factors.iter().collect();
            let (_, stats) = spmttkrp(&device, &dev, &refs, &LaunchConfig::default()).unwrap();
            rates.push(stats.rocache_hit_rate);
        }
        assert!(
            rates[0] > rates[1] + 0.1,
            "brainq hit rate {} should exceed nell1 {}",
            rates[0],
            rates[1]
        );
    }

    #[test]
    fn unfused_variant_pays_extra_launch() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 5_000, 20);
        let device = GpuDevice::titan_x();
        let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpTtm { mode: 2 }, 8);
        let dev = FcooDevice::upload(device.memory(), &fcoo).unwrap();
        let u_host = DenseMatrix::random(tensor.shape()[2], 16, 5);
        let u = DeviceMatrix::upload(device.memory(), &u_host).unwrap();
        let (_, fused) = spttm(&device, &dev, &u, &LaunchConfig::default()).unwrap();
        let (_, unfused) = spttm(
            &device,
            &dev,
            &u,
            &LaunchConfig {
                use_fusion: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(unfused.time_us > fused.time_us);
    }

    #[test]
    fn unified_kernel_degenerates_to_spmv_on_matrices() {
        // §II: "SpTTM can be seen as a high dimensional generalization of
        // SpMV". A 2-order tensor with a 1-column dense matrix is exactly
        // sparse matrix-vector multiply, and the unified kernel handles it
        // with no special casing.
        let matrix = SparseTensorCoo::from_entries(
            vec![6, 5],
            &[
                (vec![0, 0], 2.0),
                (vec![0, 4], 1.0),
                (vec![2, 1], -3.0),
                (vec![3, 3], 4.0),
                (vec![5, 0], 0.5),
                (vec![5, 4], 2.5),
            ],
        );
        let x = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let device = GpuDevice::titan_x();
        let fcoo = Fcoo::from_coo(&matrix, TensorOp::SpTtm { mode: 1 }, 2);
        let dev = FcooDevice::upload(device.memory(), &fcoo).unwrap();
        let x_mat = DeviceMatrix::upload(device.memory(), &DenseMatrix::from_vec(5, 1, x.to_vec()))
            .unwrap();
        let (result, _) = spttm(&device, &dev, &x_mat, &LaunchConfig::default()).unwrap();
        // y = A·x by hand: y0 = 2·1 + 1·5 = 7, y2 = -3·2 = -6, y3 = 4·4 = 16,
        // y5 = 0.5·1 + 2.5·5 = 13. Rows 1 and 4 are empty (absent fibers).
        let mut y = vec![0.0f32; 6];
        for fib in 0..result.nfibs() {
            y[result.fiber_coord(fib)[0] as usize] = result.fiber(fib)[0];
        }
        assert_eq!(y, vec![7.0, 0.0, -6.0, 16.0, 0.0, 13.0]);
    }

    #[test]
    fn unified_kernel_computes_spmm_on_matrices() {
        // With R > 1 columns the same degeneration gives SpMM.
        let matrix = SparseTensorCoo::from_entries(
            vec![4, 3],
            &[
                (vec![0, 0], 1.0),
                (vec![1, 1], 2.0),
                (vec![3, 2], 3.0),
                (vec![0, 2], -1.0),
            ],
        );
        let dense = DenseMatrix::random(3, 4, 77);
        let device = GpuDevice::titan_x();
        let fcoo = Fcoo::from_coo(&matrix, TensorOp::SpTtm { mode: 1 }, 4);
        let dev = FcooDevice::upload(device.memory(), &fcoo).unwrap();
        let d = DeviceMatrix::upload(device.memory(), &dense).unwrap();
        let (result, _) = spttm(&device, &dev, &d, &LaunchConfig::default()).unwrap();
        let reference = tensor_core::ops::spttm(&matrix, 1, &dense);
        assert_eq!(result.max_abs_diff(&reference), Some(0.0));
    }

    #[test]
    fn single_nonzero_tensor() {
        let tensor = SparseTensorCoo::from_entries(vec![4, 4, 4], &[(vec![1, 2, 3], 2.5)]);
        check_spttm(&tensor, 2, 4, &LaunchConfig::default());
        check_spmttkrp(&tensor, 0, 4, &LaunchConfig::default());
    }

    #[test]
    fn one_giant_segment() {
        // All non-zeros share the same index coordinates: one segment that
        // spans every partition and block.
        let entries: Vec<(Vec<u32>, f32)> = (0..500).map(|k| (vec![1, 1, k], 1.0f32)).collect();
        let tensor = SparseTensorCoo::from_entries(vec![3, 3, 500], &entries);
        check_spttm(
            &tensor,
            2,
            4,
            &LaunchConfig {
                block_size: 32,
                ..Default::default()
            },
        );
        // MTTKRP mode-3: index mode is k → 500 segments; also exercise the
        // transpose case where mode-1 gives one segment.
        check_spmttkrp(
            &tensor,
            0,
            4,
            &LaunchConfig {
                block_size: 32,
                ..Default::default()
            },
        );
    }

    #[test]
    fn oom_on_scaled_device_is_an_error() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 3000, 21);
        let device = GpuDevice::new(gpu_sim::DeviceConfig::titan_x_scaled_memory(3e-6));
        let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpMttkrp { mode: 0 }, 8);
        // Upload fits, but the output allocation must fail.
        match FcooDevice::upload(device.memory(), &fcoo) {
            Err(_) => {} // upload itself may already exceed the budget
            Ok(dev) => {
                let mut factors = Vec::new();
                for (m, &size) in tensor.shape().iter().enumerate() {
                    let host = DenseMatrix::random(size, 64, m as u64);
                    match DeviceMatrix::upload(device.memory(), &host) {
                        Ok(f) => factors.push(f),
                        Err(_) => return, // factors alone exceed the budget: also an OOM
                    }
                }
                let refs: Vec<&DeviceMatrix> = factors.iter().collect();
                assert!(spmttkrp(&device, &dev, &refs, &LaunchConfig::default()).is_err());
            }
        }
    }
}
