//! Binary serialization of preprocessed F-COO.
//!
//! Preprocessing (a full sort of the non-zeros per mode) is the expensive
//! host-side step of the unified method; the paper amortizes it by doing it
//! once before the CP iterations. This module persists the result so a
//! pipeline can preprocess once and reload across runs.
//!
//! The format is a versioned little-endian layout — no external
//! dependencies, byte-for-byte deterministic.

use crate::format::{BitFlags, Fcoo};
use crate::modes::{ModeClassification, TensorOp};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"FCOO";
const VERSION: u32 = 1;

/// Errors from decoding a serialized F-COO stream.
#[derive(Debug)]
pub enum DecodeError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not an F-COO file or is structurally invalid.
    Corrupt(String),
    /// A newer or unknown format version.
    Version(u32),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Io(e) => write!(f, "i/o error: {e}"),
            DecodeError::Corrupt(what) => write!(f, "corrupt F-COO stream: {what}"),
            DecodeError::Version(v) => write!(f, "unsupported F-COO version {v}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<io::Error> for DecodeError {
    fn from(e: io::Error) -> Self {
        DecodeError::Io(e)
    }
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_u32_slice(w: &mut impl Write, data: &[u32]) -> io::Result<()> {
    write_u64(w, data.len() as u64)?;
    for &v in data {
        write_u32(w, v)?;
    }
    Ok(())
}

fn read_u32_vec(r: &mut impl Read, cap: u64) -> Result<Vec<u32>, DecodeError> {
    let len = read_u64(r)?;
    if len > cap {
        return Err(DecodeError::Corrupt(format!(
            "array length {len} exceeds bound {cap}"
        )));
    }
    let mut out = Vec::with_capacity(len as usize);
    for _ in 0..len {
        out.push(read_u32(r)?);
    }
    Ok(out)
}

fn op_code(op: TensorOp) -> (u32, u32) {
    match op {
        TensorOp::SpTtm { mode } => (0, mode as u32),
        TensorOp::SpMttkrp { mode } => (1, mode as u32),
        TensorOp::SpTtmc { mode } => (2, mode as u32),
    }
}

fn op_from(code: u32, mode: u32) -> Result<TensorOp, DecodeError> {
    let mode = mode as usize;
    match code {
        0 => Ok(TensorOp::SpTtm { mode }),
        1 => Ok(TensorOp::SpMttkrp { mode }),
        2 => Ok(TensorOp::SpTtmc { mode }),
        other => Err(DecodeError::Corrupt(format!("unknown op code {other}"))),
    }
}

/// Writes a preprocessed F-COO instance.
pub fn write_fcoo(fcoo: &Fcoo, mut w: impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    let (code, mode) = op_code(fcoo.op);
    write_u32(&mut w, code)?;
    write_u32(&mut w, mode)?;
    write_u64(&mut w, fcoo.shape.len() as u64)?;
    for &s in &fcoo.shape {
        write_u64(&mut w, s as u64)?;
    }
    write_u64(&mut w, fcoo.threadlen as u64)?;
    write_u64(&mut w, fcoo.nnz() as u64)?;
    write_u64(&mut w, fcoo.product_indices.len() as u64)?;
    for column in &fcoo.product_indices {
        write_u32_slice(&mut w, column)?;
    }
    // Values as raw f32 bits.
    write_u64(&mut w, fcoo.values.len() as u64)?;
    for &v in &fcoo.values {
        write_u32(&mut w, v.to_bits())?;
    }
    write_u64(&mut w, fcoo.bf.len() as u64)?;
    w.write_all(fcoo.bf.bytes())?;
    write_u64(&mut w, fcoo.sf.len() as u64)?;
    w.write_all(fcoo.sf.bytes())?;
    write_u64(&mut w, fcoo.segment_coords.len() as u64)?;
    for column in &fcoo.segment_coords {
        write_u32_slice(&mut w, column)?;
    }
    write_u32_slice(&mut w, &fcoo.partition_first_segment)?;
    Ok(())
}

/// Reads a preprocessed F-COO instance written by [`write_fcoo`].
pub fn read_fcoo(mut r: impl Read) -> Result<Fcoo, DecodeError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(DecodeError::Corrupt("bad magic".into()));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(DecodeError::Version(version));
    }
    let code = read_u32(&mut r)?;
    let mode = read_u32(&mut r)?;
    let op = op_from(code, mode)?;
    let order = read_u64(&mut r)?;
    if order == 0 || order > 16 {
        return Err(DecodeError::Corrupt(format!("implausible order {order}")));
    }
    let mut shape = Vec::with_capacity(order as usize);
    for _ in 0..order {
        shape.push(read_u64(&mut r)? as usize);
    }
    let classification = ModeClassification::classify(op, shape.len());
    let threadlen = read_u64(&mut r)? as usize;
    if threadlen == 0 {
        return Err(DecodeError::Corrupt("zero threadlen".into()));
    }
    let nnz = read_u64(&mut r)?;
    const MAX_NNZ: u64 = 1 << 33;
    if nnz == 0 || nnz > MAX_NNZ {
        return Err(DecodeError::Corrupt(format!("implausible nnz {nnz}")));
    }
    let product_columns = read_u64(&mut r)?;
    if product_columns as usize != classification.product_modes.len() {
        return Err(DecodeError::Corrupt("product-mode arity mismatch".into()));
    }
    let mut product_indices = Vec::with_capacity(product_columns as usize);
    for _ in 0..product_columns {
        let column = read_u32_vec(&mut r, nnz)?;
        if column.len() as u64 != nnz {
            return Err(DecodeError::Corrupt(
                "product index column length mismatch".into(),
            ));
        }
        product_indices.push(column);
    }
    let value_count = read_u64(&mut r)?;
    if value_count != nnz {
        return Err(DecodeError::Corrupt("value count mismatch".into()));
    }
    let mut values = Vec::with_capacity(nnz as usize);
    for _ in 0..nnz {
        values.push(f32::from_bits(read_u32(&mut r)?));
    }
    let bf = read_bitflags(&mut r, nnz)?;
    let partitions = (nnz as usize).div_ceil(threadlen) as u64;
    let sf = read_bitflags(&mut r, partitions)?;
    let coord_columns = read_u64(&mut r)?;
    if coord_columns as usize != classification.index_modes.len() {
        return Err(DecodeError::Corrupt("index-mode arity mismatch".into()));
    }
    let segments = bf.count_ones() as u64;
    let mut segment_coords = Vec::with_capacity(coord_columns as usize);
    for _ in 0..coord_columns {
        let column = read_u32_vec(&mut r, nnz)?;
        if column.len() as u64 != segments {
            return Err(DecodeError::Corrupt(
                "segment coordinate length mismatch".into(),
            ));
        }
        segment_coords.push(column);
    }
    let partition_first_segment = read_u32_vec(&mut r, partitions)?;
    if partition_first_segment.len() as u64 != partitions {
        return Err(DecodeError::Corrupt(
            "partition pointer length mismatch".into(),
        ));
    }
    Ok(Fcoo {
        op,
        classification,
        shape,
        threadlen,
        product_indices,
        values,
        bf,
        sf,
        segment_coords,
        partition_first_segment,
    })
}

fn read_bitflags(r: &mut impl Read, expected_len: u64) -> Result<BitFlags, DecodeError> {
    let len = read_u64(r)?;
    if len != expected_len {
        return Err(DecodeError::Corrupt(format!(
            "flag length {len} does not match expected {expected_len}"
        )));
    }
    let mut bytes = vec![0u8; (len as usize).div_ceil(8)];
    r.read_exact(&mut bytes)?;
    let mut flags = BitFlags::new(len as usize);
    for i in 0..len as usize {
        if bytes[i / 8] & (1 << (i % 8)) != 0 {
            flags.set(i);
        }
    }
    Ok(flags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_core::datasets::{self, DatasetKind};

    fn sample(op: TensorOp) -> Fcoo {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 2_000, 60);
        Fcoo::from_coo(&tensor, op, 8)
    }

    #[test]
    fn round_trip_preserves_everything() {
        for op in [
            TensorOp::SpTtm { mode: 2 },
            TensorOp::SpMttkrp { mode: 0 },
            TensorOp::SpTtmc { mode: 1 },
        ] {
            let original = sample(op);
            let mut buffer = Vec::new();
            write_fcoo(&original, &mut buffer).unwrap();
            let decoded = read_fcoo(buffer.as_slice()).unwrap();
            assert_eq!(decoded.op, original.op);
            assert_eq!(decoded.shape, original.shape);
            assert_eq!(decoded.threadlen, original.threadlen);
            assert_eq!(decoded.product_indices, original.product_indices);
            assert_eq!(decoded.values, original.values);
            assert_eq!(decoded.bf, original.bf);
            assert_eq!(decoded.sf, original.sf);
            assert_eq!(decoded.segment_coords, original.segment_coords);
            assert_eq!(
                decoded.partition_first_segment,
                original.partition_first_segment
            );
        }
    }

    #[test]
    fn decoded_instance_runs_on_the_device() {
        use crate::device::{DeviceMatrix, FcooDevice};
        let original = sample(TensorOp::SpTtm { mode: 2 });
        let mut buffer = Vec::new();
        write_fcoo(&original, &mut buffer).unwrap();
        let decoded = read_fcoo(buffer.as_slice()).unwrap();
        let device = gpu_sim::GpuDevice::titan_x();
        let on_device = FcooDevice::upload(device.memory(), &decoded).unwrap();
        let u = DeviceMatrix::upload(
            device.memory(),
            &tensor_core::DenseMatrix::random(decoded.shape[2], 8, 1),
        )
        .unwrap();
        let (result, _) =
            crate::kernels::spttm(&device, &on_device, &u, &crate::LaunchConfig::default())
                .unwrap();
        assert_eq!(result.nfibs(), decoded.segments());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_fcoo(&b"NOPE....."[..]).unwrap_err();
        assert!(matches!(err, DecodeError::Corrupt(_)));
    }

    #[test]
    fn rejects_future_version() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(MAGIC);
        buffer.extend_from_slice(&99u32.to_le_bytes());
        let err = read_fcoo(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, DecodeError::Version(99)));
    }

    #[test]
    fn rejects_truncated_stream() {
        let original = sample(TensorOp::SpMttkrp { mode: 0 });
        let mut buffer = Vec::new();
        write_fcoo(&original, &mut buffer).unwrap();
        buffer.truncate(buffer.len() / 2);
        assert!(read_fcoo(buffer.as_slice()).is_err());
    }

    #[test]
    fn rejects_tampered_lengths() {
        let original = sample(TensorOp::SpTtm { mode: 0 });
        let mut buffer = Vec::new();
        write_fcoo(&original, &mut buffer).unwrap();
        // Corrupt the nnz field (offset: magic 4 + version 4 + op 8 +
        // order 8 + shape 3×8 + threadlen 8 = 56).
        buffer[56] ^= 0xff;
        assert!(read_fcoo(buffer.as_slice()).is_err());
    }
}
