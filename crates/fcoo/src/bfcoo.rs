//! BF-COO: a bucketed, load-balanced F-COO variant (after the balanced
//! nonzero layout of *"Load-Balanced Sparse MTTKRP on GPUs"*,
//! arXiv:1904.03329).
//!
//! BF-COO keeps the F-COO payload — product-mode indices, values, bit
//! flags, start flags, partition pointers — **byte-identical** to
//! [`Fcoo`], so segment accumulation, serialization framing and the
//! carry-row out-of-core path are shared verbatim and outputs are
//! bit-exact across the two formats. What changes is the *gather
//! schedule*: instead of lane-strided factor reads (lane `l` touches
//! non-zeros `l·threadlen + i`), each warp walks its non-zero span in
//! aligned 32-element **runs** and issues one batched read per factor per
//! run. Because the format's sort order keeps index-mode coordinates
//! contiguous, consecutive non-zeros in a run mostly share factor rows,
//! and the read-only cache's per-batch line dedup collapses the batch to
//! the run's *distinct-row count*.
//!
//! That count is precomputed per run and per product mode into the
//! [`BfCoo::buckets`] metadata (one `u32` per aligned 32-non-zero run),
//! which the kernel streams alongside the tensor and the cost certifier
//! uses to bound each gather call by `min(live, dᶠ)` transactions instead
//! of F-COO's `live · |factors|`. On skewed (power-law) tensors the runs
//! sit inside long fibers, `dᶠ` is small and BF-COO's certified upper
//! bound drops below F-COO's; on uniform tensors `dᶠ ≈ 32` and the extra
//! bucket streams plus the per-run shuffle demux make F-COO the certified
//! winner — exactly the cross-format trade the planner arbitrates.

use crate::device::{DeviceMatrix, FcooDevice};
use crate::format::Fcoo;
use crate::kernels::{self, GatherLayout, LaunchConfig};
use crate::modes::TensorOp;
use gpu_sim::memory::{DeviceBuffer, DeviceMemory};
use gpu_sim::{GpuDevice, KernelStats, OutOfMemory};
use tensor_core::{DenseMatrix, SemiSparseTensor, SparseTensorCoo};

/// Non-zeros per bucketed gather run. Warps start on 32-thread boundaries,
/// so every warp's non-zero span starts on a multiple of `RUN = 32` for any
/// threadlen and the per-warp runs align with these global runs.
pub const RUN: usize = 32;

/// A sparse tensor preprocessed into BF-COO: the F-COO payload plus
/// per-run distinct-row bucket metadata.
#[derive(Debug, Clone)]
pub struct BfCoo {
    /// The byte-identical F-COO payload (same sort order, flags, values).
    pub base: Fcoo,
    /// `buckets[p][run]`: the number of **distinct** coordinates of
    /// product mode `p` among non-zeros `[run·32, min((run+1)·32, nnz))`.
    /// One column per product mode, `⌈nnz/32⌉` entries each, every entry
    /// in `[1, min(32, run length)]`.
    pub buckets: Vec<Vec<u32>>,
}

/// Computes the exact per-run distinct-row counts for every product mode
/// of an F-COO payload. Exactness is load-bearing: the cost certifier's
/// `min(live, dᶠ)` gather bound is only sound when `dᶠ` is the true
/// distinct count, which is why the sanitizer's BF-COO lint recomputes
/// and compares these.
pub fn bucket_counts(base: &Fcoo) -> Vec<Vec<u32>> {
    let nnz = base.nnz();
    base.product_indices
        .iter()
        .map(|column| {
            (0..nnz.div_ceil(RUN))
                .map(|run| {
                    let start = run * RUN;
                    let end = (start + RUN).min(nnz);
                    let mut rows = column[start..end].to_vec();
                    rows.sort_unstable();
                    rows.dedup();
                    rows.len() as u32
                })
                .collect()
        })
        .collect()
}

impl BfCoo {
    /// Preprocesses `tensor` for `op`: the F-COO build plus one
    /// distinct-count pass over the product indices.
    pub fn from_coo(tensor: &SparseTensorCoo, op: TensorOp, threadlen: usize) -> Self {
        Self::from_fcoo(Fcoo::from_coo(tensor, op, threadlen))
    }

    /// Wraps an existing F-COO payload, deriving the bucket metadata. This
    /// is how persisted plans rehydrate: only the F-COO stream is stored,
    /// the buckets are recomputed on decode.
    pub fn from_fcoo(base: Fcoo) -> Self {
        let buckets = bucket_counts(&base);
        BfCoo { base, buckets }
    }

    /// Number of non-zeros.
    pub fn nnz(&self) -> usize {
        self.base.nnz()
    }

    /// Number of segments (output fibers/slices).
    pub fn segments(&self) -> usize {
        self.base.segments()
    }

    /// Number of thread partitions.
    pub fn partitions(&self) -> usize {
        self.base.partitions()
    }

    /// Number of aligned 32-non-zero runs.
    pub fn runs(&self) -> usize {
        self.nnz().div_ceil(RUN)
    }

    /// Bytes of the bucket metadata (`4 · |product modes| · ⌈nnz/32⌉`).
    pub fn bucket_bytes(&self) -> usize {
        self.buckets.len() * self.runs() * 4
    }

    /// All bytes of the executable format: the F-COO payload plus the
    /// bucket metadata. Admission sizing must use this, not the base's
    /// total, or the pool under-counts every BF-COO plan.
    pub fn total_bytes(&self) -> usize {
        self.base.storage().total_bytes() + self.bucket_bytes()
    }
}

/// BF-COO uploaded to the device: the F-COO buffers plus one bucket array
/// per product mode.
#[derive(Debug)]
pub struct BfCooDevice {
    /// The uploaded F-COO payload.
    pub base: FcooDevice,
    /// Per-product-mode distinct-row counts, one `u32` per run.
    pub buckets: Vec<DeviceBuffer<u32>>,
}

impl BfCooDevice {
    /// Transfers a host BF-COO instance to device memory.
    pub fn upload(memory: &DeviceMemory, bfcoo: &BfCoo) -> Result<Self, OutOfMemory> {
        let base = FcooDevice::upload(memory, &bfcoo.base)?;
        let buckets = bfcoo
            .buckets
            .iter()
            .map(|column| memory.alloc_from_slice(column))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BfCooDevice { base, buckets })
    }

    /// Number of segments (output fibers/slices).
    pub fn segments(&self) -> usize {
        self.base.segments()
    }

    /// Number of thread partitions.
    pub fn partitions(&self) -> usize {
        self.base.partitions()
    }

    fn layout(&self) -> GatherLayout<'_> {
        GatherLayout::Bucketed {
            buckets: &self.buckets,
        }
    }

    /// [`crate::spttm`] with the bucketed gather schedule; bit-exact with
    /// the F-COO result.
    pub fn spttm(
        &self,
        device: &GpuDevice,
        u: &DeviceMatrix,
        cfg: &LaunchConfig,
    ) -> Result<(SemiSparseTensor, KernelStats), OutOfMemory> {
        kernels::spttm_with_layout(device, &self.base, u, cfg, self.layout())
    }

    /// [`crate::spttm_into`] with the bucketed gather schedule.
    pub fn spttm_into(
        &self,
        device: &GpuDevice,
        u: &DeviceMatrix,
        cfg: &LaunchConfig,
        out: &DeviceBuffer<f32>,
    ) -> KernelStats {
        kernels::spttm_into_with_layout(device, &self.base, u, cfg, out, self.layout())
    }

    /// [`crate::spmttkrp`] with the bucketed gather schedule.
    pub fn spmttkrp(
        &self,
        device: &GpuDevice,
        factors: &[&DeviceMatrix],
        cfg: &LaunchConfig,
    ) -> Result<(DenseMatrix, KernelStats), OutOfMemory> {
        kernels::spmttkrp_with_layout(device, &self.base, factors, cfg, self.layout())
    }

    /// [`crate::spmttkrp_into`] with the bucketed gather schedule.
    pub fn spmttkrp_into(
        &self,
        device: &GpuDevice,
        factors: &[&DeviceMatrix],
        cfg: &LaunchConfig,
        out: &DeviceBuffer<f32>,
    ) -> KernelStats {
        kernels::spmttkrp_into_with_layout(device, &self.base, factors, cfg, out, self.layout())
    }

    /// [`crate::spttmc_norder`] with the bucketed gather schedule.
    pub fn spttmc_norder(
        &self,
        device: &GpuDevice,
        product_factors: &[&DeviceMatrix],
        cfg: &LaunchConfig,
    ) -> Result<(DenseMatrix, KernelStats), OutOfMemory> {
        kernels::spttmc_norder_with_layout(device, &self.base, product_factors, cfg, self.layout())
    }

    /// [`crate::spttmc_norder_into`] with the bucketed gather schedule.
    pub fn spttmc_norder_into(
        &self,
        device: &GpuDevice,
        product_factors: &[&DeviceMatrix],
        cfg: &LaunchConfig,
        out: &DeviceBuffer<f32>,
    ) -> KernelStats {
        kernels::spttmc_norder_into_with_layout(
            device,
            &self.base,
            product_factors,
            cfg,
            out,
            self.layout(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_core::datasets::{self, DatasetKind};

    fn bits(values: &[f32]) -> Vec<u32> {
        values.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn buckets_are_exact_distinct_counts() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell1, 3000, 9);
        let bf = BfCoo::from_coo(&tensor, TensorOp::SpMttkrp { mode: 0 }, 8);
        assert_eq!(bf.buckets.len(), bf.base.product_indices.len());
        for (column, bucket) in bf.base.product_indices.iter().zip(&bf.buckets) {
            assert_eq!(bucket.len(), bf.runs());
            for (run, &count) in bucket.iter().enumerate() {
                let start = run * RUN;
                let end = (start + RUN).min(bf.nnz());
                let mut rows: Vec<u32> = column[start..end].to_vec();
                rows.sort_unstable();
                rows.dedup();
                assert_eq!(count as usize, rows.len(), "run {run}");
                assert!(count >= 1 && count as usize <= end - start);
            }
        }
    }

    #[test]
    fn storage_includes_bucket_metadata() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 2000, 10);
        let bf = BfCoo::from_coo(&tensor, TensorOp::SpMttkrp { mode: 1 }, 8);
        assert_eq!(bf.bucket_bytes(), 2 * bf.runs() * 4);
        assert_eq!(
            bf.total_bytes(),
            bf.base.storage().total_bytes() + bf.bucket_bytes()
        );
    }

    #[test]
    fn spttm_bit_exact_with_fcoo() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 3000, 11);
        let device = GpuDevice::titan_x();
        for mode in 0..3 {
            let bf = BfCoo::from_coo(&tensor, TensorOp::SpTtm { mode }, 8);
            let fc_dev = FcooDevice::upload(device.memory(), &bf.base).unwrap();
            let bf_dev = BfCooDevice::upload(device.memory(), &bf).unwrap();
            let u_host = DenseMatrix::random(tensor.shape()[mode], 16, 7);
            let u = DeviceMatrix::upload(device.memory(), &u_host).unwrap();
            let cfg = LaunchConfig::default();
            let (reference, _) = kernels::spttm(&device, &fc_dev, &u, &cfg).unwrap();
            let (result, stats) = bf_dev.spttm(&device, &u, &cfg).unwrap();
            assert_eq!(result.nfibs(), reference.nfibs());
            for fib in 0..result.nfibs() {
                assert_eq!(result.fiber_coord(fib), reference.fiber_coord(fib));
                assert_eq!(
                    bits(result.fiber(fib)),
                    bits(reference.fiber(fib)),
                    "mode {mode} fiber {fib}"
                );
            }
            assert!(stats.time_us > 0.0);
        }
    }

    #[test]
    fn spmttkrp_bit_exact_with_fcoo_across_toggles() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell1, 2500, 12);
        let device = GpuDevice::titan_x();
        let bf = BfCoo::from_coo(&tensor, TensorOp::SpMttkrp { mode: 0 }, 16);
        let fc_dev = FcooDevice::upload(device.memory(), &bf.base).unwrap();
        let bf_dev = BfCooDevice::upload(device.memory(), &bf).unwrap();
        let factors: Vec<DeviceMatrix> = tensor
            .shape()
            .iter()
            .enumerate()
            .map(|(m, &size)| {
                let host = DenseMatrix::random(size, 8, 70 + m as u64);
                DeviceMatrix::upload(device.memory(), &host).unwrap()
            })
            .collect();
        let refs: Vec<&DeviceMatrix> = factors.iter().collect();
        for cfg in [
            LaunchConfig::default(),
            LaunchConfig {
                use_rocache: false,
                ..Default::default()
            },
            LaunchConfig {
                use_segscan: false,
                ..Default::default()
            },
            LaunchConfig {
                block_size: 32,
                ..Default::default()
            },
        ] {
            let (reference, _) = kernels::spmttkrp(&device, &fc_dev, &refs, &cfg).unwrap();
            let (result, _) = bf_dev.spmttkrp(&device, &refs, &cfg).unwrap();
            assert_eq!(bits(result.data()), bits(reference.data()));
        }
    }

    #[test]
    fn spttmc_bit_exact_with_fcoo() {
        let (tensor, _) = datasets::generate(DatasetKind::Delicious, 2000, 13);
        let device = GpuDevice::titan_x();
        let bf = BfCoo::from_coo(&tensor, TensorOp::SpTtmc { mode: 0 }, 8);
        let fc_dev = FcooDevice::upload(device.memory(), &bf.base).unwrap();
        let bf_dev = BfCooDevice::upload(device.memory(), &bf).unwrap();
        let a = DeviceMatrix::upload(
            device.memory(),
            &DenseMatrix::random(tensor.shape()[1], 4, 21),
        )
        .unwrap();
        let b = DeviceMatrix::upload(
            device.memory(),
            &DenseMatrix::random(tensor.shape()[2], 3, 22),
        )
        .unwrap();
        let cfg = LaunchConfig::default();
        let (reference, _) = kernels::spttmc_norder(&device, &fc_dev, &[&a, &b], &cfg).unwrap();
        let (result, _) = bf_dev.spttmc_norder(&device, &[&a, &b], &cfg).unwrap();
        assert_eq!(bits(result.data()), bits(reference.data()));
    }

    /// Long-fiber power-law tensor: every run of 32 consecutive non-zeros
    /// sits inside one or two fibers, so the fiber-mode bucket counts stay
    /// tiny while a uniform scatter keeps every bucket near 32.
    fn skew_and_uniform_tensors() -> (SparseTensorCoo, SparseTensorCoo) {
        let (slices, jdim, kdim) = (400u32, 300u32, 2000u32);
        let mut entries = Vec::new();
        for s in 0..slices {
            let len = ((30_000.0 / f64::powf(s as f64 + 1.0, 1.3)) as u32).clamp(1, kdim);
            let j = (s * 7) % jdim;
            for t in 0..len {
                let k = (t * 13) % kdim;
                entries.push((vec![s, j, k], (s + t) as f32 * 0.001 + 1.0));
            }
        }
        let shape = vec![slices as usize, jdim as usize, kdim as usize];
        let skew = SparseTensorCoo::from_entries(shape.clone(), &entries);
        let n = skew.nnz() as u32;
        let mut uentries = Vec::new();
        for t in 0..n {
            let i = (t.wrapping_mul(2_654_435_761) >> 8) % slices;
            let j = (t.wrapping_mul(40_503) >> 4) % jdim;
            let k = t.wrapping_mul(9_973) % kdim;
            uentries.push((vec![i, j, k], t as f32 * 0.001 + 1.0));
        }
        let uniform = SparseTensorCoo::from_entries(shape, &uentries);
        (skew, uniform)
    }

    #[test]
    fn bucket_metadata_separates_skewed_from_uniform_tensors() {
        // The format's whole value proposition: on a long-fiber power-law
        // tensor the exact distinct-row counts prove each run's gather
        // touches a handful of factor rows, while a uniform scatter leaves
        // every bucket saturated. This metadata is what lets the certifier
        // bound BF-COO's gather cost below F-COO's `live` worst case.
        let (skew, uniform) = skew_and_uniform_tensors();
        let mean =
            |buckets: &[u32]| buckets.iter().map(|&b| b as f64).sum::<f64>() / buckets.len() as f64;
        let op = TensorOp::SpMttkrp { mode: 0 };
        let bf_skew = BfCoo::from_coo(&skew, op, 32);
        let bf_uniform = BfCoo::from_coo(&uniform, op, 32);
        // Product mode j: fibers pin j, so runs inside a fiber dedup to ~1.
        let skew_j = mean(&bf_skew.buckets[0]);
        let uniform_j = mean(&bf_uniform.buckets[0]);
        assert!(
            skew_j < 4.0,
            "skewed fiber-mode buckets should be tiny: {skew_j}"
        );
        assert!(
            uniform_j > 4.0 * skew_j,
            "uniform buckets {uniform_j} should dwarf skewed {skew_j}"
        );
        // Every bucket is a valid certificate bound: within [1, RUN].
        for buckets in bf_skew.buckets.iter().chain(&bf_uniform.buckets) {
            assert!(buckets.iter().all(|&b| (1..=RUN as u32).contains(&b)));
        }
    }

    #[test]
    fn upload_accounts_bucket_bytes() {
        let device = GpuDevice::titan_x();
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 2000, 15);
        let bf = BfCoo::from_coo(&tensor, TensorOp::SpMttkrp { mode: 0 }, 8);
        let before = device.memory().live_bytes();
        let uploaded = BfCooDevice::upload(device.memory(), &bf).unwrap();
        let used = device.memory().live_bytes() - before;
        assert!(
            (used as i64 - bf.total_bytes() as i64).abs() <= 8,
            "device {used} vs total {}",
            bf.total_bytes()
        );
        drop(uploaded);
        assert_eq!(device.memory().live_bytes(), before);
    }
}
