//! CPU parallel substrate for the unified sparse tensor reproduction.
//!
//! The paper's CPU baselines (ParTI-OMP, SPLATT) are OpenMP programs. This
//! crate provides the equivalent primitives on stable Rust without external
//! runtime dependencies beyond `crossbeam` and `parking_lot`:
//!
//! * [`Pool`] — a persistent fork-join worker pool (one `#pragma omp parallel`
//!   region per [`Pool::run`] call),
//! * [`parallel_for`] / [`parallel_for_chunked`] — `#pragma omp for` with
//!   dynamic chunk scheduling,
//! * [`par_chunks_mut`] — parallel iteration over disjoint mutable slice
//!   chunks,
//! * [`par_reduce`] — `#pragma omp for reduction(...)` with per-worker
//!   accumulators,
//! * [`PerWorker`] — per-thread scratch storage.
//!
//! The same pool also drives the host-side execution of simulated GPU thread
//! blocks in the `gpu-sim` crate.

mod parallel;
mod pool;
mod scratch;

pub use parallel::{par_chunks_mut, par_map, par_reduce, parallel_for, parallel_for_chunked};
pub use pool::{global_pool, Pool};
pub use scratch::PerWorker;

/// Basic information about the host CPU, used when printing the platform
/// configuration (paper Table III).
#[derive(Debug, Clone)]
pub struct CpuInfo {
    /// Number of logical cores the pool will use by default.
    pub logical_cores: usize,
    /// Number of worker threads in the global pool.
    pub pool_threads: usize,
}

/// Queries host CPU information.
pub fn cpu_info() -> CpuInfo {
    CpuInfo {
        logical_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        pool_threads: global_pool().num_threads(),
    }
}
