//! Per-worker scratch storage.

use crate::pool::global_pool;
use parking_lot::Mutex;

/// One value per pool worker, for thread-local accumulators or scratch
/// buffers inside parallel regions.
///
/// Index with the `worker` argument that [`Pool::run`](crate::Pool::run)
/// passes to the task body.
pub struct PerWorker<T> {
    slots: Vec<Mutex<T>>,
}

impl<T> PerWorker<T> {
    /// Creates one slot per global-pool worker using `init`.
    pub fn new(init: impl Fn() -> T) -> Self {
        let workers = global_pool().num_threads();
        PerWorker {
            slots: (0..workers).map(|_| Mutex::new(init())).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the pool has no workers (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Locks and passes worker `worker`'s slot to `f`.
    ///
    /// The lock is uncontended in the intended usage (each worker only touches
    /// its own slot), so this costs one atomic.
    pub fn with<R>(&self, worker: usize, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.slots[worker].lock())
    }

    /// Consumes the storage and returns all slot values.
    pub fn into_values(self) -> Vec<T> {
        self.slots
            .into_iter()
            .map(|slot| slot.into_inner())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_worker_accumulation() {
        let scratch = PerWorker::new(|| 0u64);
        global_pool().run(1000, &|i, worker| {
            scratch.with(worker, |acc| *acc += i as u64);
        });
        let total: u64 = scratch.into_values().into_iter().sum();
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn slot_count_matches_pool() {
        let scratch = PerWorker::new(Vec::<u8>::new);
        assert_eq!(scratch.len(), global_pool().num_threads());
        assert!(!scratch.is_empty());
    }
}
