//! Parallel loop and reduction helpers on top of [`Pool`](crate::Pool).

use crate::pool::global_pool;
use parking_lot::Mutex;

/// Executes `body(i)` for every `i in 0..n` on the global pool.
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let total = AtomicU64::new(0);
/// cpu_par::parallel_for(1000, |i| {
///     total.fetch_add(i as u64, Ordering::Relaxed);
/// });
/// assert_eq!(total.into_inner(), 999 * 1000 / 2);
/// ```
///
/// Iterations are grouped into chunks internally so per-task dispatch overhead
/// stays negligible even for very large `n`.
pub fn parallel_for<F>(n: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_chunked(n, default_chunk(n), |start, end| {
        for i in start..end {
            body(i);
        }
    });
}

/// Executes `body(start, end)` over disjoint ranges covering `0..n`, each of
/// length at most `chunk`, dynamically scheduled over the global pool.
pub fn parallel_for_chunked<F>(n: usize, chunk: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if n == 0 {
        return;
    }
    let chunk = chunk.max(1);
    let num_chunks = n.div_ceil(chunk);
    if num_chunks == 1 {
        body(0, n);
        return;
    }
    global_pool().run(num_chunks, &|task, _worker| {
        let start = task * chunk;
        let end = (start + chunk).min(n);
        body(start, end);
    });
}

/// Splits `data` into chunks of `chunk_size` elements and runs
/// `body(chunk_index, chunk)` on each in parallel.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_size = chunk_size.max(1);
    let n = data.len();
    if n == 0 {
        return;
    }
    let base = SendPtr(data.as_mut_ptr());
    let base = &base; // capture the Sync wrapper, not the raw pointer field
    let num_chunks = n.div_ceil(chunk_size);
    global_pool().run(num_chunks, &|task, _worker| {
        let start = task * chunk_size;
        let len = chunk_size.min(n - start);
        // SAFETY: chunks `task * chunk_size .. +len` are pairwise disjoint and
        // in-bounds, and `data` is exclusively borrowed for the whole region.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), len) };
        body(task, chunk);
    });
}

/// Parallel map: computes `f(i)` for every `i in 0..n` and collects the
/// results in order.
pub fn par_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    par_chunks_mut(&mut out, 64, |chunk_index, chunk| {
        for (offset, slot) in chunk.iter_mut().enumerate() {
            *slot = Some(f(chunk_index * 64 + offset));
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every index visited"))
        .collect()
}

/// Parallel reduction: maps every `i in 0..n` through `map` into a per-worker
/// accumulator (seeded by `identity`) and folds the accumulators with
/// `combine`.
pub fn par_reduce<A, M, C>(n: usize, identity: impl Fn() -> A + Sync, map: M, combine: C) -> A
where
    A: Send,
    M: Fn(&mut A, usize) + Sync,
    C: Fn(A, A) -> A,
{
    let pool = global_pool();
    let workers = pool.num_threads();
    let accumulators: Vec<Mutex<Option<A>>> = (0..workers).map(|_| Mutex::new(None)).collect();
    let chunk = default_chunk(n);
    let num_chunks = n.div_ceil(chunk.max(1)).max(if n == 0 { 0 } else { 1 });
    if n == 0 {
        return identity();
    }
    pool.run(num_chunks, &|task, worker| {
        let start = task * chunk;
        let end = (start + chunk).min(n);
        let mut guard = accumulators[worker].lock();
        let accumulator = guard.get_or_insert_with(&identity);
        for i in start..end {
            map(accumulator, i);
        }
    });
    accumulators
        .into_iter()
        .filter_map(|slot| slot.into_inner())
        .fold(identity(), combine)
}

/// Chunk size heuristic: at least 4 chunks per worker for load balance, but
/// never chunks smaller than 64 iterations.
fn default_chunk(n: usize) -> usize {
    let workers = global_pool().num_threads();
    let target_chunks = workers * 4;
    (n.div_ceil(target_chunks.max(1))).max(64).min(n.max(1))
}

struct SendPtr<T>(*mut T);
// SAFETY: the pointer targets a slice that outlives the scoped workers, and
// each worker dereferences a disjoint chunk of it.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: see `Send` above — chunk disjointness makes shared access sound.
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_covers_range() {
        let hits: Vec<AtomicUsize> = (0..5000).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(5000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty() {
        parallel_for(0, |_| panic!("must not run"));
    }

    #[test]
    fn chunked_ranges_tile_exactly() {
        let covered = Mutex::new(vec![false; 1037]);
        parallel_for_chunked(1037, 100, |start, end| {
            assert!(end - start <= 100);
            let mut guard = covered.lock();
            for i in start..end {
                assert!(!guard[i], "range overlap at {i}");
                guard[i] = true;
            }
        });
        assert!(covered.into_inner().into_iter().all(|b| b));
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_chunks() {
        let mut data = vec![0usize; 999];
        par_chunks_mut(&mut data, 128, |chunk_index, chunk| {
            for value in chunk.iter_mut() {
                *value = chunk_index + 1;
            }
        });
        for (i, value) in data.iter().enumerate() {
            assert_eq!(*value, i / 128 + 1);
        }
    }

    #[test]
    fn par_chunks_mut_empty_slice() {
        let mut data: Vec<u8> = Vec::new();
        par_chunks_mut(&mut data, 16, |_, _| panic!("must not run"));
    }

    #[test]
    fn par_map_collects_in_order() {
        let squares = par_map(2000, |i| i * i);
        assert_eq!(squares.len(), 2000);
        assert!(squares.iter().enumerate().all(|(i, &sq)| sq == i * i));
    }

    #[test]
    fn par_map_empty() {
        let empty: Vec<u8> = par_map(0, |_| panic!("must not run"));
        assert!(empty.is_empty());
    }

    #[test]
    fn reduce_sums_correctly() {
        let n = 100_000usize;
        let total = par_reduce(n, || 0u64, |acc, i| *acc += i as u64, |a, b| a + b);
        assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn reduce_empty_returns_identity() {
        let total = par_reduce(0, || 42u64, |_, _| panic!("must not run"), |a, b| a + b);
        assert_eq!(total, 42);
    }

    #[test]
    fn reduce_max() {
        let data: Vec<u32> = (0..10_000)
            .map(|i| (i * 2654435761u64 % 65536) as u32)
            .collect();
        let expected = *data.iter().max().unwrap();
        let found = par_reduce(
            data.len(),
            || 0u32,
            |acc, i| *acc = (*acc).max(data[i]),
            |a, b| a.max(b),
        );
        assert_eq!(found, expected);
    }
}
