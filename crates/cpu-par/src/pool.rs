//! A persistent fork-join thread pool.
//!
//! Each [`Pool::run`] call is one parallel region: every worker repeatedly
//! claims task indices from a shared atomic counter and invokes the caller's
//! closure. The caller blocks until all tasks have finished, which is what
//! makes it sound to smuggle a borrowed closure across the thread boundary —
//! the borrow provably outlives the region.

use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A task body: called with `(task_index, worker_index)`.
type Task<'a> = dyn Fn(usize, usize) + Sync + 'a;

/// Type-erased pointer to the current region's task body.
///
/// Stored as a raw wide pointer so the pool can be `'static` while the task
/// borrows from the caller's stack. Soundness argument: the pointer is only
/// dereferenced between the region's start and the completion signal, and
/// [`Pool::run`] does not return until the completion signal fires.
#[derive(Clone, Copy)]
struct TaskPtr(*const Task<'static>);
// SAFETY: dereferenced only while `Pool::run` blocks on the completion
// signal, so the pointee (a `Sync` closure) is live; see the doc above.
unsafe impl Send for TaskPtr {}
// SAFETY: the pointee is `Sync`, so shared access from workers is sound.
unsafe impl Sync for TaskPtr {}

struct Region {
    task: TaskPtr,
    /// Total number of task indices in this region.
    num_tasks: usize,
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Number of workers still executing region tasks.
    active: AtomicUsize,
    /// Set if any task panicked.
    poisoned: AtomicUsize,
}

struct Shared {
    /// Current region, replaced for every `run` call. The `u64` is a region
    /// sequence number so sleeping workers can tell a new region arrived.
    region: Mutex<(u64, Option<Arc<Region>>)>,
    work_ready: Condvar,
    region_done: Condvar,
    shutdown: AtomicUsize,
}

/// A persistent fork-join worker pool.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    num_threads: usize,
}

impl Pool {
    /// Creates a pool with `num_threads` workers (minimum 1).
    pub fn new(num_threads: usize) -> Self {
        let num_threads = num_threads.max(1);
        let shared = Arc::new(Shared {
            region: Mutex::new((0, None)),
            work_ready: Condvar::new(),
            region_done: Condvar::new(),
            shutdown: AtomicUsize::new(0),
        });
        let handles = (0..num_threads)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cpu-par-{worker}"))
                    .spawn(move || worker_loop(&shared, worker))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            handles,
            num_threads,
        }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs one parallel region: `task(i, worker)` is invoked exactly once for
    /// every `i in 0..num_tasks`, distributed dynamically over the workers.
    ///
    /// Blocks until every task has completed. Panics (after the region has
    /// fully drained) if any task panicked.
    pub fn run<'a>(&self, num_tasks: usize, task: &(dyn Fn(usize, usize) + Sync + 'a)) {
        if num_tasks == 0 {
            return;
        }
        // Erase the closure lifetime; see `TaskPtr` for the soundness argument.
        // SAFETY: only the lifetime is transmuted; `run` does not return
        // until every worker has dropped its reference (see `TaskPtr`).
        let erased: TaskPtr =
            TaskPtr(unsafe { std::mem::transmute::<*const Task<'a>, *const Task<'static>>(task) });
        let region = Arc::new(Region {
            task: erased,
            num_tasks,
            next: AtomicUsize::new(0),
            active: AtomicUsize::new(self.num_threads),
            poisoned: AtomicUsize::new(0),
        });
        {
            let mut guard = self.shared.region.lock();
            guard.0 += 1;
            guard.1 = Some(Arc::clone(&region));
            self.shared.work_ready.notify_all();
        }
        // Wait for all workers to drain the region.
        {
            let mut guard = self.shared.region.lock();
            while region.active.load(Ordering::Acquire) != 0 {
                self.shared.region_done.wait(&mut guard);
            }
            // Clear the region so late wake-ups observe no work.
            guard.1 = None;
        }
        if region.poisoned.load(Ordering::Acquire) != 0 {
            panic!("cpu-par: a parallel task panicked");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(1, Ordering::Release);
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    let mut seen_seq = 0u64;
    loop {
        let region = {
            let mut guard = shared.region.lock();
            loop {
                if shared.shutdown.load(Ordering::Acquire) != 0 {
                    return;
                }
                if guard.0 != seen_seq {
                    if let Some(region) = guard.1.clone() {
                        seen_seq = guard.0;
                        break region;
                    }
                    // Region already drained and cleared; skip its sequence.
                    seen_seq = guard.0;
                }
                shared.work_ready.wait(&mut guard);
            }
        };
        // Claim and execute tasks until the region is exhausted.
        // SAFETY: the region is only handed to workers while `Pool::run`
        // blocks, which keeps the erased closure alive (see `TaskPtr`).
        let task: &Task<'static> = unsafe { &*region.task.0 };
        loop {
            let index = region.next.fetch_add(1, Ordering::Relaxed);
            if index >= region.num_tasks {
                break;
            }
            if catch_unwind(AssertUnwindSafe(|| task(index, worker))).is_err() {
                region.poisoned.store(1, Ordering::Release);
            }
        }
        let remaining = region.active.fetch_sub(1, Ordering::AcqRel) - 1;
        if remaining == 0 {
            let _guard = shared.region.lock();
            shared.region_done.notify_all();
        }
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// Returns the process-wide pool, created on first use with one worker per
/// logical core (overridable via the `CPU_PAR_THREADS` environment variable).
pub fn global_pool() -> &'static Pool {
    GLOBAL.get_or_init(|| {
        let threads = std::env::var("CPU_PAR_THREADS")
            .ok()
            .and_then(|value| value.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Pool::new(threads)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run(1000, &|i, _| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn reusable_across_regions() {
        let pool = Pool::new(3);
        for round in 0..50 {
            let total = AtomicUsize::new(0);
            pool.run(round + 1, &|i, _| {
                total.fetch_add(i + 1, Ordering::Relaxed);
            });
            let n = round + 1;
            assert_eq!(total.load(Ordering::Relaxed), n * (n + 1) / 2);
        }
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let pool = Pool::new(2);
        pool.run(0, &|_, _| panic!("must not run"));
    }

    #[test]
    fn worker_index_is_in_range() {
        let pool = Pool::new(5);
        pool.run(200, &|_, worker| assert!(worker < 5));
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = Pool::new(1);
        let total = AtomicUsize::new(0);
        pool.run(64, &|i, worker| {
            assert_eq!(worker, 0);
            total.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 64 * 63 / 2);
    }

    #[test]
    fn panicking_task_poisons_region() {
        let pool = Pool::new(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i, _| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(outcome.is_err());
        // Pool remains usable after a poisoned region.
        let total = AtomicUsize::new(0);
        pool.run(4, &|i, _| {
            total.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn global_pool_is_singleton() {
        let a = global_pool() as *const Pool;
        let b = global_pool() as *const Pool;
        assert_eq!(a, b);
    }

    #[test]
    fn borrows_caller_stack_data() {
        let pool = Pool::new(4);
        let data = vec![2u64; 512];
        let total = AtomicU64::new(0);
        pool.run(512, &|i, _| {
            total.fetch_add(data[i], Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 1024);
    }
}
