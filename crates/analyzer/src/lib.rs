//! Symbolic kernel analyzer: proves launch properties of F-COO
//! configurations without running a single launch.
//!
//! The PR-1 sanitizer can only *observe* the properties the paper's speedups
//! rest on — coalesced streaming loads, convergent barriers, atomics
//! confined to partition frontiers — dynamically, one recorded launch at a
//! time. This crate decides them statically for every `(kernel, BLOCK_SIZE,
//! threadlen)` point of the tuning grid by abstract interpretation of one
//! symbolic warp: lane `l ∈ [0, 32)`, symbolic partition index, and the
//! exact `nnz`/`threadlen` bounds of the [`Fcoo`] header (see
//! [`model::LaunchGeometry`] for the domain, `docs/ANALYZER.md` for the
//! full write-up).
//!
//! Each property gets a three-valued [`Verdict`]:
//!
//! * [`Verdict::Proved`] — holds for **every** concrete lane/partition/base
//!   assignment; the proof is exact arithmetic, not sampling.
//! * [`Verdict::Refuted`] — a concrete [`Counterexample`] (block, warp,
//!   lane assignment, worst-case addresses) witnesses the violation and
//!   reproduces under the dynamic sanitizer's replay.
//! * [`Verdict::Unknown`] — the property depends on tensor *values* in a
//!   way the static model cannot bracket; the verdict degrades to the
//!   dynamic sanitizer, which checks the recorded trace instead.
//!
//! The [`cost`] module extends the boolean verdicts with *certified counter
//! envelopes*: `[lo, hi]` bounds on every raw counter the golden suite pins,
//! derived from F-COO headers alone. That decides properties that used to be
//! `Unknown` — factor-row gather traffic is now bracketed by
//! [`cost::gather_bounds`] — and powers [`tune_certified`], which eliminates
//! grid configurations whose certified lower bound exceeds another's upper
//! bound without simulating a single launch.
//!
//! Verdicts feed the consumers: [`tune_filter`] prunes refuted and
//! strictly-dominated configs from [`fcoo::tune_with_filter`] sweeps (same
//! winner, strictly fewer simulated launches), [`tune_certified`] layers
//! envelope dominance on top (zero-launch winners when one config dominates
//! the grid), [`plan_report`] lets the serving plan cache refuse persisted
//! plans whose configuration is refuted at load time, and `tensortool
//! analyze` / `tensortool certify` print the verdict and envelope matrices.

pub mod cost;
pub mod model;

use fcoo::{AnyFormat, Fcoo, FormatKind, TensorOp, TuneResult};
use gpu_sim::symbolic::{AffineLaneAccess, RangeAccess};
use gpu_sim::{DeviceConfig, GpuDevice};
use model::{launch_shape_violation, LaunchGeometry};
use sanitizer::{Finding, Pass, Report, Severity};
use tensor_core::SparseTensorCoo;

/// Which kernel a verdict is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Unified SpTTM (paper §IV-B).
    SpTtm,
    /// Unified one-shot SpMTTKRP (paper §IV-C).
    SpMttkrp,
    /// Unified SpTTMc (chained two-factor TTM).
    SpTtmc,
    /// Two-step SpMTTKRP baseline (Fig. 3a): unified SpTTM plus a fiber
    /// reduction over the materialized intermediate.
    TwoStep,
}

impl KernelKind {
    /// All four analyzed kernels.
    pub const ALL: [KernelKind; 4] = [
        KernelKind::SpTtm,
        KernelKind::SpMttkrp,
        KernelKind::SpTtmc,
        KernelKind::TwoStep,
    ];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::SpTtm => "SpTTM",
            KernelKind::SpMttkrp => "SpMTTKRP",
            KernelKind::SpTtmc => "SpTTMc",
            KernelKind::TwoStep => "two-step",
        }
    }

    /// The tensor operation whose F-COO preprocessing the kernel consumes.
    /// For the two-step baseline that is its step-1 SpTTM along the second
    /// product mode.
    pub fn op(self, mode: usize, order: usize) -> TensorOp {
        match self {
            KernelKind::SpTtm => TensorOp::SpTtm { mode },
            KernelKind::SpMttkrp => TensorOp::SpMttkrp { mode },
            KernelKind::SpTtmc => TensorOp::SpTtmc { mode },
            KernelKind::TwoStep => {
                let second_product = (0..order)
                    .filter(|&m| m != mode)
                    .nth(1)
                    .expect("two-step needs two product modes");
                TensorOp::SpTtm {
                    mode: second_product,
                }
            }
        }
    }

    /// Dense output columns per rank-`rank` launch (the grid y-extent).
    fn columns(self, rank: usize) -> usize {
        match self {
            KernelKind::SpTtmc => rank * rank,
            _ => rank,
        }
    }
}

/// A launch property the analyzer decides per configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Property {
    /// The launch fits the device: block size a warp multiple within the
    /// thread and shared-memory limits.
    LaunchShape,
    /// Every warp of a block reaches each `syncthreads` barrier or none do.
    BarrierConvergence,
    /// The F-COO flag vectors are mutually consistent, including the padded
    /// final partition.
    SegmentFlags,
    /// Non-exclusive (atomic) output updates happen only at partition
    /// frontiers, bounding contention.
    AtomicConfinement,
    /// Warp-wide global accesses stay within a bounded factor of the ideal
    /// transaction count for every base alignment.
    Coalescing,
    /// No launched warp slot is statically dead when a strictly smaller
    /// configured block size covers the same work.
    EffectiveWarps,
}

impl Property {
    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Property::LaunchShape => "launch-shape",
            Property::BarrierConvergence => "barrier-convergence",
            Property::SegmentFlags => "segment-flags",
            Property::AtomicConfinement => "atomic-confinement",
            Property::Coalescing => "coalescing",
            Property::EffectiveWarps => "effective-warps",
        }
    }

    /// True for properties whose violation makes a launch *incorrect* (or a
    /// panic), as opposed to merely slow. Only these gate plan loading.
    pub fn is_correctness(self) -> bool {
        matches!(
            self,
            Property::LaunchShape | Property::BarrierConvergence | Property::SegmentFlags
        )
    }
}

/// Outcome of deciding one property for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Holds for every concrete assignment of the symbolic warp.
    Proved,
    /// Violated; a concrete counterexample is attached.
    Refuted,
    /// Data-dependent: degraded to the dynamic sanitizer.
    Unknown,
}

/// A concrete witness of a refutation: the lane/index assignment that
/// violates the property, reproducible under dynamic replay.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Linear block index of the witnessing warp.
    pub block: usize,
    /// Warp index within the block.
    pub warp: usize,
    /// What concretely goes wrong there.
    pub detail: String,
    /// For coalescing refutations: the per-lane byte offsets (relative to
    /// the buffer base) of the worst-aligned witnessing access.
    pub lane_offsets: Vec<u64>,
}

/// One property's verdict for one configuration.
#[derive(Debug, Clone)]
pub struct PropertyVerdict {
    /// The property decided.
    pub property: Property,
    /// The three-valued outcome.
    pub verdict: Verdict,
    /// Why: the proof sketch, the violation, or what data the verdict waits
    /// on.
    pub detail: String,
    /// Present exactly when `verdict` is [`Verdict::Refuted`].
    pub counterexample: Option<Counterexample>,
}

/// All property verdicts for one `(kernel, block_size, threadlen)` point.
#[derive(Debug, Clone)]
pub struct ConfigVerdict {
    /// The analyzed kernel.
    pub kernel: KernelKind,
    /// Threads per block.
    pub block_size: usize,
    /// Non-zeros per thread.
    pub threadlen: usize,
    /// One verdict per [`Property`].
    pub properties: Vec<PropertyVerdict>,
}

impl ConfigVerdict {
    /// The weakest verdict across all properties (refuted < unknown <
    /// proved).
    pub fn overall(&self) -> Verdict {
        if self
            .properties
            .iter()
            .any(|p| p.verdict == Verdict::Refuted)
        {
            Verdict::Refuted
        } else if self
            .properties
            .iter()
            .any(|p| p.verdict == Verdict::Unknown)
        {
            Verdict::Unknown
        } else {
            Verdict::Proved
        }
    }

    /// Refuted properties, in declaration order.
    pub fn refuted(&self) -> impl Iterator<Item = &PropertyVerdict> {
        self.properties
            .iter()
            .filter(|p| p.verdict == Verdict::Refuted)
    }

    /// True when a *correctness* property is refuted — the plan cache must
    /// refuse such a configuration.
    pub fn correctness_refuted(&self) -> bool {
        self.refuted().any(|p| p.property.is_correctness())
    }
}

/// The verdict matrix of one kernel over a tuning grid.
#[derive(Debug, Clone)]
pub struct GridAnalysis {
    /// The analyzed kernel.
    pub kernel: KernelKind,
    /// Output mode of the operation.
    pub mode: usize,
    /// Factor rank.
    pub rank: usize,
    /// Block-size axis of the grid.
    pub block_sizes: Vec<usize>,
    /// Threadlen axis of the grid.
    pub threadlens: Vec<usize>,
    /// One verdict per grid point, threadlen-major (matching sweep order).
    pub configs: Vec<ConfigVerdict>,
}

impl GridAnalysis {
    /// Grid points whose overall verdict is refuted.
    pub fn refuted_configs(&self) -> impl Iterator<Item = &ConfigVerdict> {
        self.configs
            .iter()
            .filter(|c| c.overall() == Verdict::Refuted)
    }

    /// `(proved, refuted, unknown)` counts over the grid.
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut tally = (0, 0, 0);
        for config in &self.configs {
            match config.overall() {
                Verdict::Proved => tally.0 += 1,
                Verdict::Refuted => tally.1 += 1,
                Verdict::Unknown => tally.2 += 1,
            }
        }
        tally
    }

    /// Renders the verdict matrix (rows: threadlen, columns: block size;
    /// `P` proved, `R` refuted, `?` unknown → dynamic sanitizer) followed by
    /// one line per refuted grid point.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let (proved, refuted, unknown) = self.tally();
        let _ = writeln!(
            out,
            "{} (mode {}, rank {}): {proved} proved, {refuted} refuted, {unknown} unknown",
            self.kernel.label(),
            // 1-based on output, matching the paper's notation and the CLI.
            self.mode + 1,
            self.rank
        );
        let _ = write!(out, "  T\\B ");
        for b in &self.block_sizes {
            let _ = write!(out, "{b:>6}");
        }
        let _ = writeln!(out);
        for (ti, t) in self.threadlens.iter().enumerate() {
            let _ = write!(out, "{t:>5} ");
            for bi in 0..self.block_sizes.len() {
                let config = &self.configs[ti * self.block_sizes.len() + bi];
                let cell = match config.overall() {
                    Verdict::Proved => 'P',
                    Verdict::Refuted => 'R',
                    Verdict::Unknown => '?',
                };
                let _ = write!(out, "{cell:>6}");
            }
            let _ = writeln!(out);
        }
        for config in self.refuted_configs() {
            for p in config.refuted() {
                let _ = writeln!(
                    out,
                    "  refuted ({}, T={}): {}: {}",
                    config.block_size,
                    config.threadlen,
                    p.property.label(),
                    p.detail
                );
            }
        }
        out
    }
}

/// Analyzes one kernel over a full `(block_sizes × threadlens)` grid for
/// `tensor`. The F-COO preprocessing runs host-side once per threadlen; no
/// launch is simulated. Returns `None` when the kernel does not apply (the
/// two-step baseline needs a 3-order tensor).
pub fn analyze_tensor(
    config: &DeviceConfig,
    tensor: &SparseTensorCoo,
    kernel: KernelKind,
    mode: usize,
    rank: usize,
    block_sizes: &[usize],
    threadlens: &[usize],
) -> Option<GridAnalysis> {
    if kernel == KernelKind::TwoStep && tensor.order() != 3 {
        return None;
    }
    let mut configs = Vec::with_capacity(block_sizes.len() * threadlens.len());
    for &threadlen in threadlens {
        let fcoo = Fcoo::from_coo(tensor, kernel.op(mode, tensor.order()), threadlen);
        let flags = sanitizer::check_fcoo(&fcoo);
        for &block_size in block_sizes {
            configs.push(analyze_point(
                config,
                kernel,
                &fcoo,
                &flags,
                block_size,
                rank,
                block_sizes,
            ));
        }
    }
    Some(GridAnalysis {
        kernel,
        mode,
        rank,
        block_sizes: block_sizes.to_vec(),
        threadlens: threadlens.to_vec(),
        configs,
    })
}

/// [`analyze_tensor`] for all four kernels (skipping inapplicable ones).
pub fn analyze_all(
    config: &DeviceConfig,
    tensor: &SparseTensorCoo,
    mode: usize,
    rank: usize,
    block_sizes: &[usize],
    threadlens: &[usize],
) -> Vec<GridAnalysis> {
    KernelKind::ALL
        .iter()
        .filter_map(|&kernel| {
            analyze_tensor(config, tensor, kernel, mode, rank, block_sizes, threadlens)
        })
        .collect()
}

/// Decides every property for one grid point. `fcoo` is the kernel's
/// preprocessed input (the step-1 SpTTM tensor for the two-step baseline)
/// and `flags` its lint report.
fn analyze_point(
    config: &DeviceConfig,
    kernel: KernelKind,
    fcoo: &Fcoo,
    flags: &Report,
    block_size: usize,
    rank: usize,
    grid_block_sizes: &[usize],
) -> ConfigVerdict {
    let columns = kernel.columns(rank);
    let shared_bytes = (block_size / 32) * 8;
    let geometry = LaunchGeometry::new(
        block_size,
        fcoo.threadlen,
        fcoo.nnz(),
        columns,
        shared_bytes,
    );
    let properties = vec![
        launch_shape_verdict(config, &geometry),
        barrier_verdict(kernel),
        segment_flags_verdict(fcoo, flags),
        atomic_verdict(kernel, fcoo, &geometry, rank),
        coalescing_verdict(config, kernel, fcoo, &geometry, rank),
        effective_warps_verdict(config, &geometry, grid_block_sizes),
    ];

    ConfigVerdict {
        kernel,
        block_size,
        threadlen: fcoo.threadlen,
        properties,
    }
}

fn launch_shape_verdict(config: &DeviceConfig, geometry: &LaunchGeometry) -> PropertyVerdict {
    match launch_shape_violation(geometry, config) {
        None => PropertyVerdict {
            property: Property::LaunchShape,
            verdict: Verdict::Proved,
            detail: format!(
                "grid ({}, {}) of {}-thread blocks, {} B shared/block within device limits",
                geometry.grid_x, geometry.columns, geometry.block_size, geometry.shared_bytes
            ),
            counterexample: None,
        },
        Some(violation) => PropertyVerdict {
            property: Property::LaunchShape,
            verdict: Verdict::Refuted,
            detail: violation.clone(),
            counterexample: Some(Counterexample {
                block: 0,
                warp: 0,
                detail: violation,
                lane_offsets: Vec::new(),
            }),
        },
    }
}

fn barrier_verdict(kernel: KernelKind) -> PropertyVerdict {
    let detail = match kernel {
        KernelKind::TwoStep => {
            "step 2 contains no barrier; step 1 is the unified kernel, whose barrier sits \
             outside the per-warp loop behind the block-uniform `any_warp_ran` guard"
        }
        _ => {
            "the `syncthreads` pair sits outside the per-warp partition loop, guarded by \
             `any_warp_ran`, which every warp of a block computes identically — dead warps \
             skip work, never the barrier"
        }
    };
    PropertyVerdict {
        property: Property::BarrierConvergence,
        verdict: Verdict::Proved,
        detail: detail.to_owned(),
        counterexample: None,
    }
}

fn segment_flags_verdict(fcoo: &Fcoo, flags: &Report) -> PropertyVerdict {
    if flags.is_clean() {
        let pad = fcoo.nnz() % fcoo.threadlen;
        PropertyVerdict {
            property: Property::SegmentFlags,
            verdict: Verdict::Proved,
            detail: format!(
                "bf/sf/partition pointers mutually consistent over {} partitions \
                 (final partition {}, padding bits clear)",
                fcoo.partitions(),
                if pad == 0 {
                    "full".to_owned()
                } else {
                    format!("padded to {pad} live non-zeros")
                }
            ),
            counterexample: None,
        }
    } else {
        let first = flags
            .findings
            .first()
            .map(|f| f.message.clone())
            .unwrap_or_else(|| "flag lint failed".to_owned());
        PropertyVerdict {
            property: Property::SegmentFlags,
            verdict: Verdict::Refuted,
            detail: first.clone(),
            counterexample: Some(Counterexample {
                block: 0,
                warp: 0,
                detail: first,
                lane_offsets: Vec::new(),
            }),
        }
    }
}

fn atomic_verdict(
    kernel: KernelKind,
    fcoo: &Fcoo,
    geometry: &LaunchGeometry,
    rank: usize,
) -> PropertyVerdict {
    let mut bound = geometry.atomic_bound();
    let mut scope = "the launch".to_owned();
    if kernel == KernelKind::TwoStep {
        // Step 2 reduces nfibs fibers with the same frontier discipline.
        let partitions2 = fcoo.segments().div_ceil(fcoo.threadlen);
        bound += 2 * partitions2 * rank;
        scope = "both launches".to_owned();
    }
    PropertyVerdict {
        property: Property::AtomicConfinement,
        verdict: Verdict::Proved,
        detail: format!(
            "interior segments resolve with exclusive writes; each thread issues at most \
             two frontier atomics per column, ≤ {bound} atomic events across {scope}"
        ),
        counterexample: None,
    }
}

fn coalescing_verdict(
    config: &DeviceConfig,
    kernel: KernelKind,
    fcoo: &Fcoo,
    geometry: &LaunchGeometry,
    rank: usize,
) -> PropertyVerdict {
    let seg = config.transaction_bytes;
    // The streamed F-COO regions: a full warp reads 32·threadlen values of 4
    // bytes contiguously — the largest range any one stream issues.
    let stream = RangeAccess::new(32 * geometry.threadlen * 4, 4);
    debug_assert!(stream.is_coalesced(seg));
    let stream_detail = format!(
        "value/index/flag streams are contiguous ranges: worst alignment costs {} vs {} \
         ideal transactions",
        stream.max_transactions(seg),
        stream.ideal_transactions(seg)
    );
    if kernel != KernelKind::TwoStep {
        // Factor-row gathers target index-dependent rows, but the read-only
        // cache path and the 256-byte buffer alignment bound the traffic per
        // call between `n_factors` and `live · n_factors` transactions
        // regardless of the gathered values — the cost interpreter certifies
        // the launch-wide envelope from the header alone.
        let bounds = cost::gather_bounds(config, fcoo, rank, geometry.block_size);
        return PropertyVerdict {
            property: Property::Coalescing,
            verdict: Verdict::Proved,
            detail: format!(
                "{stream_detail}; factor-row gathers certified within {} transactions \
                 over {} calls (worst call {} ≤ {}× its ideal, any base, any indices)",
                bounds.transactions, bounds.calls, bounds.worst_call, bounds.bound_factor
            ),
            counterexample: None,
        };
    }
    // Two-step step 2: lane l of the first warp reads the intermediate at
    // y[((l·threadlen) + i)·r + col], a per-lane stride of threadlen·r·4
    // bytes — the uncoalesced access Fig. 3a exists to illustrate.
    let nfibs = fcoo.segments();
    let partitions2 = nfibs.div_ceil(fcoo.threadlen);
    let lanes = partitions2.min(32) as u32;
    let gather = AffineLaneAccess::strided((fcoo.threadlen * rank * 4) as u64, 4, lanes);
    if gather.is_coalesced(seg) {
        return PropertyVerdict {
            property: Property::Coalescing,
            verdict: Verdict::Proved,
            detail: format!(
                "{stream_detail}; intermediate gather degenerates to {lanes} lane(s) and \
                 stays within one extra transaction"
            ),
            counterexample: None,
        };
    }
    let worst_base = gather.worst_base_offset(seg);
    let max = gather.max_transactions(seg);
    let ideal = gather.ideal_transactions(seg);
    let detail = format!(
        "step-2 intermediate gather strides {} B per lane: {lanes} lanes cost {max} \
         transactions where {ideal} would be ideal ({:.0}% efficiency)",
        gather.stride_bytes,
        100.0 * gather.worst_case_efficiency(seg)
    );
    PropertyVerdict {
        property: Property::Coalescing,
        verdict: Verdict::Refuted,
        detail: detail.clone(),
        counterexample: Some(Counterexample {
            block: 0,
            warp: 0,
            detail,
            lane_offsets: gather.addrs(worst_base),
        }),
    }
}

fn effective_warps_verdict(
    config: &DeviceConfig,
    geometry: &LaunchGeometry,
    grid_block_sizes: &[usize],
) -> PropertyVerdict {
    let Some((block, warp, nnz_start)) = geometry.first_dead_warp(config) else {
        return PropertyVerdict {
            property: Property::EffectiveWarps,
            verdict: Verdict::Proved,
            detail: "every launched warp slot maps to live partitions".to_owned(),
            counterexample: None,
        };
    };
    let dead = geometry.dead_warps_last_block(config);
    match geometry.dominated_by(grid_block_sizes) {
        Some(smaller) => {
            let detail = format!(
                "warps {warp}..{} of block {block} are statically dead (warp_nnz_start \
                 {nnz_start} ≥ {} work items); block size {smaller} covers the same \
                 {}-partition launch in one block with a strictly cheaper segmented-scan \
                 tree",
                warp + dead,
                geometry.work_items,
                geometry.partitions
            );
            PropertyVerdict {
                property: Property::EffectiveWarps,
                verdict: Verdict::Refuted,
                detail: detail.clone(),
                counterexample: Some(Counterexample {
                    block,
                    warp,
                    detail,
                    lane_offsets: Vec::new(),
                }),
            }
        }
        None => PropertyVerdict {
            property: Property::EffectiveWarps,
            verdict: Verdict::Unknown,
            detail: format!(
                "{dead} warp slot(s) of block {block} are statically dead, but no smaller \
                 candidate block size covers the launch in one block — left to the tuner"
            ),
            counterexample: None,
        },
    }
}

/// The keep-filter [`fcoo::tune_with_filter`] consults: a `(fcoo,
/// block_size)` pair survives unless its launch shape violates the device
/// limits or a strictly smaller candidate block size provably dominates it
/// (see [`model::LaunchGeometry::dominated_by`]). Pruning is
/// winner-preserving by construction, so filtered tuning selects the same
/// best pair while simulating strictly fewer launches whenever anything is
/// pruned.
pub fn tune_filter(
    config: &DeviceConfig,
    candidate_block_sizes: &[usize],
) -> impl Fn(&Fcoo, usize) -> bool {
    let config = config.clone();
    let candidates = candidate_block_sizes.to_vec();
    move |fcoo: &Fcoo, block_size: usize| {
        let geometry = LaunchGeometry::new(
            block_size,
            fcoo.threadlen,
            fcoo.nnz(),
            1,
            (block_size / 32) * 8,
        );
        launch_shape_violation(&geometry, &config).is_none()
            && geometry.dominated_by(&candidates).is_none()
    }
}

/// The [`KernelKind`] whose verdicts apply to a tuned operation.
fn kernel_of(op: TensorOp) -> KernelKind {
    match op {
        TensorOp::SpTtm { .. } => KernelKind::SpTtm,
        TensorOp::SpMttkrp { .. } => KernelKind::SpMttkrp,
        TensorOp::SpTtmc { .. } => KernelKind::SpTtmc,
    }
}

/// [`fcoo::tune`] with the analyzer's static pruning: same winner, strictly
/// fewer simulated launches whenever the grid contains dominated points
/// (recorded in [`TuneResult::pruned`]). Launched pairs whose verdict
/// matrix still contains an `Unknown` — i.e. the grid point degraded to the
/// dynamic sanitizer — are reported in [`TuneResult::unknown`].
pub fn tune_pruned(
    device: &GpuDevice,
    tensor: &SparseTensorCoo,
    op: TensorOp,
    rank: usize,
    block_sizes: Option<&[usize]>,
    threadlens: Option<&[usize]>,
) -> TuneResult {
    let grid = block_sizes.unwrap_or(&fcoo::BLOCK_SIZES);
    let keep = tune_filter(device.config(), grid);
    let mut result =
        fcoo::tune_with_filter(device, tensor, op, rank, block_sizes, threadlens, keep);
    // Annotate residual uncertainty host-side, after the sweep, so the
    // launch sequence (and thus every traced golden counter) is untouched.
    let config = device.config();
    let kernel = kernel_of(op);
    let mut seen_threadlen = Vec::new();
    for point in &result.surface {
        if seen_threadlen.contains(&point.threadlen) {
            continue;
        }
        seen_threadlen.push(point.threadlen);
        let fcoo = Fcoo::from_coo(tensor, op, point.threadlen);
        let flags = sanitizer::check_fcoo(&fcoo);
        for p in result
            .surface
            .iter()
            .filter(|p| p.threadlen == fcoo.threadlen)
        {
            let verdict = analyze_point(config, kernel, &fcoo, &flags, p.block_size, rank, grid);
            if verdict.overall() == Verdict::Unknown {
                result.unknown.push((p.block_size, p.threadlen));
            }
        }
    }
    result
}

/// One grid survivor's certified time envelope, as produced by
/// [`tune_certified`].
#[derive(Debug, Clone)]
pub struct CertifiedPoint {
    /// Threads per block.
    pub block_size: usize,
    /// Non-zeros per thread.
    pub threadlen: usize,
    /// Certified bounds on the launch's `KernelStats::time_us` (the
    /// quantity the tuner minimizes).
    pub time_us: cost::TimeBounds,
}

/// A tuning winner proven without a single trial launch: every other grid
/// configuration was structurally pruned or envelope-dominated.
#[derive(Debug, Clone)]
pub struct CertifiedWinner {
    /// Threads per block of the winning configuration.
    pub block_size: usize,
    /// Non-zeros per thread of the winning configuration.
    pub threadlen: usize,
    /// The winner's certified time envelope.
    pub time_us: cost::TimeBounds,
}

/// Outcome of [`tune_certified`]: the certified envelopes, which grid
/// points were ruled out statically, and either a zero-launch
/// [`CertifiedWinner`] or the launched sweep over the surviving points.
#[derive(Debug, Clone)]
pub struct CertifiedTune {
    /// Certified time envelope of every structurally-surviving grid point,
    /// sweep order (threadlen-major).
    pub envelopes: Vec<CertifiedPoint>,
    /// Pairs removed by the structural filter (refuted launch shape or
    /// provable warp dominance) — never certified, never launched.
    pub pruned: Vec<(usize, usize)>,
    /// Pairs eliminated by envelope dominance — their certified lower bound
    /// exceeds another survivor's upper bound, so they cannot win. Zero
    /// launches spent.
    pub eliminated: Vec<(usize, usize)>,
    /// Present exactly when one configuration dominates the whole grid: the
    /// sweep is skipped entirely ([`CertifiedTune::tuned`] is `None`).
    pub winner: Option<CertifiedWinner>,
    /// The launched sweep over the surviving pairs, when more than one
    /// survived (its [`TuneResult::pruned`] records both structurally- and
    /// dominance-removed pairs; [`TuneResult::unknown`] the launched ones
    /// whose envelope overlap forced a trial).
    pub tuned: Option<TuneResult>,
    /// Total grid points considered.
    pub grid_points: usize,
    /// Trial launches actually simulated.
    pub launches: usize,
}

impl CertifiedTune {
    /// The winning `(BLOCK_SIZE, threadlen)` pair, certified or launched.
    pub fn best_pair(&self) -> (usize, usize) {
        match (&self.winner, &self.tuned) {
            (Some(w), _) => (w.block_size, w.threadlen),
            (None, Some(t)) => t.best_pair(),
            (None, None) => unreachable!("tune_certified always resolves a winner"),
        }
    }

    /// Trial launches avoided versus an exhaustive sweep of the grid.
    pub fn launches_avoided(&self) -> usize {
        self.grid_points - self.launches
    }
}

/// [`tune_pruned`] with certified dominance elimination: after the
/// structural filter, every surviving grid point gets a certified
/// `KernelStats::time_us` envelope from [`cost::certify`], and any point
/// whose *lower* bound exceeds another survivor's *upper* bound is
/// eliminated without a trial launch. Elimination is winner-preserving: the
/// true cost of an eliminated point is ≥ its `lo`, which strictly exceeds
/// the dominating point's `hi` ≥ that point's true cost. When a single
/// survivor remains the sweep is skipped and the tuner returns a
/// [`CertifiedWinner`] with **zero** launches.
pub fn tune_certified(
    device: &GpuDevice,
    tensor: &SparseTensorCoo,
    op: TensorOp,
    rank: usize,
    block_sizes: Option<&[usize]>,
    threadlens: Option<&[usize]>,
) -> CertifiedTune {
    tune_certified_format(
        device,
        tensor,
        FormatKind::Fcoo,
        op,
        rank,
        block_sizes,
        threadlens,
    )
}

/// [`tune_certified`] for any serving format: envelopes come from
/// [`cost::certify_format`] over the format's own gather schedule, and the
/// residual launched sweep (when envelopes overlap) runs through
/// [`fcoo::tune_format_with_filter`] so the trials execute the same
/// format they certify.
#[allow(clippy::too_many_arguments)]
pub fn tune_certified_format(
    device: &GpuDevice,
    tensor: &SparseTensorCoo,
    kind: FormatKind,
    op: TensorOp,
    rank: usize,
    block_sizes: Option<&[usize]>,
    threadlens: Option<&[usize]>,
) -> CertifiedTune {
    let config = device.config();
    let grid_b = block_sizes.unwrap_or(&fcoo::BLOCK_SIZES);
    let grid_t = threadlens.unwrap_or(&fcoo::THREADLENS);
    let keep = tune_filter(config, grid_b);
    let mut pruned = Vec::new();
    let mut envelopes = Vec::new();
    for &threadlen in grid_t {
        let format = AnyFormat::build(kind, tensor, op, threadlen);
        for &block_size in grid_b {
            if !keep(format.base(), block_size) {
                pruned.push((block_size, threadlen));
                continue;
            }
            let cfg = fcoo::LaunchConfig::with_block_size(block_size);
            let envelope = cost::certify_format(config, &format, rank, &cfg);
            envelopes.push(CertifiedPoint {
                block_size,
                threadlen,
                time_us: envelope.stats_time_us(),
            });
        }
    }
    // A survivor is eliminated iff some other survivor's upper bound sits
    // strictly below its lower bound. Comparing against the grid-wide
    // minimum upper bound implements exactly that: the minimizing point can
    // never eliminate itself (lo ≤ hi).
    let min_hi = envelopes
        .iter()
        .map(|p| p.time_us.hi)
        .fold(f64::INFINITY, f64::min);
    let eliminated: Vec<(usize, usize)> = envelopes
        .iter()
        .filter(|p| p.time_us.lo > min_hi)
        .map(|p| (p.block_size, p.threadlen))
        .collect();
    let survivors: Vec<(usize, usize)> = envelopes
        .iter()
        .filter(|p| p.time_us.lo <= min_hi)
        .map(|p| (p.block_size, p.threadlen))
        .collect();
    let grid_points = grid_b.len() * grid_t.len();
    assert!(
        !survivors.is_empty(),
        "certified elimination must keep at least one configuration"
    );
    if let [(block_size, threadlen)] = survivors[..] {
        let time_us = envelopes
            .iter()
            .find(|p| (p.block_size, p.threadlen) == (block_size, threadlen))
            .expect("survivor was certified")
            .time_us;
        return CertifiedTune {
            envelopes,
            pruned,
            eliminated,
            winner: Some(CertifiedWinner {
                block_size,
                threadlen,
                time_us,
            }),
            tuned: None,
            grid_points,
            launches: 0,
        };
    }
    let keep_launch = move |fcoo: &Fcoo, block_size: usize| {
        keep(fcoo, block_size) && survivors.contains(&(block_size, fcoo.threadlen))
    };
    let mut tuned = fcoo::tune_format_with_filter(
        device,
        tensor,
        kind,
        op,
        rank,
        block_sizes,
        threadlens,
        keep_launch,
    );
    tuned.unknown = tuned
        .surface
        .iter()
        .map(|p| (p.block_size, p.threadlen))
        .collect();
    let launches = tuned.surface.len();
    CertifiedTune {
        envelopes,
        pruned,
        eliminated,
        winner: None,
        tuned: Some(tuned),
        grid_points,
        launches,
    }
}

/// One format's best certified configuration, as selected by
/// [`tune_select`].
#[derive(Debug, Clone)]
pub struct FormatBest {
    /// The format this candidate runs in.
    pub kind: FormatKind,
    /// Threads per block of its best grid point.
    pub block_size: usize,
    /// Non-zeros per thread of its best grid point.
    pub threadlen: usize,
    /// The grid point's certified `KernelStats::time_us` envelope — best
    /// means minimal upper bound, the quantity selection compares.
    pub time_us: cost::TimeBounds,
}

/// Outcome of cross-format certified selection: the winning `(format,
/// BLOCK_SIZE, threadlen)` triple plus every format's best certificate, so
/// consumers (the serving planner, `tensortool certify`) can show *why*
/// the winner won.
#[derive(Debug, Clone)]
pub struct FormatChoice {
    /// The selected triple and its certificate.
    pub chosen: FormatBest,
    /// Every format's best certified point, [`FormatKind::ALL`] order.
    pub candidates: Vec<FormatBest>,
}

impl FormatChoice {
    /// The selected format.
    pub fn kind(&self) -> FormatKind {
        self.chosen.kind
    }

    /// True when the winner's certified upper bound sits strictly below
    /// every other format's — the selection is proven, not a tie-break.
    pub fn strictly_dominates(&self) -> bool {
        self.candidates
            .iter()
            .filter(|c| c.kind != self.chosen.kind)
            .all(|c| self.chosen.time_us.hi < c.time_us.hi)
    }

    /// One verdict line per format: its best certified triple, marking the
    /// winner.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in &self.candidates {
            let marker = if c.kind == self.chosen.kind {
                "->"
            } else {
                "  "
            };
            let _ = writeln!(
                out,
                "{marker} {:<6} B{:<5} T{:<3} certified time [{:.3}, {:.3}] us",
                c.kind.label(),
                c.block_size,
                c.threadlen,
                c.time_us.lo,
                c.time_us.hi
            );
        }
        out
    }
}

/// Cross-format certified tuning: for every serving format, certifies each
/// structurally-surviving `(BLOCK_SIZE, threadlen)` grid point and keeps
/// the point with the minimal certified *upper* bound; the format whose
/// best upper bound is smallest wins. Zero launches — the choice is a
/// certificate, not a measurement: the winner's true cost is ≤ its `hi`,
/// which undercuts every bound the competitor can prove. Ties keep the
/// earlier format in [`FormatKind::ALL`] order (F-COO, the paper's
/// baseline), so uniform tensors — where bucket metadata buys nothing —
/// never churn formats.
pub fn tune_select(
    config: &DeviceConfig,
    tensor: &SparseTensorCoo,
    op: TensorOp,
    rank: usize,
    block_sizes: Option<&[usize]>,
    threadlens: Option<&[usize]>,
) -> FormatChoice {
    let grid_b = block_sizes.unwrap_or(&fcoo::BLOCK_SIZES);
    let grid_t = threadlens.unwrap_or(&fcoo::THREADLENS);
    let keep = tune_filter(config, grid_b);
    let mut candidates: Vec<FormatBest> = Vec::with_capacity(FormatKind::ALL.len());
    for kind in FormatKind::ALL {
        let mut best: Option<FormatBest> = None;
        for &threadlen in grid_t {
            let format = AnyFormat::build(kind, tensor, op, threadlen);
            for &block_size in grid_b {
                if !keep(format.base(), block_size) {
                    continue;
                }
                let cfg = fcoo::LaunchConfig::with_block_size(block_size);
                let time_us = cost::certify_format(config, &format, rank, &cfg).stats_time_us();
                if best.as_ref().is_none_or(|b| time_us.hi < b.time_us.hi) {
                    best = Some(FormatBest {
                        kind,
                        block_size,
                        threadlen,
                        time_us,
                    });
                }
            }
        }
        candidates.push(best.expect("the structural filter keeps at least one configuration"));
    }
    let chosen = candidates
        .iter()
        .cloned()
        .reduce(|a, b| if b.time_us.hi < a.time_us.hi { b } else { a })
        .expect("at least one format candidate");
    FormatChoice { chosen, candidates }
}

/// Load-time gate for persisted serving plans: re-checks the *correctness*
/// properties a decoded plan can violate — launch shape against the device
/// and segment-flag consistency of the decoded F-COO — and reports
/// refutations as [`Pass::Symbolic`] findings. A plan whose report carries
/// errors must be rebuilt, not replayed.
pub fn plan_report(config: &DeviceConfig, fcoo: &Fcoo, block_size: usize) -> Report {
    let mut report = Report::default();
    let geometry = LaunchGeometry::new(
        block_size,
        fcoo.threadlen,
        fcoo.nnz(),
        1,
        (block_size / 32) * 8,
    );
    if let Some(violation) = launch_shape_violation(&geometry, config) {
        report.findings.push(Finding {
            pass: Pass::Symbolic,
            severity: Severity::Error,
            message: format!("launch-shape refuted: {violation}"),
            launch: None,
            block: None,
        });
    }
    let flags = sanitizer::check_fcoo(fcoo);
    if !flags.is_clean() {
        for finding in flags.findings {
            report.findings.push(Finding {
                pass: Pass::Symbolic,
                severity: finding.severity,
                message: format!("segment-flags refuted: {}", finding.message),
                launch: None,
                block: None,
            });
        }
    }
    report
}

/// True when [`plan_report`] finds no errors — the plan may execute.
pub fn plan_safe(config: &DeviceConfig, fcoo: &Fcoo, block_size: usize) -> bool {
    plan_report(config, fcoo, block_size).error_count() == 0
}

/// [`plan_report`] for a format-erased plan: the decoded payload is linted
/// with its format's own invariants — BF-COO additionally re-derives the
/// bucket metadata and rejects any deviation, since an inexact bucket would
/// unsound the certificate the plan persists.
pub fn plan_report_format(config: &DeviceConfig, format: &AnyFormat, block_size: usize) -> Report {
    let fcoo = format.base();
    let mut report = Report::default();
    let geometry = LaunchGeometry::new(
        block_size,
        fcoo.threadlen,
        fcoo.nnz(),
        1,
        (block_size / 32) * 8,
    );
    if let Some(violation) = launch_shape_violation(&geometry, config) {
        report.findings.push(Finding {
            pass: Pass::Symbolic,
            severity: Severity::Error,
            message: format!("launch-shape refuted: {violation}"),
            launch: None,
            block: None,
        });
    }
    let flags = match format {
        AnyFormat::Fcoo(fcoo) => sanitizer::check_fcoo(fcoo),
        AnyFormat::BfCoo(bfcoo) => sanitizer::check_bfcoo(bfcoo),
    };
    if !flags.is_clean() {
        for finding in flags.findings {
            report.findings.push(Finding {
                pass: Pass::Symbolic,
                severity: finding.severity,
                message: format!("format-invariants refuted: {}", finding.message),
                launch: None,
                block: None,
            });
        }
    }
    report
}

/// True when [`plan_report_format`] finds no errors — the plan may execute.
pub fn plan_safe_format(config: &DeviceConfig, format: &AnyFormat, block_size: usize) -> bool {
    plan_report_format(config, format, block_size).error_count() == 0
}

/// Cross-checks one kernel's verdict matrix against the production
/// accept/reject predicates: every refuted config must be pruned by
/// [`tune_filter`] and, when a correctness property is refuted, refused by
/// the plan gate. Returns human-readable violations (empty = consistent) —
/// the CI `analyze` job fails on any entry.
pub fn gate_violations(
    config: &DeviceConfig,
    tensor: &SparseTensorCoo,
    analysis: &GridAnalysis,
) -> Vec<String> {
    let mut violations = Vec::new();
    if analysis.kernel == KernelKind::TwoStep {
        // Neither the tuner nor the plan cache ever accepts the two-step
        // baseline; its refutations are informational.
        return violations;
    }
    let keep = tune_filter(config, &analysis.block_sizes);
    for &threadlen in &analysis.threadlens {
        let op = analysis.kernel.op(analysis.mode, tensor.order());
        let fcoo = Fcoo::from_coo(tensor, op, threadlen);
        for refuted in analysis
            .refuted_configs()
            .filter(|c| c.threadlen == threadlen)
        {
            if keep(&fcoo, refuted.block_size) {
                violations.push(format!(
                    "{} ({}, T={}): refuted but the tuner would still trial it",
                    analysis.kernel.label(),
                    refuted.block_size,
                    threadlen
                ));
            }
            if refuted.correctness_refuted() && plan_safe(config, &fcoo, refuted.block_size) {
                violations.push(format!(
                    "{} ({}, T={}): correctness-refuted but the plan cache would load it",
                    analysis.kernel.label(),
                    refuted.block_size,
                    threadlen
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_core::datasets::{self, DatasetKind};

    fn sample() -> SparseTensorCoo {
        datasets::generate(DatasetKind::Nell2, 4000, 7).0
    }

    #[test]
    fn every_kernel_gets_a_full_verdict_matrix() {
        let config = DeviceConfig::titan_x();
        let analyses = analyze_all(
            &config,
            &sample(),
            0,
            8,
            &fcoo::BLOCK_SIZES,
            &fcoo::THREADLENS,
        );
        assert_eq!(analyses.len(), 4);
        for analysis in &analyses {
            assert_eq!(analysis.configs.len(), 36);
            for c in &analysis.configs {
                assert_eq!(c.properties.len(), 6);
            }
        }
    }

    #[test]
    fn unified_kernels_prove_structure_and_certify_gathers() {
        let config = DeviceConfig::titan_x();
        let analysis = analyze_tensor(
            &config,
            &sample(),
            KernelKind::SpMttkrp,
            0,
            8,
            &fcoo::BLOCK_SIZES,
            &fcoo::THREADLENS,
        )
        .expect("applicable");
        for c in &analysis.configs {
            let by = |prop: Property| {
                c.properties
                    .iter()
                    .find(|p| p.property == prop)
                    .expect("property decided")
                    .verdict
            };
            assert_eq!(by(Property::LaunchShape), Verdict::Proved);
            assert_eq!(by(Property::BarrierConvergence), Verdict::Proved);
            assert_eq!(by(Property::SegmentFlags), Verdict::Proved);
            assert_eq!(by(Property::AtomicConfinement), Verdict::Proved);
            // Previously Unknown: the cost interpreter now certifies the
            // factor-gather traffic envelope from the header alone.
            assert_eq!(by(Property::Coalescing), Verdict::Proved);
            let gather = c
                .properties
                .iter()
                .find(|p| p.property == Property::Coalescing)
                .expect("coalescing decided");
            assert!(
                gather.detail.contains("certified within"),
                "{}",
                gather.detail
            );
        }
        // The grid contains dominated points on this tensor, and each
        // refutation carries its concrete dead-warp witness.
        let refuted: Vec<_> = analysis.refuted_configs().collect();
        assert!(!refuted.is_empty());
        for c in &refuted {
            let cex = c
                .refuted()
                .next()
                .and_then(|p| p.counterexample.as_ref())
                .expect("counterexample");
            assert!(cex.detail.contains("statically dead"));
        }
    }

    #[test]
    fn two_step_gather_is_refuted_with_lane_addresses() {
        let config = DeviceConfig::titan_x();
        let analysis = analyze_tensor(&config, &sample(), KernelKind::TwoStep, 0, 8, &[128], &[8])
            .expect("3-order tensor");
        let c = &analysis.configs[0];
        let gather = c
            .properties
            .iter()
            .find(|p| p.property == Property::Coalescing)
            .expect("coalescing decided");
        assert_eq!(gather.verdict, Verdict::Refuted);
        let cex = gather.counterexample.as_ref().expect("counterexample");
        assert_eq!(cex.lane_offsets.len(), 32);
        // Per-lane stride: threadlen · rank · 4 = 8 · 8 · 4 bytes.
        assert_eq!(cex.lane_offsets[1] - cex.lane_offsets[0], 256);
    }

    #[test]
    fn tune_filter_prunes_exactly_the_dominated_points() {
        let config = DeviceConfig::titan_x();
        let tensor = sample();
        let keep = tune_filter(&config, &fcoo::BLOCK_SIZES);
        // threadlen 32 → 125 partitions: 128 covers them, so 256/512/1024
        // are pruned and 32/64/128 survive.
        let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpMttkrp { mode: 0 }, 32);
        let kept: Vec<usize> = fcoo::BLOCK_SIZES
            .iter()
            .copied()
            .filter(|&b| keep(&fcoo, b))
            .collect();
        assert_eq!(kept, vec![32, 64, 128]);
    }

    #[test]
    fn plan_gate_refuses_corrupt_block_sizes_and_flags() {
        let config = DeviceConfig::titan_x();
        let fcoo = Fcoo::from_coo(&sample(), TensorOp::SpTtm { mode: 1 }, 16);
        assert!(plan_safe(&config, &fcoo, 128));
        assert!(!plan_safe(&config, &fcoo, 2048), "over the thread limit");
        assert!(!plan_safe(&config, &fcoo, 48), "not a warp multiple");
        let report = plan_report(&config, &fcoo, 0);
        assert!(report.findings[0].message.contains("launch-shape refuted"));
    }

    #[test]
    fn gate_holds_on_seed_tensors() {
        let config = DeviceConfig::titan_x();
        let tensor = sample();
        for analysis in analyze_all(
            &config,
            &tensor,
            0,
            8,
            &fcoo::BLOCK_SIZES,
            &fcoo::THREADLENS,
        ) {
            assert_eq!(
                gate_violations(&config, &tensor, &analysis),
                Vec::<String>::new()
            );
        }
    }

    #[test]
    fn certified_tuning_preserves_the_exhaustive_winner() {
        let device = GpuDevice::titan_x();
        let tensor = sample();
        let op = TensorOp::SpMttkrp { mode: 0 };
        let exhaustive = fcoo::tune(&device, &tensor, op, 8, None, None);
        let certified = tune_certified(&device, &tensor, op, 8, None, None);
        assert_eq!(certified.best_pair(), exhaustive.best_pair());
        assert_eq!(certified.grid_points, 36);
        assert_eq!(
            certified.launches + certified.launches_avoided(),
            certified.grid_points
        );
        // Structural pruning alone removes dominated points on this tensor,
        // so the certified sweep must launch strictly less than the grid.
        assert!(certified.launches < certified.grid_points);
        // Every pair is accounted for exactly once.
        let mut all: Vec<(usize, usize)> = certified
            .envelopes
            .iter()
            .filter(|p| !certified.eliminated.contains(&(p.block_size, p.threadlen)))
            .map(|p| (p.block_size, p.threadlen))
            .chain(certified.pruned.iter().copied())
            .chain(certified.eliminated.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), certified.grid_points);
    }

    #[test]
    fn single_survivor_grid_returns_a_zero_launch_certified_winner() {
        let device = GpuDevice::titan_x();
        let tensor = sample();
        let op = TensorOp::SpMttkrp { mode: 0 };
        // One grid point trivially dominates itself: the certifier must
        // resolve it without simulating anything.
        let certified = tune_certified(&device, &tensor, op, 8, Some(&[128]), Some(&[8]));
        let winner = certified.winner.as_ref().expect("zero-launch winner");
        assert_eq!((winner.block_size, winner.threadlen), (128, 8));
        assert_eq!(certified.launches, 0);
        assert!(certified.tuned.is_none());
        assert_eq!(certified.best_pair(), (128, 8));
        // The certificate agrees with what a real launch would cost.
        let launched = fcoo::tune(&device, &tensor, op, 8, Some(&[128]), Some(&[8]));
        assert!(
            winner.time_us.contains(launched.best.time_us),
            "certified [{}, {}] vs launched {}",
            winner.time_us.lo,
            winner.time_us.hi,
            launched.best.time_us
        );
    }

    /// Long-fiber power-law tensor (skewed) and a uniform scatter of the
    /// same nnz/shape — the two regimes format selection must separate.
    fn skew_and_uniform() -> (SparseTensorCoo, SparseTensorCoo) {
        let (slices, jdim, kdim) = (400u32, 300u32, 2000u32);
        let mut entries = Vec::new();
        for s in 0..slices {
            let len = ((30_000.0 / f64::powf(s as f64 + 1.0, 1.3)) as u32).clamp(1, kdim);
            for t in 0..len {
                entries.push((vec![s, (s * 7) % jdim, (t * 13) % kdim], 1.0f32));
            }
        }
        let shape = vec![slices as usize, jdim as usize, kdim as usize];
        let skew = SparseTensorCoo::from_entries(shape.clone(), &entries);
        // Saturating uniform counterpart: 128 non-zeros per slice (runs never
        // straddle slices) with j and k injective within each slice, so every
        // aligned 32-run holds 32 distinct rows in both product modes — the
        // buckets certify nothing beyond the strided worst case and the demux
        // shuffles are pure overhead.
        let mut uentries = Vec::new();
        for s in 0..slices {
            for t in 0..128u32 {
                let j = (s * 17 + t * 7) % jdim;
                let k = (s + t * 13) % kdim;
                uentries.push((vec![s, j, k], 1.0f32));
            }
        }
        (skew, SparseTensorCoo::from_entries(shape, &uentries))
    }

    #[test]
    fn selection_certifies_bfcoo_on_skew_and_keeps_fcoo_on_uniform() {
        let config = DeviceConfig::titan_x();
        let op = TensorOp::SpMttkrp { mode: 0 };
        let (skew, uniform) = skew_and_uniform();
        let grids = (Some(&[64usize, 128][..]), Some(&[16usize, 32][..]));
        let choice = tune_select(&config, &skew, op, 8, grids.0, grids.1);
        assert_eq!(choice.kind(), FormatKind::BfCoo);
        assert!(
            choice.strictly_dominates(),
            "skew selection must be proven, not tied:\n{}",
            choice.render()
        );
        let fcoo_best = choice
            .candidates
            .iter()
            .find(|c| c.kind == FormatKind::Fcoo)
            .expect("fcoo candidate");
        assert!(choice.chosen.time_us.hi < fcoo_best.time_us.hi);

        let choice = tune_select(&config, &uniform, op, 8, grids.0, grids.1);
        assert_eq!(
            choice.kind(),
            FormatKind::Fcoo,
            "uniform scatter buys nothing from buckets:\n{}",
            choice.render()
        );
        assert_eq!(choice.candidates.len(), FormatKind::ALL.len());
        assert!(choice.render().contains("->"));
    }

    #[test]
    fn certified_format_tuning_preserves_the_exhaustive_bfcoo_winner() {
        let device = GpuDevice::titan_x();
        let tensor = sample();
        let op = TensorOp::SpMttkrp { mode: 0 };
        let grids = (Some(&[64usize, 128][..]), Some(&[8usize, 16][..]));
        let exhaustive = fcoo::tune_format_with_filter(
            &device,
            &tensor,
            FormatKind::BfCoo,
            op,
            8,
            grids.0,
            grids.1,
            |_, _| true,
        );
        let certified =
            tune_certified_format(&device, &tensor, FormatKind::BfCoo, op, 8, grids.0, grids.1);
        assert_eq!(certified.best_pair(), exhaustive.best_pair());
        assert!(certified.launches <= certified.grid_points);
    }

    #[test]
    fn format_plan_gate_rejects_corrupt_buckets() {
        let config = DeviceConfig::titan_x();
        let op = TensorOp::SpMttkrp { mode: 0 };
        let mut bf = fcoo::BfCoo::from_coo(&sample(), op, 8);
        let format = AnyFormat::BfCoo(std::sync::Arc::new(bf.clone()));
        assert!(plan_safe_format(&config, &format, 128));
        assert!(!plan_safe_format(&config, &format, 48), "bad block size");
        bf.buckets[0][0] += 1;
        let corrupt = AnyFormat::BfCoo(std::sync::Arc::new(bf));
        assert!(!plan_safe_format(&config, &corrupt, 128));
        let report = plan_report_format(&config, &corrupt, 128);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.message.contains("format-invariants refuted")),
            "{report}"
        );
    }

    #[test]
    fn pruned_tuning_reports_residual_unknowns() {
        let device = GpuDevice::titan_x();
        let tensor = sample();
        let result = tune_pruned(
            &device,
            &tensor,
            TensorOp::SpMttkrp { mode: 0 },
            8,
            None,
            None,
        );
        // Every unknown pair was actually launched, never pruned.
        let launched: Vec<(usize, usize)> = result
            .surface
            .iter()
            .map(|p| (p.block_size, p.threadlen))
            .collect();
        for pair in &result.unknown {
            assert!(launched.contains(pair), "{pair:?} not launched");
            assert!(!result.pruned.contains(pair), "{pair:?} also pruned");
        }
    }

    #[test]
    fn render_includes_matrix_and_refutations() {
        let config = DeviceConfig::titan_x();
        let analysis = analyze_tensor(
            &config,
            &sample(),
            KernelKind::SpTtm,
            0,
            8,
            &fcoo::BLOCK_SIZES,
            &fcoo::THREADLENS,
        )
        .expect("applicable");
        let rendered = analysis.render();
        assert!(rendered.contains("SpTTM"));
        assert!(rendered.contains("T\\B"));
        assert!(rendered.contains("refuted ("));
    }
}
