//! Symbolic cost interpreter: certified `[lo, hi]` envelopes for every raw
//! counter the golden suite pins, derived from F-COO *headers alone*.
//!
//! The interpreter walks the exact structure of the unified kernel
//! (`fcoo::kernels::run_unified`) — one symbolic pass per `(block_x,
//! block_y)` cell — charging every narrated operation with the same integer
//! arithmetic the simulator uses. Two facts make most counters **exact**
//! rather than merely bounded:
//!
//! 1. every device buffer base is 256-byte aligned
//!    (`gpu_sim::memory`), a multiple of the 32-byte transaction sector, so
//!    within-buffer sector counts depend only on element offsets — which the
//!    header determines — and distinct buffers never share a sector;
//! 2. the segment structure (where every finalize, coordinate read, output
//!    write and frontier atomic lands) is fully encoded by `bf`, `sf`,
//!    `partition_first_segment` and `segment_coords` — no tensor *values*
//!    are consulted.
//!
//! The only value-dependent quantity is the factor-matrix gather: which rows
//! lane `l` reads depends on `product_indices`, which the certifier is not
//! allowed to read. Those reads go through the read-only cache, so the
//! envelope brackets them with the extremal-warp abstract domain: per call a
//! warp probes between `F` lines (all live lanes hit the same row per
//! factor; distinct factor buffers can never share a line) and `live · F`
//! lines (all distinct), each probe costing between one hit cycle and one
//! miss fill. Everything downstream of those intervals — per-block cycle
//! maxima, the wave fold, `time_us` — is interval arithmetic over monotone
//! maps, evaluated by mirroring `KernelStats::from_blocks_with_concurrency`
//! bit for bit at both endpoints, so an all-exact launch (e.g. the atomic
//! ablation with `use_rocache = false`… or any launch whose interval
//! collapses) reproduces the measured `time_us` to the last bit.
//!
//! Soundness contract: for every concrete tensor whose F-COO headers match,
//! the measured [`KernelCounters`] of a traced launch satisfy
//! `lo ≤ measured ≤ hi` field-wise ([`CounterEnvelope::violations`] checks
//! it; the golden suite and the property tests enforce it).

use fcoo::chunk::ChunkPlan;
use fcoo::{
    AnyFormat, BfCoo, Fcoo, FormatKind, LaunchConfig, TensorOp, BUCKET_RUN, BUCKET_SHUFFLE_OPS,
};
use gpu_sim::{scan, BlockStats, DeviceConfig, KernelCounters, KernelStats};
use tensor_core::SparseTensorCoo;

/// A closed integer interval `[lo, hi]` certifying a counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Certified lower bound (inclusive).
    pub lo: u64,
    /// Certified upper bound (inclusive).
    pub hi: u64,
}

impl Interval {
    /// The exact interval `[v, v]`.
    pub const fn exact(v: u64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The interval `[lo, hi]`.
    ///
    /// # Panics
    /// If `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "interval bounds inverted: [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The empty-cost interval `[0, 0]`.
    pub const ZERO: Interval = Interval::exact(0);

    /// Whether `v` lies inside the envelope.
    pub fn contains(self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether the bound is exact (`lo == hi`).
    pub fn is_exact(self) -> bool {
        self.lo == self.hi
    }

    fn add(&mut self, other: Interval) {
        self.lo += other.lo;
        self.hi += other.hi;
    }

    fn add_exact(&mut self, v: u64) {
        self.lo += v;
        self.hi += v;
    }

    fn max_with(&mut self, other: Interval) {
        self.lo = self.lo.max(other.lo);
        self.hi = self.hi.max(other.hi);
    }

    fn scale(self, k: u64) -> Interval {
        Interval {
            lo: self.lo * k,
            hi: self.hi * k,
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_exact() {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// Certified bounds on a simulated duration in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBounds {
    /// Certified lower bound.
    pub lo: f64,
    /// Certified upper bound.
    pub hi: f64,
}

impl TimeBounds {
    /// Whether `t` lies inside the envelope.
    pub fn contains(self, t: f64) -> bool {
        self.lo <= t && t <= self.hi
    }
}

/// Certified envelopes for every counter of a [`KernelCounters`] report.
///
/// Fields typed `u64` are exact by construction (pure launch geometry or
/// segment-structure arithmetic); fields typed [`Interval`] may widen where
/// the factor-gather targets are value-dependent. Multi-launch pipelines
/// (two-step, chunked) sum envelopes with [`CounterEnvelope::accumulate`],
/// mirroring [`KernelCounters::merge`].
#[derive(Debug, Clone)]
pub struct CounterEnvelope {
    /// Bounds on the traced `time_us` (summed over merged launches).
    pub time_us: TimeBounds,
    /// Launches merged into the envelope.
    pub launches: u64,
    /// Blocks executed (exact: grid geometry).
    pub blocks: u64,
    /// Scheduling waves (exact: occupancy arithmetic).
    pub waves: u64,
    /// Warp slots the launch configurations ask for (exact).
    pub launched_warps: u64,
    /// Warps that begin execution (exact: partition coverage).
    pub active_warps: u64,
    /// Global-memory transactions, post-coalescing.
    pub transactions: Interval,
    /// Perfectly-coalesced transaction baseline.
    pub ideal_transactions: Interval,
    /// Worst single narrated access.
    pub max_access_transactions: Interval,
    /// DRAM bytes moved.
    pub dram_bytes: Interval,
    /// Read-only cache hits.
    pub cache_hits: Interval,
    /// Read-only cache misses.
    pub cache_misses: Interval,
    /// Atomic lanes issued (exact: segment frontier structure).
    pub atomics: u64,
    /// Narrated atomic batches (exact).
    pub atomic_calls: u64,
    /// Summed worst per-batch multiplicity (exact).
    pub atomic_multiplicity_sum: u64,
    /// Exact extra `KernelStats::time_us` of untraced follow-up work (the
    /// unfused carry-resolution kernel). Zero for every traced counter —
    /// add it when bounding `KernelStats::time_us` instead
    /// ([`CounterEnvelope::stats_time_us`]).
    pub untraced_time_us: f64,
}

impl CounterEnvelope {
    fn empty() -> Self {
        CounterEnvelope {
            time_us: TimeBounds { lo: 0.0, hi: 0.0 },
            launches: 0,
            blocks: 0,
            waves: 0,
            launched_warps: 0,
            active_warps: 0,
            transactions: Interval::ZERO,
            ideal_transactions: Interval::ZERO,
            max_access_transactions: Interval::ZERO,
            dram_bytes: Interval::ZERO,
            cache_hits: Interval::ZERO,
            cache_misses: Interval::ZERO,
            atomics: 0,
            atomic_calls: 0,
            atomic_multiplicity_sum: 0,
            untraced_time_us: 0.0,
        }
    }

    /// Sums `other` into `self`, mirroring [`KernelCounters::merge`]
    /// (durations and counters add; the worst single access is the max).
    pub fn accumulate(&mut self, other: &CounterEnvelope) {
        self.time_us.lo += other.time_us.lo;
        self.time_us.hi += other.time_us.hi;
        self.launches += other.launches;
        self.blocks += other.blocks;
        self.waves += other.waves;
        self.launched_warps += other.launched_warps;
        self.active_warps += other.active_warps;
        self.transactions.add(other.transactions);
        self.ideal_transactions.add(other.ideal_transactions);
        self.max_access_transactions
            .max_with(other.max_access_transactions);
        self.dram_bytes.add(other.dram_bytes);
        self.cache_hits.add(other.cache_hits);
        self.cache_misses.add(other.cache_misses);
        self.atomics += other.atomics;
        self.atomic_calls += other.atomic_calls;
        self.atomic_multiplicity_sum += other.atomic_multiplicity_sum;
        self.untraced_time_us += other.untraced_time_us;
    }

    /// Bounds on the operation's `KernelStats::time_us` — the traced
    /// envelope plus the exact untraced follow-up time. This is the quantity
    /// the tuner minimizes, so certified dominance pruning compares these.
    pub fn stats_time_us(&self) -> TimeBounds {
        TimeBounds {
            lo: self.time_us.lo + self.untraced_time_us,
            hi: self.time_us.hi + self.untraced_time_us,
        }
    }

    /// Field-wise containment check of a measured counter report. Returns
    /// one human-readable line per violated bound (empty = certified). A
    /// non-empty result is a soundness bug in either the cost model or the
    /// kernels — the golden suite and `tensortool certify` fail on it.
    pub fn violations(&self, measured: &KernelCounters) -> Vec<String> {
        let mut out = Vec::new();
        let mut exact = |label: &str, want: u64, got: u64| {
            if want != got {
                out.push(format!("{label}: measured {got}, certified exactly {want}"));
            }
        };
        exact("launches", self.launches, measured.launches);
        exact("blocks", self.blocks, measured.blocks);
        exact("waves", self.waves, measured.waves);
        exact(
            "launched_warps",
            self.launched_warps,
            measured.launched_warps,
        );
        exact("active_warps", self.active_warps, measured.active_warps);
        exact("atomics", self.atomics, measured.atomics);
        exact("atomic_calls", self.atomic_calls, measured.atomic_calls);
        exact(
            "atomic_multiplicity_sum",
            self.atomic_multiplicity_sum,
            measured.atomic_multiplicity_sum,
        );
        let mut bounded = |label: &str, envelope: Interval, got: u64| {
            if !envelope.contains(got) {
                out.push(format!("{label}: measured {got} outside {envelope}"));
            }
        };
        bounded("transactions", self.transactions, measured.transactions);
        bounded(
            "ideal_transactions",
            self.ideal_transactions,
            measured.ideal_transactions,
        );
        bounded(
            "max_access_transactions",
            self.max_access_transactions,
            measured.max_access_transactions,
        );
        bounded("dram_bytes", self.dram_bytes, measured.dram_bytes);
        bounded("cache_hits", self.cache_hits, measured.cache_hits);
        bounded("cache_misses", self.cache_misses, measured.cache_misses);
        if !self.time_us.contains(measured.time_us) {
            out.push(format!(
                "time_us: measured {:.6} outside [{:.6}, {:.6}]",
                measured.time_us, self.time_us.lo, self.time_us.hi
            ));
        }
        out
    }

    /// True when a measured report lies inside every envelope.
    pub fn contains(&self, measured: &KernelCounters) -> bool {
        self.violations(measured).is_empty()
    }
}

/// The kernel-shape constants `run_unified` derives from the operation —
/// everything the interpreter needs beyond the format header.
struct KernelShape {
    /// Grid y-extent / output row stride (dense output columns).
    columns: usize,
    /// Factor matrices gathered per non-zero.
    n_factors: usize,
    /// Total bytes of the gathered factor matrices (L2 working-set test).
    factor_ws: usize,
    /// FLOP cycles charged per gather call.
    compute_per_element: u64,
    /// Whether finalization reads the segment-coordinate array
    /// (SpMTTKRP/SpTTMc look up output rows; SpTTM's rows are the segment
    /// ordinals themselves).
    has_coords: bool,
}

impl KernelShape {
    fn for_op(fcoo: &Fcoo, rank: usize) -> KernelShape {
        let pm = &fcoo.classification.product_modes;
        let factor_ws: usize = pm.iter().map(|&m| fcoo.shape[m] * rank * 4).sum();
        match fcoo.op {
            TensorOp::SpTtm { .. } => KernelShape {
                columns: rank,
                n_factors: 1,
                factor_ws,
                compute_per_element: 2,
                has_coords: false,
            },
            TensorOp::SpMttkrp { .. } => KernelShape {
                columns: rank,
                n_factors: pm.len(),
                factor_ws,
                compute_per_element: 1 + pm.len() as u64,
                has_coords: true,
            },
            TensorOp::SpTtmc { .. } => KernelShape {
                columns: rank.pow(pm.len() as u32),
                n_factors: pm.len(),
                factor_ws,
                compute_per_element: 1 + pm.len() as u64,
                has_coords: true,
            },
        }
    }
}

/// Sector count of a contiguous stream of `bytes` at byte offset `offset`
/// within a (256-byte aligned) buffer — exactly `BlockCtx::stream_range`.
fn stream_transactions(offset: usize, bytes: usize, config: &DeviceConfig) -> u64 {
    if bytes == 0 {
        return 0;
    }
    let shift = config.transaction_bytes.trailing_zeros();
    let first = (offset as u64) >> shift;
    let last = (offset + bytes - 1) as u64 >> shift;
    last - first + 1
}

/// Distinct-sector count of a batch of element indices into one f32 buffer
/// (offset `index * 4`) — exactly `coalesce::transactions` on the device
/// addresses, base cancelled by the 256-byte alignment.
fn batch_transactions(indices: &[usize], config: &DeviceConfig) -> u64 {
    let shift = config.transaction_bytes.trailing_zeros();
    let mut sectors: Vec<u64> = indices.iter().map(|&i| (i as u64 * 4) >> shift).collect();
    sectors.sort_unstable();
    sectors.dedup();
    sectors.len() as u64
}

/// The profiler's perfectly-coalesced baseline for a `lanes`-element 4-byte
/// batch — exactly `exec::ideal_lane_transactions`.
fn ideal_lane_transactions(lanes: usize, config: &DeviceConfig) -> u64 {
    ((lanes * 4) as u64).div_ceil(config.transaction_bytes.max(1) as u64)
}

/// Mirror of `BlockStats::compute_time_us` evaluated on explicit counters.
fn compute_time_us(max_warp_cycles: u64, total_warp_cycles: u64, device: &DeviceConfig) -> f64 {
    let throughput = total_warp_cycles as f64 / device.warp_schedulers as f64;
    let latency = max_warp_cycles as f64;
    latency.max(throughput) / device.cycles_per_us()
}

/// One block's interval-valued [`BlockStats`] image plus the trace-only
/// counters, produced by the symbolic interpreter.
#[derive(Debug, Clone)]
struct BlockEnvelope {
    max_warp_cycles: Interval,
    total_warp_cycles: Interval,
    transactions: Interval,
    ideal_transactions: Interval,
    max_access_transactions: Interval,
    dram_bytes: Interval,
    cache_hits: Interval,
    cache_misses: Interval,
    atomics: u64,
    atomic_calls: u64,
    atomic_multiplicity_sum: u64,
    warps: u64,
}

/// Per-`block_x` facts that do not depend on the column block: the warp
/// stream geometry, the gather-call live-lane counts and the exact segment
/// event sequences of the lane fold.
struct ColumnPlan {
    warps: Vec<WarpPlan>,
}

struct WarpPlan {
    /// Summed sector count of the five-plus metadata streams (BF-COO adds
    /// its per-product-mode bucket streams here).
    stream_transactions: u64,
    /// Largest single stream's sector count (for the worst-access bound).
    stream_max: u64,
    /// The warp's factor-gather schedule.
    gather: GatherPlan,
    /// Segment ordinals finalized by this warp, in program order
    /// (segmented-scan mode).
    finals: Vec<usize>,
    /// Output rows of the COO-style atomic events, in program order
    /// (atomic-ablation mode).
    atomic_rows: Vec<usize>,
}

/// Mirror of `fcoo::kernels::GatherLayout` at the envelope level: what the
/// certifier knows about each gather call's address batch.
enum GatherPlan {
    /// F-COO lane-strided batches: the live-lane count of each threadlen
    /// iteration. Targets are value-dependent, so per call the warp probes
    /// between `n_factors` and `live · n_factors` lines.
    Strided(Vec<usize>),
    /// BF-COO run-bucketed batches: per aligned 32-non-zero run, the run
    /// length and the **exact** distinct-row count of every product mode
    /// (the streamed bucket metadata). Each per-factor call probes between
    /// 1 and that run's distinct-row count — the tightening the format
    /// exists to license.
    Bucketed(Vec<(usize, Vec<u64>)>),
}

/// Certified counter envelope of one unified-kernel launch over `fcoo` at
/// factor rank `rank` under `cfg` — without simulating anything.
///
/// The envelope covers exactly what a traced
/// `spttm_into`/`spmttkrp_into`/`spttmc_norder_into` launch reports (the
/// per-factor rank is `rank` for every product mode, matching the tuner and
/// the golden suite). For the two-step baseline use [`certify_two_step`];
/// for chunked out-of-core pipelines use [`certify_chunked`].
///
/// # Panics
/// If the launch shape is invalid for `config` (same asserts as the
/// simulated launch: block size zero, not a warp multiple, or over the
/// device limits).
pub fn certify(
    config: &DeviceConfig,
    fcoo: &Fcoo,
    rank: usize,
    cfg: &LaunchConfig,
) -> CounterEnvelope {
    certify_impl(config, fcoo, None, rank, cfg)
}

/// [`certify`] for a BF-COO tensor: same interpreter, but the per-run
/// bucket metadata replaces the `live · n_factors` gather worst case with
/// each run's exact distinct-row count, and the bucket streams plus the
/// per-run demux shuffles are charged exactly. On skewed tensors (long
/// fibers → small buckets) the time upper bound tightens drastically; the
/// format-aware planner selects on exactly that bound.
pub fn certify_bfcoo(
    config: &DeviceConfig,
    bfcoo: &BfCoo,
    rank: usize,
    cfg: &LaunchConfig,
) -> CounterEnvelope {
    certify_impl(config, &bfcoo.base, Some(&bfcoo.buckets), rank, cfg)
}

/// Dispatches [`certify`] / [`certify_bfcoo`] on a format-erased tensor.
pub fn certify_format(
    config: &DeviceConfig,
    format: &AnyFormat,
    rank: usize,
    cfg: &LaunchConfig,
) -> CounterEnvelope {
    match format {
        AnyFormat::Fcoo(fcoo) => certify(config, fcoo, rank, cfg),
        AnyFormat::BfCoo(bf) => certify_bfcoo(config, bf, rank, cfg),
    }
}

fn certify_impl(
    config: &DeviceConfig,
    fcoo: &Fcoo,
    buckets: Option<&[Vec<u32>]>,
    rank: usize,
    cfg: &LaunchConfig,
) -> CounterEnvelope {
    let shape = KernelShape::for_op(fcoo, rank);
    let threadlen = fcoo.threadlen;
    let nnz = fcoo.nnz();
    let partitions = fcoo.partitions();
    let bt = cfg.block_size;
    assert!(bt > 0, "block must have threads");
    assert!(
        bt.is_multiple_of(config.warp_size),
        "block size must be a whole number of warps"
    );
    assert!(
        bt <= config.max_threads_per_block,
        "block size {bt} exceeds device limit"
    );
    let shared_bytes = (bt / 32) * 8;
    assert!(
        shared_bytes <= config.shared_mem_per_sm,
        "shared allocation exceeds per-SM capacity"
    );
    let grid_x = partitions.div_ceil(bt);
    let columns = shape.columns;
    let warp = 32usize;
    let warps_per_block = bt / config.warp_size;

    let row_of_seg = |seg: usize| -> usize {
        match fcoo.op {
            TensorOp::SpTtm { .. } => seg,
            _ => fcoo.segment_coords[0][seg] as usize,
        }
    };

    // Pass 1: column-independent per-block_x plans (streams, gather lives,
    // exact segment event sequences).
    let mut plans: Vec<ColumnPlan> = Vec::with_capacity(grid_x);
    for bx in 0..grid_x {
        let mut warps = Vec::new();
        for w in 0..warps_per_block {
            let wft = bx * bt + w * warp;
            let warp_nnz_start = wft * threadlen;
            if warp_nnz_start >= nnz {
                break;
            }
            let warp_nnz_end = ((wft + warp) * threadlen).min(nnz);
            let span = warp_nnz_end - warp_nnz_start;
            let mut stream_transactions_total = 0u64;
            let mut stream_max = 0u64;
            // values + one stream per product-index column (same offsets).
            let value_t = stream_transactions(warp_nnz_start * 4, span * 4, config);
            stream_transactions_total += value_t * (1 + shape.n_factors) as u64;
            stream_max = stream_max.max(value_t);
            let mut charge_stream = |offset: usize, bytes: usize| {
                let t = stream_transactions(offset, bytes, config);
                stream_transactions_total += t;
                stream_max = stream_max.max(t);
            };
            // bit flags with the one-byte head lookahead.
            let bf_first = warp_nnz_start / 8;
            let bf_last = warp_nnz_end.min(nnz - 1) / 8;
            charge_stream(bf_first, bf_last - bf_first + 1);
            // partition pointers and segment-start flags.
            let threads_here = warp.min(partitions - wft);
            charge_stream(wft * 4, threads_here * 4);
            let sf_first = wft / 8;
            let sf_last = (wft + threads_here - 1) / 8;
            charge_stream(sf_first, sf_last - sf_first + 1);

            let gather = match buckets {
                None => {
                    // F-COO: live lanes per threadlen iteration.
                    let mut gather_lives = Vec::new();
                    for i in 0..threadlen {
                        let live = (0..warp)
                            .take_while(|&lane| (wft + lane) * threadlen + i < nnz)
                            .count();
                        if live == 0 {
                            break;
                        }
                        gather_lives.push(live);
                    }
                    GatherPlan::Strided(gather_lives)
                }
                Some(buckets) => {
                    // BF-COO streams one distinct-row-count array per
                    // product mode alongside the flags; `warp_nnz_start` is
                    // a multiple of 32, so the warp's runs coincide with
                    // the global aligned runs the buckets index.
                    let run_first = warp_nnz_start / BUCKET_RUN;
                    let runs = span.div_ceil(BUCKET_RUN);
                    for _ in buckets {
                        charge_stream(run_first * 4, runs * 4);
                    }
                    let mut run_plans = Vec::with_capacity(runs);
                    for r in 0..runs {
                        let run_start = warp_nnz_start + r * BUCKET_RUN;
                        let run_end = (run_start + BUCKET_RUN).min(warp_nnz_end);
                        let ds = buckets
                            .iter()
                            .map(|column| column[run_first + r] as u64)
                            .collect();
                        run_plans.push((run_end - run_start, ds));
                    }
                    GatherPlan::Bucketed(run_plans)
                }
            };

            // Exact lane fold over the segment flags.
            let mut finals = Vec::new();
            let mut atomic_rows = Vec::new();
            for lane in 0..warp {
                let thread = wft + lane;
                let pstart = thread * threadlen;
                if pstart >= nnz {
                    break;
                }
                let pend = ((thread + 1) * threadlen).min(nnz);
                let mut heads = fcoo.partition_first_segment[thread] as usize;
                let mut has_open = false;
                for nz in pstart..pend {
                    if fcoo.bf.get(nz) {
                        if has_open {
                            if cfg.use_segscan {
                                finals.push(heads - 1);
                            } else {
                                atomic_rows.push(row_of_seg(heads - 1));
                            }
                        }
                        heads += 1;
                    }
                    has_open = true;
                    if !cfg.use_segscan {
                        atomic_rows.push(row_of_seg(heads - 1));
                    }
                }
                if has_open && cfg.use_segscan {
                    finals.push(heads - 1);
                }
            }
            warps.push(WarpPlan {
                stream_transactions: stream_transactions_total,
                stream_max,
                gather,
                finals,
                atomic_rows,
            });
        }
        plans.push(ColumnPlan { warps });
    }

    // Gather-call cost constants.
    let miss_cycles = if shape.factor_ws <= config.l2_bytes {
        config.l2_latency_cycles
    } else {
        config.rocache_miss_cycles
    };
    let rocache_sharers = if cfg.use_rocache {
        columns.min(8) as u64
    } else {
        1
    };
    let line = config.readonly_line_bytes as u64;
    let dram_per_miss = (line / rocache_sharers.max(1)).max(4);
    let write_sharers = columns.min(8) as u64;
    let n_factors = shape.n_factors as u64;

    // Pass 2: per-(block_x, block_y) envelopes, emitted in x-major launch
    // order (bIdx varies fastest) for the wave fold.
    let mut blocks: Vec<BlockEnvelope> = Vec::with_capacity(grid_x * columns);
    for col in 0..columns {
        for plan in &plans {
            let l2_hot = col > 0;
            let mut env = BlockEnvelope {
                max_warp_cycles: Interval::ZERO,
                total_warp_cycles: Interval::ZERO,
                transactions: Interval::ZERO,
                ideal_transactions: Interval::ZERO,
                max_access_transactions: Interval::ZERO,
                dram_bytes: Interval::ZERO,
                cache_hits: Interval::ZERO,
                cache_misses: Interval::ZERO,
                atomics: 0,
                atomic_calls: 0,
                atomic_multiplicity_sum: 0,
                warps: plan.warps.len() as u64,
            };
            // Per-block read-only cache probe totals (the cache is private
            // to the block and cold at entry).
            let mut probes = Interval::ZERO;
            let mut any_gather = false;
            for (w, wp) in plan.warps.iter().enumerate() {
                let mut cycles = Interval::ZERO;
                // Metadata streams: transactions and issue cycles always;
                // DRAM only for the bIdy = 0 sibling (the rest hit L2).
                env.transactions.add_exact(wp.stream_transactions);
                env.ideal_transactions.add_exact(wp.stream_transactions);
                if !l2_hot {
                    env.dram_bytes
                        .add_exact(wp.stream_transactions * config.transaction_bytes as u64);
                }
                cycles.add_exact(wp.stream_transactions * config.mem_issue_cycles);
                env.max_access_transactions
                    .max_with(Interval::exact(wp.stream_max));

                // Factor gathers: the sole interval source.
                match &wp.gather {
                    GatherPlan::Strided(lives) => {
                        for &live in lives {
                            any_gather = true;
                            let per_call = Interval::new(n_factors, (live as u64) * n_factors);
                            probes.add(per_call);
                            if cfg.use_rocache {
                                // Per probe: 1 hit cycle … one miss fill.
                                cycles.add(Interval::new(per_call.lo, per_call.hi * miss_cycles));
                            } else {
                                // Plain coalesced loads of a reused working set.
                                cycles.add(per_call.scale(config.mem_issue_cycles));
                                if shape.factor_ws <= config.l2_bytes {
                                    cycles.add_exact(config.l2_latency_cycles);
                                } else {
                                    env.dram_bytes
                                        .add(per_call.scale(config.transaction_bytes as u64));
                                }
                                env.transactions.add(per_call);
                                let ideal = ideal_lane_transactions(live * shape.n_factors, config);
                                env.ideal_transactions.add(Interval::new(
                                    ideal.min(per_call.lo),
                                    ideal.min(per_call.hi),
                                ));
                            }
                            env.max_access_transactions.max_with(per_call);
                            cycles.add_exact(shape.compute_per_element);
                        }
                    }
                    GatherPlan::Bucketed(runs) => {
                        // One batch per factor per run: the bucket metadata
                        // bounds each batch's distinct lines by the run's
                        // exact distinct-row count, so `live · n_factors`
                        // never appears — this is where BF-COO's certified
                        // upper bound beats F-COO's.
                        for (run_len, ds) in runs {
                            any_gather = true;
                            for &d in ds {
                                let per_call = Interval::new(1, d);
                                if cfg.use_rocache {
                                    probes.add(per_call);
                                    cycles
                                        .add(Interval::new(per_call.lo, per_call.hi * miss_cycles));
                                } else {
                                    cycles.add(per_call.scale(config.mem_issue_cycles));
                                    if shape.factor_ws <= config.l2_bytes {
                                        cycles.add_exact(config.l2_latency_cycles);
                                    } else {
                                        env.dram_bytes
                                            .add(per_call.scale(config.transaction_bytes as u64));
                                    }
                                    env.transactions.add(per_call);
                                    let ideal = ideal_lane_transactions(*run_len, config);
                                    env.ideal_transactions
                                        .add(Interval::new(1, ideal.min(per_call.hi)));
                                }
                                env.max_access_transactions.max_with(per_call);
                            }
                            // Demux shuffles and the product FLOPs, exactly
                            // as narrated: once per run.
                            cycles.add_exact(BUCKET_SHUFFLE_OPS * config.shuffle_cycles);
                            cycles.add_exact(shape.compute_per_element);
                        }
                    }
                }

                // Segmented-scan stages and batched output traffic.
                if cfg.use_segscan {
                    cycles.add_exact(scan::warp_segscan_cycles(config));
                    if shape.has_coords {
                        for chunk in wp.finals.chunks(warp) {
                            let t = batch_transactions(chunk, config);
                            env.transactions.add_exact(t);
                            env.dram_bytes
                                .add_exact(t * config.transaction_bytes as u64);
                            cycles.add_exact(t * config.mem_issue_cycles);
                            let ideal = ideal_lane_transactions(chunk.len(), config).min(t);
                            env.ideal_transactions.add_exact(ideal);
                            env.max_access_transactions.max_with(Interval::exact(t));
                        }
                    }
                    let write_indices: Vec<usize> = wp
                        .finals
                        .iter()
                        .map(|&seg| row_of_seg(seg) * shape.columns + col)
                        .collect();
                    for chunk in write_indices.chunks(warp) {
                        let t = batch_transactions(chunk, config);
                        env.transactions.add_exact(t);
                        env.dram_bytes.add_exact(
                            (t * config.transaction_bytes as u64 / write_sharers.max(1)).max(t * 4),
                        );
                        cycles.add_exact(t * config.mem_issue_cycles);
                        let ideal = ideal_lane_transactions(chunk.len(), config).min(t);
                        env.ideal_transactions.add_exact(ideal);
                        env.max_access_transactions.max_with(Interval::exact(t));
                    }
                }

                // COO-style frontier atomics (exact: indices are known).
                let atomic_indices: Vec<usize> = wp
                    .atomic_rows
                    .iter()
                    .map(|&row| row * shape.columns + col)
                    .collect();
                for chunk in atomic_indices.chunks(warp) {
                    env.atomics += chunk.len() as u64;
                    let mut max_multiplicity = 0u64;
                    let mut seen: Vec<(usize, u64)> = Vec::with_capacity(chunk.len());
                    for &index in chunk {
                        match seen.iter_mut().find(|(i, _)| *i == index) {
                            Some((_, count)) => *count += 1,
                            None => seen.push((index, 1)),
                        }
                    }
                    for &(_, count) in &seen {
                        max_multiplicity = max_multiplicity.max(count);
                    }
                    let conflict = config.atomic_cycles * max_multiplicity;
                    cycles.add_exact(conflict);
                    let t = batch_transactions(chunk, config);
                    env.transactions.add_exact(t);
                    env.dram_bytes
                        .add_exact(t * config.transaction_bytes as u64);
                    cycles.add_exact(t * config.mem_issue_cycles);
                    let ideal = ideal_lane_transactions(chunk.len(), config).min(t);
                    env.ideal_transactions.add_exact(ideal);
                    env.max_access_transactions.max_with(Interval::exact(t));
                    env.atomic_calls += 1;
                    env.atomic_multiplicity_sum += max_multiplicity;
                }

                // Block tail (scan combine, barriers, fusion domino) accrues
                // to the last live warp.
                if cfg.use_segscan && w + 1 == plan.warps.len() {
                    cycles.add_exact(scan::block_segscan_cycles(bt, config));
                    cycles.add_exact(2 * config.syncthreads_cycles);
                    if cfg.use_fusion {
                        cycles.add_exact(config.adjacent_sync_cycles);
                    }
                }

                env.max_warp_cycles.max_with(cycles);
                env.total_warp_cycles.add(cycles);
            }
            if cfg.use_rocache {
                // Cold per-block cache: at least one compulsory miss per
                // distinct factor buffer; at most every probe misses.
                let miss_lo = if any_gather { n_factors } else { 0 };
                env.cache_misses = Interval::new(miss_lo.min(probes.hi), probes.hi);
                env.cache_hits = Interval::new(0, probes.hi.saturating_sub(miss_lo));
                env.transactions.add(env.cache_misses);
                // CacheRead events carry no payload baseline: ideal = actual.
                env.ideal_transactions.add(env.cache_misses);
                if shape.factor_ws > config.l2_bytes {
                    env.dram_bytes.add(env.cache_misses.scale(dram_per_miss));
                }
                if any_gather {
                    // The block's first probe batch is all-miss (cold cache,
                    // in-call dedup), so the worst access sees ≥ n_factors —
                    // except under the bucketed schedule, whose batches are
                    // per-factor and may dedup to a single line.
                    let cold_lo = if buckets.is_some() { 1 } else { n_factors };
                    env.max_access_transactions
                        .max_with(Interval::new(cold_lo, probes.hi));
                }
            }
            blocks.push(env);
        }
    }

    // Occupancy, mirroring `launch_with_shared`.
    let mut concurrent = config.concurrent_blocks(bt);
    if let Some(per_sm) = config.shared_mem_per_sm.checked_div(shared_bytes) {
        concurrent = concurrent.min(per_sm.max(1) * config.num_sms);
    }
    let mut envelope = fold_launch(&blocks, concurrent, bt, grid_x * columns, config);

    // Unfused variant: the follow-up carry-resolution kernel is charged to
    // `KernelStats` but never traced; keep its exact time separately.
    if cfg.use_segscan && !cfg.use_fusion {
        let carry_block = BlockStats {
            dram_bytes: (partitions * 8) as u64,
            transactions: (partitions * 8).div_ceil(config.transaction_bytes) as u64,
            max_warp_cycles: 64,
            total_warp_cycles: 64,
            warps: 1,
            ..Default::default()
        };
        let carry = KernelStats::from_blocks(&[carry_block], bt, config);
        envelope.untraced_time_us = carry.time_us;
    }
    envelope
}

/// Folds per-block envelopes into a launch envelope by running the exact
/// wave fold of `KernelStats::from_blocks_with_concurrency` at both interval
/// endpoints (the fold is monotone in every per-block counter, so the
/// all-lo / all-hi evaluations bound every concrete outcome; an all-exact
/// launch reproduces the simulated time bit for bit).
fn fold_launch(
    blocks: &[BlockEnvelope],
    concurrent: usize,
    block_threads: usize,
    total_blocks: usize,
    config: &DeviceConfig,
) -> CounterEnvelope {
    let mut env = CounterEnvelope::empty();
    env.launches = 1;
    env.blocks = total_blocks as u64;
    env.launched_warps = (total_blocks * block_threads / config.warp_size.max(1)) as u64;
    let concurrent = concurrent.max(1);
    let mut time_lo = config.launch_overhead_us;
    let mut time_hi = config.launch_overhead_us;
    let mut waves = 0u64;
    for wave in blocks.chunks(concurrent) {
        waves += 1;
        let compute_lo = wave
            .iter()
            .map(|b| compute_time_us(b.max_warp_cycles.lo, b.total_warp_cycles.lo, config))
            .fold(0.0f64, f64::max);
        let compute_hi = wave
            .iter()
            .map(|b| compute_time_us(b.max_warp_cycles.hi, b.total_warp_cycles.hi, config))
            .fold(0.0f64, f64::max);
        let bytes_lo: u64 = wave.iter().map(|b| b.dram_bytes.lo).sum();
        let bytes_hi: u64 = wave.iter().map(|b| b.dram_bytes.hi).sum();
        let memory_lo = bytes_lo as f64 / (config.mem_bandwidth_gbs * 1e3);
        let memory_hi = bytes_hi as f64 / (config.mem_bandwidth_gbs * 1e3);
        time_lo += compute_lo.max(memory_lo);
        time_hi += compute_hi.max(memory_hi);
    }
    if blocks.is_empty() {
        time_lo = config.launch_overhead_us;
        time_hi = config.launch_overhead_us;
    }
    env.waves = waves;
    env.time_us = TimeBounds {
        lo: time_lo,
        hi: time_hi,
    };
    for b in blocks {
        env.active_warps += b.warps;
        env.transactions.add(b.transactions);
        env.ideal_transactions.add(b.ideal_transactions);
        env.max_access_transactions
            .max_with(b.max_access_transactions);
        env.dram_bytes.add(b.dram_bytes);
        env.cache_hits.add(b.cache_hits);
        env.cache_misses.add(b.cache_misses);
        env.atomics += b.atomics;
        env.atomic_calls += b.atomic_calls;
        env.atomic_multiplicity_sum += b.atomic_multiplicity_sum;
    }
    env
}

/// Certified envelope of the two-step SpMTTKRP baseline
/// (`fcoo::spmttkrp_two_step_unified`): the step-1 unified SpTTM envelope
/// plus an **exact** mirror of the step-2 fiber reduction, whose whole
/// address trace is determined by the step-1 format's segment coordinates.
/// Returns `None` for non-3-order tensors (the baseline does not apply).
pub fn certify_two_step(
    config: &DeviceConfig,
    tensor: &SparseTensorCoo,
    mode: usize,
    rank: usize,
    threadlen: usize,
    cfg: &LaunchConfig,
) -> Option<CounterEnvelope> {
    if tensor.order() != 3 {
        return None;
    }
    let product_modes: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
    let (first_product, second_product) = (product_modes[0], product_modes[1]);
    let fcoo = Fcoo::from_coo(
        tensor,
        TensorOp::SpTtm {
            mode: second_product,
        },
        threadlen,
    );
    let mut envelope = certify(config, &fcoo, rank, cfg);

    // Step-2 host bookkeeping, reproduced from the header: the intermediate
    // fibers are the step-1 segments, their coordinates the segment
    // coordinate columns (index modes in ascending order).
    let nfibs = fcoo.segments();
    let index_modes: Vec<usize> = (0..3).filter(|&m| m != second_product).collect();
    let out_pos = index_modes
        .iter()
        .position(|&m| m == mode)
        .expect("output mode is an index mode");
    let b_pos = index_modes
        .iter()
        .position(|&m| m == first_product)
        .expect("first product mode is an index mode");
    let mut order: Vec<usize> = (0..nfibs).collect();
    order.sort_by_key(|&fib| {
        (
            fcoo.segment_coords[out_pos][fib],
            fcoo.segment_coords[b_pos][fib],
        )
    });
    let out_rows: Vec<usize> = order
        .iter()
        .map(|&fib| fcoo.segment_coords[out_pos][fib] as usize)
        .collect();
    let b_rows: Vec<usize> = order
        .iter()
        .map(|&fib| fcoo.segment_coords[b_pos][fib] as usize)
        .collect();
    let b_ws = tensor.shape()[first_product] * rank * 4;

    let step2 = certify_fiber_reduction(
        config, nfibs, &out_rows, &b_rows, rank, b_ws, threadlen, cfg,
    );
    envelope.accumulate(&step2);
    Some(envelope)
}

/// Exact envelope of the step-2 fiber reduction launch (every address is
/// known once `out_rows`/`b_rows` are fixed, so every interval collapses).
#[allow(clippy::too_many_arguments)]
fn certify_fiber_reduction(
    config: &DeviceConfig,
    nfibs: usize,
    out_rows: &[usize],
    b_rows: &[usize],
    rank: usize,
    b_ws: usize,
    threadlen: usize,
    cfg: &LaunchConfig,
) -> CounterEnvelope {
    let bt = cfg.block_size;
    let warp = config.warp_size;
    let partitions = nfibs.div_ceil(threadlen);
    let grid_x = partitions.div_ceil(bt);
    let warps_per_block = bt / warp;
    let write_sharers = rank.min(8) as u64;
    let mut blocks: Vec<BlockEnvelope> = Vec::with_capacity(grid_x * rank);
    for col in 0..rank {
        for bx in 0..grid_x {
            let mut env = BlockEnvelope {
                max_warp_cycles: Interval::ZERO,
                total_warp_cycles: Interval::ZERO,
                transactions: Interval::ZERO,
                ideal_transactions: Interval::ZERO,
                max_access_transactions: Interval::ZERO,
                dram_bytes: Interval::ZERO,
                cache_hits: Interval::ZERO,
                cache_misses: Interval::ZERO,
                atomics: 0,
                atomic_calls: 0,
                atomic_multiplicity_sum: 0,
                warps: 0,
            };
            let mut last_live_warp_cycles: Option<Interval> = None;
            for w in 0..warps_per_block {
                let wft = bx * bt + w * warp;
                let warp_fib_start = wft * threadlen;
                if warp_fib_start >= nfibs {
                    break;
                }
                env.warps += 1;
                let mut cycles = 0u64;
                let span = (warp * threadlen).min(nfibs - warp_fib_start);
                let rows_first = warp_fib_start.saturating_sub(1);
                let rows_last = (warp_fib_start + span).min(nfibs - 1);
                let charge_stream =
                    |env: &mut BlockEnvelope, cycles: &mut u64, offset: usize, bytes: usize| {
                        let t = stream_transactions(offset, bytes, config);
                        env.transactions.add_exact(t);
                        env.ideal_transactions.add_exact(t);
                        if col == 0 {
                            env.dram_bytes
                                .add_exact(t * config.transaction_bytes as u64);
                        }
                        *cycles += t * config.mem_issue_cycles;
                        env.max_access_transactions.max_with(Interval::exact(t));
                    };
                charge_stream(
                    &mut env,
                    &mut cycles,
                    rows_first * 4,
                    (rows_last - rows_first + 1) * 4,
                );
                charge_stream(&mut env, &mut cycles, warp_fib_start * 4, span * 4);

                for i in 0..threadlen {
                    let mut y_indices = Vec::with_capacity(warp);
                    let mut b_indices = Vec::with_capacity(warp);
                    for lane in 0..warp {
                        let fib = (wft + lane) * threadlen + i;
                        if fib < nfibs {
                            y_indices.push(fib * rank + col);
                            b_indices.push(b_rows[fib] * rank + col);
                        }
                    }
                    if y_indices.is_empty() {
                        break;
                    }
                    // Intermediate stream: plain global loads with DRAM.
                    let ty = batch_transactions(&y_indices, config);
                    env.transactions.add_exact(ty);
                    env.dram_bytes
                        .add_exact(ty * config.transaction_bytes as u64);
                    cycles += ty * config.mem_issue_cycles;
                    env.ideal_transactions
                        .add_exact(ideal_lane_transactions(y_indices.len(), config).min(ty));
                    env.max_access_transactions.max_with(Interval::exact(ty));
                    // Factor reads: reused working set.
                    let tb = batch_transactions(&b_indices, config);
                    env.transactions.add_exact(tb);
                    cycles += tb * config.mem_issue_cycles;
                    if b_ws <= config.l2_bytes {
                        cycles += config.l2_latency_cycles;
                    } else {
                        env.dram_bytes
                            .add_exact(tb * config.transaction_bytes as u64);
                    }
                    env.ideal_transactions
                        .add_exact(ideal_lane_transactions(b_indices.len(), config).min(tb));
                    env.max_access_transactions.max_with(Interval::exact(tb));
                    cycles += 2;
                }

                // Lane fold over the out-row segments: one finalize per row
                // change plus the trailing segment, per live lane.
                let mut write_indices: Vec<usize> = Vec::new();
                for lane in 0..warp {
                    let thread = wft + lane;
                    let pstart = thread * threadlen;
                    if pstart >= nfibs {
                        break;
                    }
                    let pend = ((thread + 1) * threadlen).min(nfibs);
                    let mut current_row = out_rows[pstart];
                    for &row in &out_rows[pstart..pend] {
                        if row != current_row {
                            write_indices.push(current_row * rank + col);
                            current_row = row;
                        }
                    }
                    write_indices.push(current_row * rank + col);
                }
                for chunk in write_indices.chunks(warp) {
                    let t = batch_transactions(chunk, config);
                    env.transactions.add_exact(t);
                    env.dram_bytes.add_exact(
                        (t * config.transaction_bytes as u64 / write_sharers.max(1)).max(t * 4),
                    );
                    cycles += t * config.mem_issue_cycles;
                    env.ideal_transactions
                        .add_exact(ideal_lane_transactions(chunk.len(), config).min(t));
                    env.max_access_transactions.max_with(Interval::exact(t));
                }
                cycles += scan::warp_segscan_cycles(config);
                let interval = Interval::exact(cycles);
                last_live_warp_cycles = Some(interval);
                env.max_warp_cycles.max_with(interval);
                env.total_warp_cycles.add(interval);
            }
            // The fusion domino is charged after the warp loop, accruing to
            // the last open warp.
            if cfg.use_fusion {
                if let Some(last) = last_live_warp_cycles {
                    let bumped = Interval::exact(last.lo + config.adjacent_sync_cycles);
                    // Remove the last warp's contribution and re-add bumped.
                    env.total_warp_cycles = Interval::new(
                        env.total_warp_cycles.lo - last.lo + bumped.lo,
                        env.total_warp_cycles.hi - last.hi + bumped.hi,
                    );
                    env.max_warp_cycles.max_with(bumped);
                }
            }
            blocks.push(env);
        }
    }
    // Step 2 launches without shared memory: occupancy is thread-limited.
    let concurrent = config.concurrent_blocks(bt);
    fold_launch(&blocks, concurrent, bt, grid_x * rank, config)
}

/// Certified whole-pipeline envelope of an out-of-core chunked run
/// (`ooc::run_chunked`): the sum of per-chunk launch envelopes over the
/// plan, each chunk certified on its self-contained extracted format. The
/// measured [`KernelCounters`] of a traced chunked run satisfy the summed
/// bounds because chunk launches execute back to back and
/// [`KernelCounters::merge`] is a field-wise sum.
pub fn certify_chunked(
    config: &DeviceConfig,
    fcoo: &Fcoo,
    plan: &ChunkPlan,
    rank: usize,
    cfg: &LaunchConfig,
) -> CounterEnvelope {
    certify_chunked_format(config, FormatKind::Fcoo, fcoo, plan, rank, cfg)
}

/// [`certify_chunked`] for any serving format. The chunk boundaries live in
/// the shared F-COO payload; per-chunk bucket metadata is re-derived from
/// each extracted chunk (exactly what the format-generic out-of-core
/// executor uploads), so the per-chunk envelopes match the traced launches.
pub fn certify_chunked_format(
    config: &DeviceConfig,
    kind: FormatKind,
    fcoo: &Fcoo,
    plan: &ChunkPlan,
    rank: usize,
    cfg: &LaunchConfig,
) -> CounterEnvelope {
    let mut envelope = CounterEnvelope::empty();
    for desc in &plan.chunks {
        let chunk = fcoo::chunk::extract(fcoo, desc);
        let per_chunk = match kind {
            FormatKind::Fcoo => certify(config, &chunk, rank, cfg),
            FormatKind::BfCoo => certify_bfcoo(config, &BfCoo::from_fcoo(chunk), rank, cfg),
        };
        envelope.accumulate(&per_chunk);
    }
    envelope
}

/// Launch-wide bounds on the factor-gather traffic of one configuration —
/// the statically-decidable summary behind the coalescing verdict: per
/// gather call a warp issues between `n_factors` and `live · n_factors`
/// transactions (the in-call line dedup of the read-only path and the
/// 256-byte buffer alignment bound both ends), so every access stays within
/// a factor `transaction_bytes / 4` of the coalesced ideal.
#[derive(Debug, Clone, Copy)]
pub struct GatherBounds {
    /// Total gather calls across the launch.
    pub calls: u64,
    /// Launch-wide transaction envelope of the gather traffic.
    pub transactions: Interval,
    /// Worst single call's transaction bound.
    pub worst_call: u64,
    /// The static bound on actual/ideal transactions per call.
    pub bound_factor: u64,
}

/// Computes [`GatherBounds`] for a unified-kernel configuration in
/// `O(partitions)` time (no full interpretation).
pub fn gather_bounds(
    config: &DeviceConfig,
    fcoo: &Fcoo,
    rank: usize,
    block_size: usize,
) -> GatherBounds {
    let shape = KernelShape::for_op(fcoo, rank);
    let threadlen = fcoo.threadlen;
    let nnz = fcoo.nnz();
    let partitions = fcoo.partitions();
    let grid_x = partitions.div_ceil(block_size.max(1));
    let warp = 32usize;
    let n_factors = shape.n_factors as u64;
    let mut calls = 0u64;
    let mut lanes = 0u64;
    let mut worst = 0u64;
    for bx in 0..grid_x {
        for w in 0..block_size / warp {
            let wft = bx * block_size + w * warp;
            if wft * threadlen >= nnz {
                break;
            }
            for i in 0..threadlen {
                let live = (0..warp)
                    .take_while(|&lane| (wft + lane) * threadlen + i < nnz)
                    .count() as u64;
                if live == 0 {
                    break;
                }
                calls += 1;
                lanes += live;
                worst = worst.max(live * n_factors);
            }
        }
    }
    let columns = shape.columns as u64;
    GatherBounds {
        calls: calls * columns,
        transactions: Interval::new(calls * n_factors * columns, lanes * n_factors * columns),
        worst_call: worst,
        bound_factor: (config.transaction_bytes as u64 / 4).max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcoo::{DeviceMatrix, FcooDevice};
    use gpu_sim::GpuDevice;
    use tensor_core::datasets::{self, DatasetKind};
    use tensor_core::DenseMatrix;

    const RANK: usize = 8;

    fn traced_counters(
        tensor: &SparseTensorCoo,
        op: TensorOp,
        threadlen: usize,
        cfg: &LaunchConfig,
    ) -> KernelCounters {
        let device = GpuDevice::titan_x();
        let fcoo = Fcoo::from_coo(tensor, op, threadlen);
        let on_device = FcooDevice::upload(device.memory(), &fcoo).unwrap();
        let factors: Vec<DeviceMatrix> = tensor
            .shape()
            .iter()
            .enumerate()
            .map(|(m, &n)| {
                let host = DenseMatrix::random(n, RANK, 1 + m as u64);
                DeviceMatrix::upload(device.memory(), &host).unwrap()
            })
            .collect();
        device.start_tracing();
        match op {
            TensorOp::SpTtm { mode } => {
                fcoo::spttm(&device, &on_device, &factors[mode], cfg).unwrap();
            }
            TensorOp::SpMttkrp { .. } => {
                let refs: Vec<&DeviceMatrix> = factors.iter().collect();
                fcoo::spmttkrp(&device, &on_device, &refs, cfg).unwrap();
            }
            TensorOp::SpTtmc { .. } => {
                let pm = &on_device.classification.product_modes;
                let refs: Vec<&DeviceMatrix> = pm.iter().map(|&m| &factors[m]).collect();
                fcoo::spttmc_norder(&device, &on_device, &refs, cfg).unwrap();
            }
        }
        let log = device.stop_tracing();
        log.counters()
    }

    #[test]
    fn envelope_contains_traced_unified_runs() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 1500, 2017);
        let config = DeviceConfig::titan_x();
        for op in [
            TensorOp::SpTtm { mode: 0 },
            TensorOp::SpMttkrp { mode: 0 },
            TensorOp::SpTtmc { mode: 0 },
        ] {
            for &(block, threadlen) in &[(64usize, 8usize), (128, 8), (128, 16)] {
                let cfg = LaunchConfig::with_block_size(block);
                let fcoo = Fcoo::from_coo(&tensor, op, threadlen);
                let envelope = certify(&config, &fcoo, RANK, &cfg);
                let measured = traced_counters(&tensor, op, threadlen, &cfg);
                assert_eq!(
                    envelope.violations(&measured),
                    Vec::<String>::new(),
                    "{op:?} B{block} T{threadlen}"
                );
            }
        }
    }

    #[test]
    fn atomic_ablation_envelope_is_exact_on_atomics() {
        let (tensor, _) = datasets::generate(DatasetKind::Brainq, 1500, 2017);
        let config = DeviceConfig::titan_x();
        let cfg = LaunchConfig {
            block_size: 128,
            use_segscan: false,
            use_fusion: false,
            ..LaunchConfig::default()
        };
        let op = TensorOp::SpMttkrp { mode: 0 };
        let fcoo = Fcoo::from_coo(&tensor, op, 8);
        let envelope = certify(&config, &fcoo, RANK, &cfg);
        let measured = traced_counters(&tensor, op, 8, &cfg);
        assert_eq!(envelope.violations(&measured), Vec::<String>::new());
        assert!(envelope.atomics > 0);
        assert_eq!(envelope.atomics, measured.atomics);
        assert_eq!(envelope.atomic_calls, measured.atomic_calls);
        assert_eq!(
            envelope.atomic_multiplicity_sum,
            measured.atomic_multiplicity_sum
        );
    }

    #[test]
    fn two_step_envelope_contains_traced_pipeline() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 1500, 2017);
        let config = DeviceConfig::titan_x();
        let cfg = LaunchConfig::with_block_size(64);
        let envelope =
            certify_two_step(&config, &tensor, 0, RANK, 8, &cfg).expect("3-order tensor");
        let device = GpuDevice::titan_x();
        let hosts: Vec<DenseMatrix> = tensor
            .shape()
            .iter()
            .enumerate()
            .map(|(m, &n)| DenseMatrix::random(n, RANK, 1 + m as u64))
            .collect();
        let refs: Vec<&DenseMatrix> = hosts.iter().collect();
        device.start_tracing();
        fcoo::spmttkrp_two_step_unified(&device, &tensor, 0, &refs, 8, &cfg).unwrap();
        let measured = device.stop_tracing().counters();
        assert_eq!(envelope.violations(&measured), Vec::<String>::new());
        assert_eq!(envelope.launches, 2);
    }

    #[test]
    fn chunked_envelope_contains_traced_chunked_run() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 1500, 2017);
        let config = DeviceConfig::titan_x();
        let cfg = LaunchConfig::with_block_size(128);
        let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpMttkrp { mode: 0 }, 8);
        let budget = (fcoo.storage().total_bytes() / 4).max(1);
        let plan = fcoo::chunk::split(&fcoo, budget);
        let envelope = certify_chunked(&config, &fcoo, &plan, RANK, &cfg);
        let device = GpuDevice::titan_x();
        let hosts: Vec<DenseMatrix> = tensor
            .shape()
            .iter()
            .enumerate()
            .map(|(m, &n)| DenseMatrix::random(n, RANK, 1 + m as u64))
            .collect();
        device.start_tracing();
        ooc_run(&device, &fcoo, &plan, &hosts, &cfg);
        let measured = device.stop_tracing().counters();
        assert_eq!(envelope.violations(&measured), Vec::<String>::new());
        assert_eq!(envelope.launches, plan.len() as u64);
    }

    // The ooc crate depends on analyzer would be a cycle the other way; the
    // chunked execution loop is small enough to inline for the test.
    fn ooc_run(
        device: &GpuDevice,
        fcoo: &Fcoo,
        plan: &ChunkPlan,
        hosts: &[DenseMatrix],
        cfg: &LaunchConfig,
    ) {
        let factors: Vec<DeviceMatrix> = hosts
            .iter()
            .map(|h| DeviceMatrix::upload(device.memory(), h).unwrap())
            .collect();
        let refs: Vec<&DeviceMatrix> = factors.iter().collect();
        for desc in &plan.chunks {
            let chunk = fcoo::chunk::extract(fcoo, desc);
            let on_device = FcooDevice::upload(device.memory(), &chunk).unwrap();
            let rows = chunk.shape[match chunk.op {
                TensorOp::SpMttkrp { mode } => mode,
                _ => unreachable!("test uses MTTKRP"),
            }];
            let out = device.memory().alloc_zeroed::<f32>(rows * RANK).unwrap();
            fcoo::kernels::spmttkrp_into(device, &on_device, &refs, cfg, &out);
        }
    }

    fn traced_bfcoo_counters(
        tensor: &SparseTensorCoo,
        op: TensorOp,
        threadlen: usize,
        cfg: &LaunchConfig,
    ) -> KernelCounters {
        let device = GpuDevice::titan_x();
        let bf = BfCoo::from_coo(tensor, op, threadlen);
        let on_device = fcoo::BfCooDevice::upload(device.memory(), &bf).unwrap();
        let factors: Vec<DeviceMatrix> = tensor
            .shape()
            .iter()
            .enumerate()
            .map(|(m, &n)| {
                let host = DenseMatrix::random(n, RANK, 1 + m as u64);
                DeviceMatrix::upload(device.memory(), &host).unwrap()
            })
            .collect();
        device.start_tracing();
        match op {
            TensorOp::SpTtm { mode } => {
                on_device.spttm(&device, &factors[mode], cfg).unwrap();
            }
            TensorOp::SpMttkrp { .. } => {
                let refs: Vec<&DeviceMatrix> = factors.iter().collect();
                on_device.spmttkrp(&device, &refs, cfg).unwrap();
            }
            TensorOp::SpTtmc { .. } => {
                let pm = &on_device.base.classification.product_modes;
                let refs: Vec<&DeviceMatrix> = pm.iter().map(|&m| &factors[m]).collect();
                on_device.spttmc_norder(&device, &refs, cfg).unwrap();
            }
        }
        device.stop_tracing().counters()
    }

    #[test]
    fn bfcoo_envelope_contains_traced_bucketed_runs() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 1500, 2017);
        let config = DeviceConfig::titan_x();
        for op in [
            TensorOp::SpTtm { mode: 0 },
            TensorOp::SpMttkrp { mode: 0 },
            TensorOp::SpTtmc { mode: 0 },
        ] {
            for &(block, threadlen) in &[(64usize, 8usize), (128, 16)] {
                let cfg = LaunchConfig::with_block_size(block);
                let bf = BfCoo::from_coo(&tensor, op, threadlen);
                let envelope = certify_bfcoo(&config, &bf, RANK, &cfg);
                let measured = traced_bfcoo_counters(&tensor, op, threadlen, &cfg);
                assert_eq!(
                    envelope.violations(&measured),
                    Vec::<String>::new(),
                    "{op:?} B{block} T{threadlen}"
                );
            }
        }
    }

    #[test]
    fn bfcoo_envelope_is_sound_without_the_readonly_cache() {
        let (tensor, _) = datasets::generate(DatasetKind::Brainq, 1500, 2017);
        let config = DeviceConfig::titan_x();
        let op = TensorOp::SpMttkrp { mode: 0 };
        let cfg = LaunchConfig {
            block_size: 128,
            use_rocache: false,
            ..LaunchConfig::default()
        };
        let bf = BfCoo::from_coo(&tensor, op, 8);
        let envelope = certify_bfcoo(&config, &bf, RANK, &cfg);
        let measured = traced_bfcoo_counters(&tensor, op, 8, &cfg);
        assert_eq!(envelope.violations(&measured), Vec::<String>::new());
    }

    #[test]
    fn certify_format_dispatches_both_formats() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 1500, 2017);
        let config = DeviceConfig::titan_x();
        let op = TensorOp::SpMttkrp { mode: 0 };
        let cfg = LaunchConfig::with_block_size(64);
        for kind in FormatKind::ALL {
            let format = AnyFormat::build(kind, &tensor, op, 8);
            let envelope = certify_format(&config, &format, RANK, &cfg);
            assert!(envelope.time_us.hi >= envelope.time_us.lo);
            assert!(envelope.blocks > 0);
        }
    }

    #[test]
    fn chunked_bfcoo_envelope_contains_traced_chunked_run() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 1500, 2017);
        let config = DeviceConfig::titan_x();
        let cfg = LaunchConfig::with_block_size(128);
        let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpMttkrp { mode: 0 }, 8);
        let budget = (fcoo.storage().total_bytes() / 4).max(1);
        let plan = fcoo::chunk::split(&fcoo, budget);
        let envelope = certify_chunked_format(&config, FormatKind::BfCoo, &fcoo, &plan, RANK, &cfg);
        let device = GpuDevice::titan_x();
        let hosts: Vec<DenseMatrix> = tensor
            .shape()
            .iter()
            .enumerate()
            .map(|(m, &n)| DenseMatrix::random(n, RANK, 1 + m as u64))
            .collect();
        let factors: Vec<DeviceMatrix> = hosts
            .iter()
            .map(|h| DeviceMatrix::upload(device.memory(), h).unwrap())
            .collect();
        let refs: Vec<&DeviceMatrix> = factors.iter().collect();
        device.start_tracing();
        for desc in &plan.chunks {
            let chunk = BfCoo::from_fcoo(fcoo::chunk::extract(&fcoo, desc));
            let rows = chunk.base.shape[0];
            let on_device = fcoo::BfCooDevice::upload(device.memory(), &chunk).unwrap();
            let out = device.memory().alloc_zeroed::<f32>(rows * RANK).unwrap();
            on_device.spmttkrp_into(&device, &refs, &cfg, &out);
        }
        let measured = device.stop_tracing().counters();
        assert_eq!(envelope.violations(&measured), Vec::<String>::new());
        assert_eq!(envelope.launches, plan.len() as u64);
    }

    #[test]
    fn long_fiber_skew_tightens_the_bfcoo_bound_below_fcoo() {
        // The format-selection criterion: on a long-fiber power-law tensor
        // the exact buckets collapse the gather worst case, so BF-COO's
        // certified time upper bound lands strictly below F-COO's at the
        // same configuration.
        let mut entries = Vec::new();
        for s in 0..200u32 {
            let len = ((8_000.0 / f64::powf(s as f64 + 1.0, 1.3)) as u32).clamp(1, 1000);
            for t in 0..len {
                entries.push((vec![s, (s * 7) % 300, (t * 13) % 1000], 1.0f32));
            }
        }
        let tensor = SparseTensorCoo::from_entries(vec![200, 300, 1000], &entries);
        let config = DeviceConfig::titan_x();
        let op = TensorOp::SpMttkrp { mode: 0 };
        let cfg = LaunchConfig::with_block_size(128);
        let bf = BfCoo::from_coo(&tensor, op, 16);
        let fc_hi = certify(&config, &bf.base, RANK, &cfg).stats_time_us().hi;
        let bf_hi = certify_bfcoo(&config, &bf, RANK, &cfg).stats_time_us().hi;
        assert!(
            bf_hi < fc_hi,
            "bucketed hi {bf_hi} must undercut strided hi {fc_hi} on skew"
        );
    }

    #[test]
    fn gather_bounds_match_full_interpretation() {
        let (tensor, _) = datasets::generate(DatasetKind::Delicious, 1200, 2017);
        let config = DeviceConfig::titan_x();
        let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpMttkrp { mode: 0 }, 16);
        let bounds = gather_bounds(&config, &fcoo, RANK, 128);
        let envelope = certify(&config, &fcoo, RANK, &LaunchConfig::with_block_size(128));
        // The gather interval must agree with the full envelope's cache-miss
        // bound (misses = gather transactions in the read-only path).
        assert_eq!(bounds.transactions.hi, envelope.cache_misses.hi);
        assert!(bounds.calls > 0);
        assert_eq!(bounds.bound_factor, 8);
    }
}
