//! Symbolic launch geometry of the F-COO kernels.
//!
//! The abstract domain is deliberately small: every kernel in this workspace
//! assigns lane `l ∈ [0, 32)` of warp `w` in block `bx` to partition
//! `p(l) = bx·B + w·32 + l`, and partition `p` to the non-zero interval
//! `[p·T, min((p+1)·T, nnz))`. All launch properties the analyzer decides
//! are monotone along that linear order, so evaluating the symbolic
//! expressions at the *extremal* warp (the last live one) plus the exact
//! integer arithmetic of the header (`nnz`, `threadlen`, `partitions`) gives
//! precise answers — no approximation, hence verdicts that can never
//! disagree with a recorded trace.

use gpu_sim::DeviceConfig;

/// Exact launch geometry of one `(kernel, block_size, threadlen)` point —
/// the symbolic warp model's concrete skeleton.
#[derive(Debug, Clone, Copy)]
pub struct LaunchGeometry {
    /// Threads per block.
    pub block_size: usize,
    /// Non-zeros (or fibers, for the two-step reduction) per thread.
    pub threadlen: usize,
    /// Total work items: `nnz` for the unified kernels, `nfibs` for the
    /// two-step reduction.
    pub work_items: usize,
    /// Thread-level partitions: `⌈work_items / threadlen⌉`.
    pub partitions: usize,
    /// Grid x-extent: `⌈partitions / block_size⌉`.
    pub grid_x: usize,
    /// Grid y-extent (dense output columns handled by sibling blocks).
    pub columns: usize,
    /// Dynamic shared memory per block in bytes.
    pub shared_bytes: usize,
}

impl LaunchGeometry {
    /// Geometry of a unified-kernel launch over `work_items` non-zeros.
    pub fn new(
        block_size: usize,
        threadlen: usize,
        work_items: usize,
        columns: usize,
        shared_bytes: usize,
    ) -> Self {
        let partitions = work_items.div_ceil(threadlen.max(1));
        LaunchGeometry {
            block_size,
            threadlen,
            work_items,
            partitions,
            grid_x: partitions.div_ceil(block_size.max(1)),
            columns,
            shared_bytes,
        }
    }

    /// Warp slots launched per block.
    pub fn warps_per_block(&self, config: &DeviceConfig) -> usize {
        self.block_size / config.warp_size
    }

    /// Live warps in the last block: warps whose first lane still maps to a
    /// partition below `partitions`. Earlier blocks are always full.
    pub fn live_warps_last_block(&self, config: &DeviceConfig) -> usize {
        let covered = (self.grid_x - 1) * self.block_size;
        let remaining = self.partitions - covered;
        remaining.div_ceil(config.warp_size)
    }

    /// Warp slots in the last block that are statically dead: their first
    /// lane's `warp_nnz_start = p·T` is already `≥ work_items`, so the
    /// kernel `break`s before `begin_warp`.
    pub fn dead_warps_last_block(&self, config: &DeviceConfig) -> usize {
        self.warps_per_block(config) - self.live_warps_last_block(config)
    }

    /// The symbolic window of the first statically dead warp, if any:
    /// `(block, warp, nnz_start)` with `nnz_start ≥ work_items` — the
    /// concrete lane/index assignment a refutation reports.
    pub fn first_dead_warp(&self, config: &DeviceConfig) -> Option<(usize, usize, usize)> {
        if self.dead_warps_last_block(config) == 0 {
            return None;
        }
        let block = self.grid_x - 1;
        let warp = self.live_warps_last_block(config);
        let first_partition = block * self.block_size + warp * config.warp_size;
        Some((block, warp, first_partition * self.threadlen))
    }

    /// The smallest candidate block size that covers the same launch in one
    /// block with strictly fewer warp slots, if one exists. Both launches
    /// then run a single block with identical partition→warp mapping and
    /// identical per-warp work; the only cost that differs is the block-level
    /// segmented-scan tree, which grows strictly with the block size — so the
    /// larger block is strictly dominated and can be pruned from a tuning
    /// sweep without changing the winner.
    pub fn dominated_by(&self, candidates: &[usize]) -> Option<usize> {
        candidates
            .iter()
            .copied()
            .filter(|&other| self.partitions <= other && other < self.block_size)
            .min()
    }

    /// Upper bound on functional atomic events across the launch: the
    /// segmented scan resolves every interior segment with an exclusive
    /// write, and each thread (partition) issues at most two non-exclusive
    /// finalizations — its first closed segment (when the partition starts
    /// mid-segment) and its final open segment — per output column.
    pub fn atomic_bound(&self) -> usize {
        2 * self.partitions * self.columns
    }
}

/// Validates the launch shape against hard device limits. Returns the first
/// violated constraint, phrased for a refutation message.
pub fn launch_shape_violation(geometry: &LaunchGeometry, config: &DeviceConfig) -> Option<String> {
    let block = geometry.block_size;
    if block == 0 {
        return Some("block size is zero".to_owned());
    }
    if !block.is_multiple_of(config.warp_size) {
        return Some(format!(
            "block size {block} is not a multiple of the warp size {}",
            config.warp_size
        ));
    }
    if block > config.max_threads_per_block {
        return Some(format!(
            "block size {block} exceeds the device limit of {} threads per block",
            config.max_threads_per_block
        ));
    }
    if geometry.shared_bytes > config.shared_mem_per_sm {
        return Some(format!(
            "block needs {} B of shared memory, the SM has {} B",
            geometry.shared_bytes, config.shared_mem_per_sm
        ));
    }
    if geometry.threadlen == 0 {
        return Some("threadlen is zero".to_owned());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> DeviceConfig {
        DeviceConfig::titan_x()
    }

    #[test]
    fn geometry_counts_live_and_dead_warps() {
        // 4000 nnz, threadlen 32 → 125 partitions. Block 1024 launches one
        // block of 32 warps; only ⌈125/32⌉ = 4 are live.
        let g = LaunchGeometry::new(1024, 32, 4000, 8, 256);
        assert_eq!(g.partitions, 125);
        assert_eq!(g.grid_x, 1);
        assert_eq!(g.live_warps_last_block(&config()), 4);
        assert_eq!(g.dead_warps_last_block(&config()), 28);
        let (block, warp, nnz_start) = g.first_dead_warp(&config()).expect("dead warp");
        assert_eq!((block, warp), (0, 4));
        assert!(nnz_start >= 4000);
    }

    #[test]
    fn full_blocks_have_no_dead_warps() {
        // 4096 nnz, threadlen 32 → 128 partitions: block 128 → one full block.
        let g = LaunchGeometry::new(128, 32, 4096, 8, 32);
        assert_eq!(g.dead_warps_last_block(&config()), 0);
        assert!(g.first_dead_warp(&config()).is_none());
    }

    #[test]
    fn dominance_requires_a_single_block_cover() {
        let grid = [32, 64, 128, 256, 512, 1024];
        // 125 partitions: 128 already covers them in one block, so 256, 512
        // and 1024 are all dominated — by 128, the smallest cover.
        let g512 = LaunchGeometry::new(512, 32, 4000, 8, 128);
        assert_eq!(g512.dominated_by(&grid), Some(128));
        let g256 = LaunchGeometry::new(256, 32, 4000, 8, 64);
        assert_eq!(g256.dominated_by(&grid), Some(128));
        // 128 itself is the smallest single-block cover: not dominated.
        let g128 = LaunchGeometry::new(128, 32, 4000, 8, 32);
        assert_eq!(g128.dominated_by(&grid), None);
        // Multi-block launches are never dominated.
        let g64 = LaunchGeometry::new(64, 32, 4000, 8, 16);
        assert_eq!(g64.dominated_by(&grid), None);
    }

    #[test]
    fn launch_shape_rejects_device_violations() {
        let cfg = config();
        let bad_multiple = LaunchGeometry::new(48, 8, 1000, 8, 8);
        assert!(launch_shape_violation(&bad_multiple, &cfg)
            .expect("violation")
            .contains("multiple of the warp size"));
        let too_big = LaunchGeometry::new(2048, 8, 1000, 8, 512);
        assert!(launch_shape_violation(&too_big, &cfg)
            .expect("violation")
            .contains("exceeds the device limit"));
        let ok = LaunchGeometry::new(128, 8, 1000, 8, 32);
        assert!(launch_shape_violation(&ok, &cfg).is_none());
    }

    #[test]
    fn atomic_bound_scales_with_partitions_and_columns() {
        let g = LaunchGeometry::new(128, 16, 1000, 8, 32);
        assert_eq!(g.partitions, 63);
        assert_eq!(g.atomic_bound(), 2 * 63 * 8);
    }
}
