//! Golden agreement between the symbolic analyzer and the dynamic profiler:
//! on every configuration where the analyzer returns `proved`, the traced
//! counters must fall inside the proved bound — occupancy exactly 1.0 when
//! effective-warps is proved (and strictly below when refuted), functional
//! atomic lanes within the confinement bound, and per-access transaction
//! counts within one of ideal where coalescing is proved.

use analyzer::model::LaunchGeometry;
use analyzer::{analyze_tensor, KernelKind, Property, Verdict};
use fcoo::{
    spmttkrp, spmttkrp_two_step_unified, spttm, spttmc_norder, DeviceMatrix, Fcoo, FcooDevice,
    LaunchConfig, TensorOp,
};
use gpu_sim::{GpuDevice, LaunchTrace, MemoryEventKind};
use tensor_core::datasets::{self, DatasetKind};
use tensor_core::{DenseMatrix, SparseTensorCoo};

const BLOCK_SIZES: [usize; 2] = [64, 256];
const THREADLENS: [usize; 2] = [8, 32];
const RANK: usize = 8;
const MODE: usize = 0;

fn factors(tensor: &SparseTensorCoo) -> Vec<DenseMatrix> {
    tensor
        .shape()
        .iter()
        .enumerate()
        .map(|(m, &n)| DenseMatrix::random(n, RANK, 1 + m as u64))
        .collect()
}

/// Runs `kind` traced at one configuration on a fresh device and returns
/// the captured launches.
fn run_traced(
    tensor: &SparseTensorCoo,
    kind: KernelKind,
    block_size: usize,
    threadlen: usize,
) -> Vec<LaunchTrace> {
    let device = GpuDevice::titan_x();
    let cfg = LaunchConfig {
        block_size,
        ..LaunchConfig::default()
    };
    let hosts = factors(tensor);
    if kind == KernelKind::TwoStep {
        let refs: Vec<&DenseMatrix> = hosts.iter().collect();
        device.start_tracing();
        spmttkrp_two_step_unified(&device, tensor, MODE, &refs, threadlen, &cfg)
            .expect("two-step run");
        return device.stop_tracing().launches;
    }
    let op = kind.op(MODE, tensor.order());
    let fcoo = Fcoo::from_coo(tensor, op, threadlen);
    let on_device = FcooDevice::upload(device.memory(), &fcoo).expect("upload");
    let uploaded: Vec<DeviceMatrix> = hosts
        .iter()
        .map(|f| DeviceMatrix::upload(device.memory(), f).expect("factor upload"))
        .collect();
    device.start_tracing();
    match op {
        TensorOp::SpTtm { mode } => {
            spttm(&device, &on_device, &uploaded[mode], &cfg).expect("spttm");
        }
        TensorOp::SpMttkrp { .. } => {
            let refs: Vec<&DeviceMatrix> = uploaded.iter().collect();
            spmttkrp(&device, &on_device, &refs, &cfg).expect("spmttkrp");
        }
        TensorOp::SpTtmc { .. } => {
            let product: Vec<&DeviceMatrix> = on_device
                .classification
                .product_modes
                .iter()
                .map(|&m| &uploaded[m])
                .collect();
            spttmc_norder(&device, &on_device, &product, &cfg).expect("spttmc");
        }
    }
    device.stop_tracing().launches
}

/// The proved atomic bound for one configuration, recomputed exactly as the
/// analyzer's confinement verdict derives it: two frontier updates per
/// partition per output column, plus the step-2 frontier for the two-step
/// baseline.
fn atomic_bound(tensor: &SparseTensorCoo, kind: KernelKind, block: usize, tl: usize) -> u64 {
    let fcoo = Fcoo::from_coo(tensor, kind.op(MODE, tensor.order()), tl);
    let columns = if kind == KernelKind::SpTtmc {
        RANK * RANK
    } else {
        RANK
    };
    let geometry = LaunchGeometry::new(block, tl, fcoo.nnz(), columns, 0);
    let mut bound = geometry.atomic_bound() as u64;
    if kind == KernelKind::TwoStep {
        let partitions2 = fcoo.segments().div_ceil(tl.max(1));
        bound += (2 * partitions2 * RANK) as u64;
    }
    bound
}

#[test]
fn proved_verdicts_agree_with_traced_counters() {
    let mut proved_checked = 0;
    let mut refuted_checked = 0;
    for kind_name in [DatasetKind::Brainq, DatasetKind::Delicious] {
        let (tensor, _) = datasets::generate(kind_name, 1_200, 7);
        for kind in KernelKind::ALL {
            let Some(analysis) = analyze_tensor(
                &GpuDevice::titan_x().config().clone(),
                &tensor,
                kind,
                MODE,
                RANK,
                &BLOCK_SIZES,
                &THREADLENS,
            ) else {
                continue;
            };
            for config in &analysis.configs {
                let verdict_of = |p: Property| {
                    config
                        .properties
                        .iter()
                        .find(|v| v.property == p)
                        .map(|v| v.verdict)
                };
                // A refuted launch shape cannot be launched at all.
                if verdict_of(Property::LaunchShape) == Some(Verdict::Refuted) {
                    continue;
                }
                let launches = run_traced(&tensor, kind, config.block_size, config.threadlen);
                assert!(!launches.is_empty(), "{kind:?} produced no launches");
                let label = format!(
                    "{:?} B{} T{} on {:?}",
                    kind, config.block_size, config.threadlen, kind_name
                );

                // Effective warps: the analyzer models the primary launch
                // (step 1 for the two-step baseline). Proved means every
                // launched warp slot begins; refuted means a statically dead
                // slot exists, which dynamically never calls `begin_warp`.
                let primary = launches[0].counters();
                match verdict_of(Property::EffectiveWarps) {
                    Some(Verdict::Proved) => {
                        proved_checked += 1;
                        assert_eq!(
                            primary.active_warps,
                            primary.launched_warps,
                            "{label}: effective-warps proved but occupancy {} < 1",
                            primary.occupancy()
                        );
                    }
                    Some(Verdict::Refuted) => {
                        refuted_checked += 1;
                        assert!(
                            primary.active_warps < primary.launched_warps,
                            "{label}: effective-warps refuted but every warp ran"
                        );
                    }
                    _ => {}
                }

                // Atomic confinement: proved bounds the *functional* atomic
                // lanes across the whole operation (all launches).
                if verdict_of(Property::AtomicConfinement) == Some(Verdict::Proved) {
                    proved_checked += 1;
                    let mut total = gpu_sim::KernelCounters::default();
                    for launch in &launches {
                        total.merge(&launch.counters());
                    }
                    let bound = atomic_bound(&tensor, kind, config.block_size, config.threadlen);
                    assert!(
                        total.atomics <= bound,
                        "{label}: {} atomic lanes exceed the proved bound {bound}",
                        total.atomics
                    );
                }

                // Coalescing: proved claims every modeled warp-wide global
                // read stays within one transaction of ideal for any base
                // alignment. The analyzer only proves this for the two-step
                // baseline's step-2 gather, whose reads are traced in the
                // second launch.
                if verdict_of(Property::Coalescing) == Some(Verdict::Proved) {
                    proved_checked += 1;
                    let step2 = launches.last().unwrap();
                    for block in &step2.blocks {
                        for event in &block.events {
                            if event.kind == MemoryEventKind::GlobalRead {
                                assert!(
                                    event.transactions <= event.ideal_transactions + 1,
                                    "{label}: proved-coalesced read issued {} vs ideal {}",
                                    event.transactions,
                                    event.ideal_transactions
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    // The sweep must actually exercise both directions of the agreement.
    assert!(
        proved_checked >= 8,
        "only {proved_checked} proved verdicts were checked — grid too small"
    );
    assert!(
        refuted_checked >= 1,
        "no refuted effective-warps verdict was exercised"
    );
}
