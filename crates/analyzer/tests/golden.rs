//! Golden agreement tests: every verdict the symbolic analyzer issues must
//! agree with what a *recorded* execution of the same configuration shows.
//!
//! - statically **proved** properties hold in dynamic sanitizer traces on the
//!   seed tensors (no disagreement in either direction);
//! - statically **refuted** configurations reproduce their counterexample
//!   under replay — the dead warps are absent from the record, the strided
//!   gather costs exactly the predicted transactions;
//! - analyzer-pruned tuning selects the same winner as the exhaustive sweep
//!   while simulating strictly fewer launches.

use analyzer::model::LaunchGeometry;
use analyzer::{analyze_tensor, KernelKind, Property, Verdict};
use fcoo::{BitFlags, DeviceMatrix, Fcoo, FcooDevice, LaunchConfig, TensorOp};
use gpu_sim::record::AccessKind;
use gpu_sim::{coalesce, AccessLog, GpuDevice};
use tensor_core::datasets::{self, DatasetKind};
use tensor_core::{DenseMatrix, SparseTensorCoo};

fn sample(nnz: usize) -> SparseTensorCoo {
    datasets::generate(DatasetKind::Nell2, nnz, 11).0
}

/// Records one unified SpMTTKRP launch and returns the access log.
fn record_spmttkrp(
    device: &GpuDevice,
    tensor: &SparseTensorCoo,
    threadlen: usize,
    rank: usize,
    cfg: &LaunchConfig,
) -> AccessLog {
    let fcoo = Fcoo::from_coo(tensor, TensorOp::SpMttkrp { mode: 0 }, threadlen);
    let on_device = FcooDevice::upload(device.memory(), &fcoo).expect("upload");
    let hosts: Vec<DenseMatrix> = tensor
        .shape()
        .iter()
        .enumerate()
        .map(|(m, &n)| DenseMatrix::random(n, rank, 1 + m as u64))
        .collect();
    let factors: Vec<DeviceMatrix> = hosts
        .iter()
        .map(|f| DeviceMatrix::upload(device.memory(), f).expect("upload"))
        .collect();
    let refs: Vec<&DeviceMatrix> = factors.iter().collect();
    device.start_recording();
    fcoo::spmttkrp(device, &on_device, &refs, cfg).expect("launch");
    device.stop_recording()
}

#[test]
fn recorded_atomics_stay_within_the_static_bound() {
    let device = GpuDevice::titan_x();
    let tensor = sample(2_000);
    let (threadlen, rank) = (16, 8);
    let cfg = LaunchConfig::default();
    let log = record_spmttkrp(&device, &tensor, threadlen, rank, &cfg);
    let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpMttkrp { mode: 0 }, threadlen);
    let bound = LaunchGeometry::new(cfg.block_size, threadlen, fcoo.nnz(), rank, 0).atomic_bound();
    let atomics: usize = log
        .launches
        .iter()
        .flat_map(|l| &l.blocks)
        .flat_map(|b| &b.events)
        .filter(|e| e.kind == AccessKind::FunctionalAtomic)
        .count();
    assert!(atomics > 0, "the kernel must issue frontier atomics");
    assert!(
        atomics <= bound,
        "recorded {atomics} functional atomics exceed the proved bound {bound}"
    );
}

#[test]
fn refuted_dead_warps_are_absent_from_the_record() {
    let device = GpuDevice::titan_x();
    let tensor = sample(4_000);
    let (threadlen, rank) = (64, 8);
    let analysis = analyze_tensor(
        device.config(),
        &tensor,
        KernelKind::SpMttkrp,
        0,
        rank,
        &[64, 1024],
        &[threadlen],
    )
    .expect("unified kernels analyze on any order");
    let config = analysis
        .configs
        .iter()
        .find(|c| c.block_size == 1024)
        .expect("grid point");
    let warps = config
        .properties
        .iter()
        .find(|p| p.property == Property::EffectiveWarps)
        .expect("effective-warps verdict");
    assert_eq!(
        warps.verdict,
        Verdict::Refuted,
        "block 1024 is dominated by 64 on this tensor: {}",
        warps.detail
    );
    let cx = warps.counterexample.as_ref().expect("counterexample");

    // Replay the refuted configuration: the warps the analyzer declared dead
    // must never appear in the recorded trace, and every live warp must.
    let cfg = LaunchConfig {
        block_size: 1024,
        ..LaunchConfig::default()
    };
    let log = record_spmttkrp(&device, &tensor, threadlen, rank, &cfg);
    let block = &log.launches[0].blocks[cx.block];
    let seen: std::collections::BTreeSet<u32> = block.events.iter().map(|e| e.warp).collect();
    assert_eq!(
        seen.len(),
        cx.warp,
        "live warp count must equal the first dead warp index {}: saw {seen:?}",
        cx.warp
    );
    assert!(
        seen.iter().all(|&w| (w as usize) < cx.warp),
        "a statically dead warp left events in the record: {seen:?}"
    );
}

#[test]
fn proved_segment_flags_replay_clean_and_refuted_flags_reproduce() {
    let device = GpuDevice::titan_x();
    let tensor = sample(2_000);
    let (threadlen, rank) = (16, 8);
    let analysis = analyze_tensor(
        device.config(),
        &tensor,
        KernelKind::SpMttkrp,
        0,
        rank,
        &[128],
        &[threadlen],
    )
    .expect("analysis");
    let flags = analysis.configs[0]
        .properties
        .iter()
        .find(|p| p.property == Property::SegmentFlags)
        .expect("segment-flags verdict");
    assert_eq!(flags.verdict, Verdict::Proved, "{}", flags.detail);
    // The proof must hold dynamically: a full sanitizer replay of the same
    // configuration reports nothing.
    let log = record_spmttkrp(&device, &tensor, threadlen, rank, &LaunchConfig::default());
    let dynamic = sanitizer::analyze(&log);
    assert_eq!(dynamic.error_count(), 0, "{dynamic}");

    // And a refutation must reproduce: corrupt a padding bit of the packed
    // start-flags (a ghost segment head in the padded final partition) and
    // the same plan the analyzer refutes is the one the dynamic lint rejects.
    let mut fcoo = Fcoo::from_coo(&tensor, TensorOp::SpMttkrp { mode: 0 }, threadlen);
    let partitions = fcoo.partitions();
    assert!(
        !partitions.is_multiple_of(8),
        "need a partial final sf byte for this test"
    );
    let mut bytes = fcoo.sf.bytes().to_vec();
    let last = bytes.len() - 1;
    bytes[last] |= 1 << (partitions % 8);
    fcoo.sf = BitFlags::from_bytes(bytes, partitions);
    assert!(!analyzer::plan_safe(device.config(), &fcoo, 128));
    let lint = sanitizer::check_fcoo(&fcoo);
    assert!(
        lint.findings.iter().any(|f| f.message.contains("padding")),
        "dynamic lint must reproduce the refutation: {lint}"
    );
}

#[test]
fn two_step_gather_counterexample_reproduces_under_replay() {
    let device = GpuDevice::titan_x();
    let tensor = sample(2_000);
    let (threadlen, rank) = (8, 8);
    let cfg = LaunchConfig::default();
    let analysis = analyze_tensor(
        device.config(),
        &tensor,
        KernelKind::TwoStep,
        0,
        rank,
        &[cfg.block_size],
        &[threadlen],
    )
    .expect("3-order tensor");
    let gather = analysis.configs[0]
        .properties
        .iter()
        .find(|p| p.property == Property::Coalescing)
        .expect("coalescing verdict");
    assert_eq!(gather.verdict, Verdict::Refuted, "{}", gather.detail);
    let cx = gather.counterexample.as_ref().expect("counterexample");
    assert_eq!(cx.lane_offsets.len(), 32);

    // Replay: record both launches of the two-step method. In the step-2
    // record of block (0, col 0), the first 32 lane-granular narrated reads
    // are warp 0's iteration-0 intermediate gather — the exact access the
    // counterexample symbolizes.
    let hosts: Vec<DenseMatrix> = tensor
        .shape()
        .iter()
        .enumerate()
        .map(|(m, &n)| DenseMatrix::random(n, rank, 1 + m as u64))
        .collect();
    let refs: Vec<&DenseMatrix> = hosts.iter().collect();
    device.start_recording();
    fcoo::spmttkrp_two_step_unified(&device, &tensor, 0, &refs, threadlen, &cfg).expect("launch");
    let log = device.stop_recording();
    assert_eq!(log.launches.len(), 2, "one launch per step");
    let step2 = &log.launches[1].blocks[cx.block];
    let addrs: Vec<u64> = step2
        .events
        .iter()
        .filter(|e| e.kind == AccessKind::NarratedRead && e.bytes == 1 && e.warp == cx.warp as u32)
        .take(32)
        .map(|e| e.addr)
        .collect();
    assert_eq!(addrs.len(), 32, "warp 0 must gather with all 32 lanes");

    // Identical stride pattern...
    let stride = (threadlen * rank * 4) as u64;
    for pair in addrs.windows(2) {
        assert_eq!(pair[1] - pair[0], stride, "recorded gather stride");
    }
    for pair in cx.lane_offsets.windows(2) {
        assert_eq!(pair[1] - pair[0], stride, "symbolic gather stride");
    }
    // ...and the replayed access costs what the refutation claims: far off
    // the ideal, within the symbolic worst case.
    let seg = device.config().transaction_bytes;
    let replayed = coalesce::transactions(&addrs, seg);
    let symbolic_worst = coalesce::transactions(&cx.lane_offsets, seg);
    assert_eq!(replayed, 32, "each lane pays its own transaction");
    assert!(replayed <= symbolic_worst);
    assert!(replayed > gpu_sim::RangeAccess::new(32 * 4, 4).ideal_transactions(seg));
}

#[test]
fn pruned_tuning_selects_the_same_winner_with_fewer_launches() {
    let device = GpuDevice::titan_x();
    let tensor = sample(4_000);
    let op = TensorOp::SpMttkrp { mode: 0 };
    let exhaustive = fcoo::tune(&device, &tensor, op, 8, None, None);
    let pruned = analyzer::tune_pruned(&device, &tensor, op, 8, None, None);
    assert_eq!(
        exhaustive.best_pair(),
        pruned.best_pair(),
        "pruning must be winner-preserving"
    );
    assert!(
        !pruned.pruned.is_empty(),
        "the full grid has dominated configurations on this tensor"
    );
    assert_eq!(
        pruned.surface.len() + pruned.pruned.len(),
        exhaustive.surface.len(),
        "every grid point is either simulated or statically pruned"
    );
    assert!(pruned.surface.len() < exhaustive.surface.len());
}
