//! Property tests for the symbolic cost certifier (`analyzer::cost`).
//!
//! Two claims must hold for *arbitrary* tensors and configurations, not
//! just the golden datasets:
//!
//! * **soundness** — the `[lo, hi]` envelope certified from the F-COO
//!   headers alone contains every raw counter a real traced launch
//!   produces, including the simulated duration;
//! * **winner preservation** — certified dominance pruning never rules
//!   out the configuration an exhaustive launched sweep would pick: the
//!   true winner is neither structurally pruned nor envelope-eliminated,
//!   and its measured time lies inside its certificate.
//!
//! A deterministic case pins the headline acceptance number: on the
//! nell2 stand-in the MTTKRP winner is certified with at least half of
//! the full tuning grid ruled out with zero trial launches.

use analyzer::cost;
use fcoo::{spmttkrp, spttm, DeviceMatrix, Fcoo, FcooDevice, LaunchConfig, TensorOp};
use gpu_sim::GpuDevice;
use proptest::prelude::*;
use tensor_core::datasets::{self, DatasetKind};
use tensor_core::{DenseMatrix, SparseTensorCoo};

const RANK: usize = 8;

fn kind_from(selector: u8) -> DatasetKind {
    match selector % 3 {
        0 => DatasetKind::Nell2,
        1 => DatasetKind::Brainq,
        _ => DatasetKind::Uniform,
    }
}

fn op_from(selector: u8, mode: usize) -> TensorOp {
    if selector.is_multiple_of(2) {
        TensorOp::SpTtm { mode }
    } else {
        TensorOp::SpMttkrp { mode }
    }
}

fn factors(tensor: &SparseTensorCoo, seed: u64) -> Vec<DenseMatrix> {
    tensor
        .shape()
        .iter()
        .enumerate()
        .map(|(m, &n)| DenseMatrix::random(n, RANK, seed + m as u64))
        .collect()
}

/// Runs one traced launch of `op` at `(block_size, threadlen)` on a fresh
/// device and returns the certified envelope next to the drained counters.
fn certify_and_trace(
    tensor: &SparseTensorCoo,
    op: TensorOp,
    threadlen: usize,
    block_size: usize,
    factor_seed: u64,
) -> (cost::CounterEnvelope, Vec<String>) {
    let device = GpuDevice::titan_x();
    let config = device.config();
    let cfg = LaunchConfig::with_block_size(block_size);
    let fcoo = Fcoo::from_coo(tensor, op, threadlen);
    let envelope = cost::certify(config, &fcoo, RANK, &cfg);
    let on_device = FcooDevice::upload(device.memory(), &fcoo).expect("format upload");
    let hosts = factors(tensor, factor_seed);
    let uploaded: Vec<DeviceMatrix> = hosts
        .iter()
        .map(|f| DeviceMatrix::upload(device.memory(), f).expect("factor upload"))
        .collect();
    device.start_tracing();
    match op {
        TensorOp::SpTtm { mode } => {
            spttm(&device, &on_device, &uploaded[mode], &cfg).expect("traced spttm");
        }
        _ => {
            let refs: Vec<&DeviceMatrix> = uploaded.iter().collect();
            spmttkrp(&device, &on_device, &refs, &cfg).expect("traced spmttkrp");
        }
    }
    let counters = device.stop_tracing().counters();
    let violations = envelope.violations(&counters);
    (envelope, violations)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness: for any power-law tensor, kernel, mode and grid point,
    /// every counter of a real traced launch lies within the envelope
    /// certified from the headers alone.
    #[test]
    fn traced_counters_lie_within_their_certified_envelope(
        nnz in 150usize..900,
        dataset_seed in 0u64..1000,
        kind_selector in 0u8..3,
        op_selector in 0u8..2,
        mode in 0usize..3,
        threadlen_index in 0usize..3,
        block_index in 0usize..3,
        factor_seed in 0u64..1000,
    ) {
        let (tensor, _) = datasets::generate(kind_from(kind_selector), nnz, dataset_seed);
        prop_assume!(mode < tensor.order());
        let op = op_from(op_selector, mode);
        let threadlen = [8usize, 16, 32][threadlen_index];
        let block_size = [64usize, 128, 256][block_index];
        let (envelope, violations) =
            certify_and_trace(&tensor, op, threadlen, block_size, factor_seed);
        prop_assert!(
            violations.is_empty(),
            "{:?} B{block_size} T{threadlen}: {violations:?}",
            op
        );
        prop_assert!(envelope.launches >= 1);
    }

    /// Winner preservation: the configuration an exhaustive launched sweep
    /// picks is never pruned or envelope-eliminated by the certified
    /// tuner, and its measured time sits inside its certificate.
    #[test]
    fn certified_pruning_never_rules_out_the_exhaustive_winner(
        nnz in 150usize..700,
        dataset_seed in 0u64..1000,
        op_selector in 0u8..2,
        mode in 0usize..3,
    ) {
        const BLOCKS: [usize; 3] = [64, 128, 256];
        const THREADS: [usize; 3] = [8, 16, 32];
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, nnz, dataset_seed);
        prop_assume!(mode < tensor.order());
        let op = op_from(op_selector, mode);
        let exhaustive = fcoo::tune(
            &GpuDevice::titan_x(),
            &tensor,
            op,
            RANK,
            Some(&BLOCKS),
            Some(&THREADS),
        );
        let certified = analyzer::tune_certified(
            &GpuDevice::titan_x(),
            &tensor,
            op,
            RANK,
            Some(&BLOCKS),
            Some(&THREADS),
        );
        let best = exhaustive.best_pair();
        prop_assert!(
            !certified.pruned.contains(&best),
            "structural filter pruned the exhaustive winner {best:?}"
        );
        prop_assert!(
            !certified.eliminated.contains(&best),
            "envelope dominance eliminated the exhaustive winner {best:?}"
        );
        let envelope = certified
            .envelopes
            .iter()
            .find(|p| (p.block_size, p.threadlen) == best)
            .expect("the surviving winner carries a certificate");
        prop_assert!(
            envelope.time_us.contains(exhaustive.best.time_us),
            "winner time {} outside certified [{}, {}]",
            exhaustive.best.time_us,
            envelope.time_us.lo,
            envelope.time_us.hi
        );
        // The trial-launch accounting always partitions the grid.
        prop_assert_eq!(
            certified.launches + certified.launches_avoided(),
            certified.grid_points
        );
    }
}

/// Headline acceptance case: on the nell2 stand-in at golden-suite scale
/// the MTTKRP winner is certified while at least half of the paper's full
/// 6×6 tuning grid is ruled out with zero trial launches — and skipping
/// those launches does not change the winner.
#[test]
fn nell2_mttkrp_certifies_the_winner_with_majority_grid_elimination() {
    let (tensor, _) = datasets::generate(DatasetKind::Nell2, 1_500, 2017);
    let op = TensorOp::SpMttkrp { mode: 0 };
    let certified = analyzer::tune_certified(&GpuDevice::titan_x(), &tensor, op, RANK, None, None);
    assert!(
        certified.launches_avoided() * 2 >= certified.grid_points,
        "only {} of {} grid points were ruled out without a launch",
        certified.launches_avoided(),
        certified.grid_points
    );
    let exhaustive = fcoo::tune(&GpuDevice::titan_x(), &tensor, op, RANK, None, None);
    assert_eq!(
        certified.best_pair(),
        exhaustive.best_pair(),
        "certified winner disagrees with the exhaustive sweep"
    );
}
