//! Property tests for the tracing layer: launch traces reproduce the timing
//! model's wave fold bit-for-bit, wave timestamps tile the launch window,
//! and the captured event stream is identical run over run even though
//! blocks execute on a multi-threaded host pool.

use gpu_sim::{GpuDevice, LaunchTrace};
use proptest::prelude::*;

/// Runs one synthetic traced launch: `grid_x` blocks of `warps` warps, each
/// warp reading a strided span and spinning `compute` cycles.
fn traced_launch(
    grid_x: usize,
    warps: usize,
    stride: u64,
    compute: u64,
) -> (Vec<LaunchTrace>, f64) {
    let device = GpuDevice::titan_x();
    let len = 1usize << 16;
    let data = device
        .memory()
        .alloc_from_slice(&vec![0.0f32; len])
        .expect("allocation");
    device.start_tracing();
    let stats = device.launch((grid_x, 1), warps * 32, |ctx| {
        for w in 0..ctx.warps_per_block() {
            ctx.begin_warp();
            let base = (ctx.block_x() * ctx.warps_per_block() + w) as u64 * 32;
            let addrs: Vec<u64> = (0..32u64)
                .map(|lane| data.addr(((base + lane * stride) % len as u64) as usize))
                .collect();
            ctx.read_global(&addrs);
            ctx.compute(compute);
        }
    });
    (device.stop_tracing().launches, stats.time_us)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The trace's wave timeline reproduces `KernelStats` exactly: the first
    /// wave starts at the launch overhead, consecutive waves abut with no
    /// gap or overlap, and the last wave ends at `time_us` — all compared on
    /// `f64` bit patterns, not within a tolerance.
    #[test]
    fn wave_timestamps_tile_the_launch_exactly(
        grid_x in 1usize..200,
        warps in 1usize..9,
        stride in 1u64..40,
        compute in 0u64..2_000,
    ) {
        let (launches, time_us) = traced_launch(grid_x, warps, stride, compute);
        prop_assert_eq!(launches.len(), 1);
        let launch = &launches[0];
        prop_assert_eq!(launch.time_us.to_bits(), time_us.to_bits());
        prop_assert!(!launch.waves.is_empty());
        let overhead = GpuDevice::titan_x().config().launch_overhead_us;
        let mut cursor = overhead;
        let mut blocks_seen = 0;
        for wave in &launch.waves {
            prop_assert_eq!(wave.start_us.to_bits(), cursor.to_bits(),
                "wave does not abut its predecessor");
            prop_assert!(wave.dur_us >= 0.0);
            prop_assert_eq!(
                wave.dur_us.to_bits(),
                wave.compute_us.max(wave.memory_us).to_bits()
            );
            prop_assert_eq!(wave.first_block, blocks_seen);
            blocks_seen += wave.blocks;
            cursor += wave.dur_us;
        }
        prop_assert_eq!(cursor.to_bits(), time_us.to_bits(),
            "waves do not tile the launch window");
        prop_assert_eq!(blocks_seen, grid_x);
        prop_assert_eq!(launch.blocks.len(), grid_x);
    }

    /// Counters are conserved: active warps never exceed launched warps, and
    /// in this kernel (every warp begins) they are equal; per-event ideal
    /// transaction counts never exceed the issued count.
    #[test]
    fn counters_are_conserved(
        grid_x in 1usize..100,
        warps in 1usize..9,
        stride in 1u64..64,
    ) {
        let (launches, _) = traced_launch(grid_x, warps, stride, 10);
        let c = launches[0].counters();
        prop_assert_eq!(c.launched_warps, (grid_x * warps) as u64);
        prop_assert_eq!(c.active_warps, c.launched_warps);
        prop_assert!(c.ideal_transactions <= c.transactions);
        prop_assert!(c.occupancy() <= 1.0);
        for block in &launches[0].blocks {
            for event in &block.events {
                prop_assert!(event.ideal_transactions <= event.transactions);
            }
        }
    }

    /// The same launch traced twice yields an identical event stream, even
    /// though blocks are executed by a multi-threaded host pool whose
    /// interleaving differs between runs: collection is per-block and
    /// assembly is in block order, so host scheduling cannot leak in.
    #[test]
    fn event_stream_is_interleaving_independent(
        grid_x in 1usize..150,
        warps in 1usize..9,
        stride in 1u64..40,
        compute in 0u64..500,
    ) {
        let (a, _) = traced_launch(grid_x, warps, stride, compute);
        let (b, _) = traced_launch(grid_x, warps, stride, compute);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
