//! Property-based tests for the simulator's analytic components.

use gpu_sim::coalesce::{coalescing_efficiency, transactions};
use gpu_sim::scan::{segmented_reduce, segmented_scan_inclusive};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// `transactions` equals the number of distinct aligned sectors — checked
    /// against an independent hash-set implementation.
    #[test]
    fn transactions_counts_distinct_sectors(
        addrs in proptest::collection::vec(0u64..1_000_000, 0..200),
        shift in 4u32..8,
    ) {
        let segment = 1usize << shift;
        let expected: HashSet<u64> = addrs.iter().map(|a| a >> shift).collect();
        prop_assert_eq!(transactions(&addrs, segment), expected.len());
    }

    /// Transaction count is bounded by the address count and monotone under
    /// concatenation.
    #[test]
    fn transactions_bounds(
        a in proptest::collection::vec(0u64..100_000, 1..64),
        b in proptest::collection::vec(0u64..100_000, 1..64),
    ) {
        let ta = transactions(&a, 32);
        prop_assert!(ta <= a.len());
        prop_assert!(ta >= 1);
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        let tj = transactions(&joined, 32);
        prop_assert!(tj >= ta);
        prop_assert!(tj <= ta + transactions(&b, 32));
    }

    /// Efficiency is in (0, 1] for non-empty warps.
    #[test]
    fn efficiency_is_normalized(
        addrs in proptest::collection::vec(0u64..1_000_000, 1..64),
    ) {
        let e = coalescing_efficiency(&addrs, 32, 4);
        prop_assert!(e > 0.0 && e <= 1.0 + 1e-12, "efficiency {e}");
    }

    /// The last value of each scanned segment equals that segment's
    /// reduction, and reductions sum to the whole.
    #[test]
    fn scan_and_reduce_agree(
        values in proptest::collection::vec(-100.0f32..100.0, 1..100),
        flag_seed in proptest::collection::vec(proptest::bool::ANY, 1..100),
    ) {
        let n = values.len();
        let mut heads = vec![false; n];
        for (i, head) in heads.iter_mut().enumerate() {
            *head = flag_seed[i % flag_seed.len()];
        }
        heads[0] = true;
        let scan = segmented_scan_inclusive(&values, &heads);
        let reduce = segmented_reduce(&values, &heads);
        let mut seg_ends = Vec::new();
        for i in 0..n {
            if i + 1 == n || heads[i + 1] {
                seg_ends.push(scan[i]);
            }
        }
        prop_assert_eq!(seg_ends.len(), reduce.len());
        for (a, b) in seg_ends.iter().zip(&reduce) {
            prop_assert!((a - b).abs() <= 1e-3 * (1.0 + a.abs().max(b.abs())));
        }
        let total: f64 = values.iter().map(|&v| v as f64).sum();
        let total_reduce: f64 = reduce.iter().map(|&v| v as f64).sum();
        prop_assert!((total - total_reduce).abs() < 1e-2 * (1.0 + total.abs()));
    }

    /// Segment count equals the number of heads.
    #[test]
    fn reduce_length_is_head_count(
        values in proptest::collection::vec(0.0f32..1.0, 1..80),
        mask in proptest::collection::vec(proptest::bool::ANY, 1..80),
    ) {
        let n = values.len();
        let mut heads = vec![false; n];
        for (i, head) in heads.iter_mut().enumerate() {
            *head = mask[i % mask.len()];
        }
        heads[0] = true;
        let reduce = segmented_reduce(&values, &heads);
        let head_count = heads.iter().filter(|&&h| h).count();
        prop_assert_eq!(reduce.len(), head_count);
    }
}
