//! Property-based tests for the simulator's analytic components.

use gpu_sim::coalesce::{coalescing_efficiency, transactions};
use gpu_sim::scan::{segmented_reduce, segmented_scan_inclusive};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// `transactions` equals the number of distinct aligned sectors — checked
    /// against an independent hash-set implementation.
    #[test]
    fn transactions_counts_distinct_sectors(
        addrs in proptest::collection::vec(0u64..1_000_000, 0..200),
        shift in 4u32..8,
    ) {
        let segment = 1usize << shift;
        let expected: HashSet<u64> = addrs.iter().map(|a| a >> shift).collect();
        prop_assert_eq!(transactions(&addrs, segment), expected.len());
    }

    /// Transaction count is bounded by the address count and monotone under
    /// concatenation.
    #[test]
    fn transactions_bounds(
        a in proptest::collection::vec(0u64..100_000, 1..64),
        b in proptest::collection::vec(0u64..100_000, 1..64),
    ) {
        let ta = transactions(&a, 32);
        prop_assert!(ta <= a.len());
        prop_assert!(ta >= 1);
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        let tj = transactions(&joined, 32);
        prop_assert!(tj >= ta);
        prop_assert!(tj <= ta + transactions(&b, 32));
    }

    /// Efficiency is in (0, 1] for non-empty warps.
    #[test]
    fn efficiency_is_normalized(
        addrs in proptest::collection::vec(0u64..1_000_000, 1..64),
    ) {
        let e = coalescing_efficiency(&addrs, 32, 4);
        prop_assert!(e > 0.0 && e <= 1.0 + 1e-12, "efficiency {e}");
    }

    /// The last value of each scanned segment equals that segment's
    /// reduction, and reductions sum to the whole.
    #[test]
    fn scan_and_reduce_agree(
        values in proptest::collection::vec(-100.0f32..100.0, 1..100),
        flag_seed in proptest::collection::vec(proptest::bool::ANY, 1..100),
    ) {
        let n = values.len();
        let mut heads = vec![false; n];
        for (i, head) in heads.iter_mut().enumerate() {
            *head = flag_seed[i % flag_seed.len()];
        }
        heads[0] = true;
        let scan = segmented_scan_inclusive(&values, &heads);
        let reduce = segmented_reduce(&values, &heads);
        let mut seg_ends = Vec::new();
        for i in 0..n {
            if i + 1 == n || heads[i + 1] {
                seg_ends.push(scan[i]);
            }
        }
        prop_assert_eq!(seg_ends.len(), reduce.len());
        for (a, b) in seg_ends.iter().zip(&reduce) {
            prop_assert!((a - b).abs() <= 1e-3 * (1.0 + a.abs().max(b.abs())));
        }
        let total: f64 = values.iter().map(|&v| v as f64).sum();
        let total_reduce: f64 = reduce.iter().map(|&v| v as f64).sum();
        prop_assert!((total - total_reduce).abs() < 1e-2 * (1.0 + total.abs()));
    }

    /// Segment count equals the number of heads.
    #[test]
    fn reduce_length_is_head_count(
        values in proptest::collection::vec(0.0f32..1.0, 1..80),
        mask in proptest::collection::vec(proptest::bool::ANY, 1..80),
    ) {
        let n = values.len();
        let mut heads = vec![false; n];
        for (i, head) in heads.iter_mut().enumerate() {
            *head = mask[i % mask.len()];
        }
        heads[0] = true;
        let reduce = segmented_reduce(&values, &heads);
        let head_count = heads.iter().filter(|&&h| h).count();
        prop_assert_eq!(reduce.len(), head_count);
    }

    /// Duplicate addresses never cost extra transactions: replaying any
    /// subset of a warp's addresses on top of it leaves the count unchanged.
    #[test]
    fn duplicate_addresses_collapse(
        addrs in proptest::collection::vec(0u64..1_000_000, 1..64),
        picks in proptest::collection::vec(0usize..1_000_000, 0..64),
    ) {
        let base = transactions(&addrs, 32);
        let mut with_dups = addrs.clone();
        with_dups.extend(picks.iter().map(|&p| addrs[p % addrs.len()]));
        prop_assert_eq!(transactions(&with_dups, 32), base);
    }

    /// A strided warp costs exactly the analytic sector count, and once the
    /// stride reaches the segment size every lane pays its own transaction.
    #[test]
    fn strided_access_matches_closed_form(
        start in 0u64..10_000,
        stride in 1u64..512,
        lanes in 1usize..33,
        shift in 4u32..8,
    ) {
        let segment = 1u64 << shift;
        let addrs: Vec<u64> = (0..lanes as u64).map(|lane| start + lane * stride).collect();
        let got = transactions(&addrs, segment as usize);
        let first = start >> shift;
        let last = (start + (lanes as u64 - 1) * stride) >> shift;
        if stride >= segment {
            // Each lane lands in its own segment.
            prop_assert_eq!(got, lanes);
        } else {
            // Lanes sweep a contiguous span, touching every sector in it.
            prop_assert_eq!(got, (last - first + 1) as usize);
        }
    }

    /// Shifting addresses off segment alignment costs at most one extra
    /// transaction for a contiguous span, never fewer than aligned.
    #[test]
    fn unaligned_span_costs_at_most_one_extra(
        lanes in 1usize..33,
        offset in 1u64..32,
    ) {
        let aligned: Vec<u64> = (0..lanes as u64).map(|lane| 4096 + lane * 4).collect();
        let shifted: Vec<u64> = aligned.iter().map(|&a| a + offset).collect();
        let ta = transactions(&aligned, 32);
        let ts = transactions(&shifted, 32);
        prop_assert!(ts >= ta, "shift reduced transactions: {ts} < {ta}");
        prop_assert!(ts <= ta + 1, "shift cost more than one extra: {ts} > {ta} + 1");
    }

    /// Transaction count is monotone in address spread: widening the gaps
    /// between sorted lane addresses never lowers the count.
    #[test]
    fn transactions_monotone_in_spread(
        gaps in proptest::collection::vec(0u64..256, 1..64),
        scale in 2u64..8,
    ) {
        let tight: Vec<u64> = gaps
            .iter()
            .scan(0u64, |acc, &g| {
                *acc += g;
                Some(*acc)
            })
            .collect();
        let wide: Vec<u64> = tight.iter().map(|&a| a * scale).collect();
        prop_assert!(
            transactions(&wide, 32) >= transactions(&tight, 32),
            "scaling spread by {scale} lowered the transaction count"
        );
    }
}
