//! Read-only data cache model (`__ldg` / texture path).
//!
//! The paper routes all factor-matrix reads through the read-only data cache
//! and attributes the density-dependent performance of §V-A to its hit rate:
//! dense tensors (brainq) reuse the same factor rows across nearby non-zeros,
//! very sparse ones (nell1) scatter product-mode indices so lines are evicted
//! before reuse. A small set-associative LRU reproduces exactly that effect.

/// A set-associative LRU cache over device addresses.
///
/// One instance models the per-SM read-only cache for the lifetime of a
/// thread block (conservative: no reuse across blocks).
pub struct ReadOnlyCache {
    line_shift: u32,
    ways: usize,
    sets: usize,
    /// `tags[set * ways + way]` — cached line tag or `u64::MAX` for empty.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl ReadOnlyCache {
    /// Creates a cache of `capacity_bytes` with `line_bytes` lines and
    /// `ways`-way associativity. Sizes are rounded to powers of two.
    pub fn new(capacity_bytes: usize, line_bytes: usize, ways: usize) -> Self {
        let line_bytes = line_bytes.next_power_of_two().max(4);
        let ways = ways.max(1);
        let lines = (capacity_bytes / line_bytes).max(ways);
        let sets = (lines / ways).next_power_of_two().max(1);
        ReadOnlyCache {
            line_shift: line_bytes.trailing_zeros(),
            ways,
            sets,
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`; returns true on hit. Misses fill via LRU.
    ///
    /// The set index XOR-folds higher line bits, like real texture caches,
    /// so power-of-two strides (e.g. factor rows of width 64 floats) do not
    /// alias onto a fraction of the sets.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let bits = self.sets.trailing_zeros().max(1) as u64;
        let hashed = line ^ (line >> bits) ^ (line >> (2 * bits));
        let set = (hashed as usize) & (self.sets - 1);
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        if let Some(way) = slots.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        // Evict the least-recently-used way.
        let victim = (0..self.ways)
            .min_by_key(|&way| self.stamps[base + way])
            .expect("cache has at least one way");
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> usize {
        1usize << self.line_shift
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all accesses (0 if none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut cache = ReadOnlyCache::new(1024, 32, 4);
        assert!(!cache.access(100));
        assert!(cache.access(100));
        assert!(cache.access(104)); // same 32-byte line
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn capacity_eviction_under_streaming() {
        let mut cache = ReadOnlyCache::new(1024, 32, 4);
        // Stream far more lines than fit, then revisit the start: all misses.
        for i in 0..256u64 {
            cache.access(i * 32);
        }
        assert!(!cache.access(0));
    }

    #[test]
    fn lru_keeps_hot_line() {
        let mut cache = ReadOnlyCache::new(4 * 32, 32, 4); // 1 set, 4 ways
        cache.access(0); // line 0
        cache.access(32); // line 1
        cache.access(64); // line 2
        cache.access(96); // line 3
        cache.access(0); // refresh line 0
        cache.access(128); // evicts LRU = line 1
        assert!(cache.access(0), "hot line must survive");
        assert!(!cache.access(32), "cold line must be evicted");
    }

    #[test]
    fn hit_rate_reflects_reuse() {
        let mut reused = ReadOnlyCache::new(2048, 32, 8);
        for _ in 0..10 {
            for i in 0..8u64 {
                reused.access(i * 32);
            }
        }
        assert!(reused.hit_rate() > 0.85);
        let mut streaming = ReadOnlyCache::new(2048, 32, 8);
        for i in 0..1000u64 {
            streaming.access(i * 4096);
        }
        assert!(streaming.hit_rate() < 0.05);
    }

    #[test]
    fn empty_cache_reports_zero_hit_rate() {
        let cache = ReadOnlyCache::new(1024, 32, 4);
        assert_eq!(cache.hit_rate(), 0.0);
    }
}
