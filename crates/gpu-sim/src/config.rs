//! Device configuration and the Titan X (Maxwell) preset of the paper's
//! Table III.

/// Static description of a simulated CUDA-like device.
///
/// Functional execution is exact regardless of these numbers; they only feed
/// the analytic timing model in [`crate::stats`]. The defaults describe the
/// NVIDIA GeForce GTX Titan X the paper evaluates on.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Marketing name, for Table III output.
    pub name: String,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// CUDA cores per SM.
    pub cores_per_sm: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Warp schedulers per SM (concurrent warp instruction issue).
    pub warp_schedulers: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Shared memory per SM in bytes (bounds occupancy for kernels that
    /// declare shared usage via `launch_with_shared`).
    pub shared_mem_per_sm: usize,
    /// Global memory capacity in bytes.
    pub memory_capacity: usize,
    /// Global memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Size of one global-memory transaction (L2 sector) in bytes.
    pub transaction_bytes: usize,
    /// Device-wide L2 (last-level) cache in bytes. Reused working sets that
    /// fit here (e.g. factor matrices) are served without DRAM traffic.
    pub l2_bytes: usize,
    /// Latency charged for an L2 hit after a read-only cache miss.
    pub l2_latency_cycles: u64,
    /// Read-only data cache capacity per SM in bytes.
    pub readonly_cache_bytes: usize,
    /// Read-only data cache line size in bytes.
    pub readonly_line_bytes: usize,
    /// Read-only data cache associativity.
    pub readonly_ways: usize,
    /// Issue cost per global-memory transaction, in warp cycles.
    pub mem_issue_cycles: u64,
    /// Additional latency charged on a read-only cache miss, in warp cycles.
    pub rocache_miss_cycles: u64,
    /// Serialization cost per conflicting atomic within a warp, in cycles.
    pub atomic_cycles: u64,
    /// Cost of one shared-memory access, in cycles.
    pub shared_cycles: u64,
    /// Cost of one warp-shuffle instruction, in cycles.
    pub shuffle_cycles: u64,
    /// Cost of `__syncthreads()`, in cycles.
    pub syncthreads_cycles: u64,
    /// Cost of one adjacent-synchronization (inter-block domino) wait,
    /// in cycles.
    pub adjacent_sync_cycles: u64,
    /// Fixed kernel-launch overhead in microseconds.
    pub launch_overhead_us: f64,
}

impl DeviceConfig {
    /// The NVIDIA GeForce GTX Titan X (Maxwell GM200) of the paper:
    /// 24 SMs × 128 cores = 3072 cores at 1.0 GHz, 12 GB at 336 GB/s
    /// (Table III).
    pub fn titan_x() -> Self {
        DeviceConfig {
            name: "Simulated GeForce GTX Titan X (Maxwell)".to_string(),
            clock_ghz: 1.0,
            num_sms: 24,
            cores_per_sm: 128,
            warp_size: 32,
            warp_schedulers: 4,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 96 * 1024,
            memory_capacity: 12 * (1 << 30),
            mem_bandwidth_gbs: 336.0,
            transaction_bytes: 32,
            l2_bytes: 3 * (1 << 20),
            l2_latency_cycles: 8,
            readonly_cache_bytes: 24 * 1024,
            readonly_line_bytes: 32,
            readonly_ways: 8,
            mem_issue_cycles: 4,
            rocache_miss_cycles: 16,
            atomic_cycles: 24,
            shared_cycles: 1,
            shuffle_cycles: 1,
            syncthreads_cycles: 16,
            adjacent_sync_cycles: 180,
            launch_overhead_us: 4.0,
        }
    }

    /// An NVIDIA Tesla P100 (Pascal GP100) preset: 56 SMs × 64 cores at
    /// 1.3 GHz, 16 GB HBM2 at 732 GB/s, 4 MB L2 — used by the
    /// device-sensitivity experiment backing the paper's claim that the
    /// unified method "can be extended to ... other hardware platforms".
    pub fn pascal_p100() -> Self {
        DeviceConfig {
            name: "Simulated Tesla P100 (Pascal)".to_string(),
            clock_ghz: 1.3,
            num_sms: 56,
            cores_per_sm: 64,
            warp_size: 32,
            warp_schedulers: 2,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 64 * 1024,
            memory_capacity: 16 * (1 << 30),
            mem_bandwidth_gbs: 732.0,
            transaction_bytes: 32,
            l2_bytes: 4 * (1 << 20),
            l2_latency_cycles: 8,
            readonly_cache_bytes: 24 * 1024,
            readonly_line_bytes: 32,
            readonly_ways: 8,
            mem_issue_cycles: 4,
            rocache_miss_cycles: 16,
            atomic_cycles: 16,
            shared_cycles: 1,
            shuffle_cycles: 1,
            syncthreads_cycles: 16,
            adjacent_sync_cycles: 160,
            launch_overhead_us: 4.0,
        }
    }

    /// A Titan X with its memory capacity scaled by `factor`.
    ///
    /// Used by the reproduction harness so that out-of-memory behaviour
    /// (ParTI's SpMTTKRP intermediates on nell1/delicious, §V-A/D) occurs at
    /// the same dataset-to-device ratio as in the paper even though the
    /// synthetic datasets are smaller.
    pub fn titan_x_scaled_memory(factor: f64) -> Self {
        let mut config = Self::titan_x();
        config.memory_capacity = ((config.memory_capacity as f64 * factor) as usize).max(1 << 16);
        config.name = format!("{} [memory x{factor:.2e}]", config.name);
        config
    }

    /// Total CUDA cores.
    pub fn total_cores(&self) -> usize {
        self.num_sms * self.cores_per_sm
    }

    /// How many blocks of `block_threads` threads can be resident at once on
    /// the whole device (the size of one scheduling wave).
    pub fn concurrent_blocks(&self, block_threads: usize) -> usize {
        let block_threads = block_threads.max(1);
        let per_sm = (self.max_threads_per_sm / block_threads).clamp(1, self.max_blocks_per_sm);
        self.num_sms * per_sm
    }

    /// Cycles per microsecond at the configured clock.
    pub fn cycles_per_us(&self) -> f64 {
        self.clock_ghz * 1e3
    }

    /// Formats the Table III rows for this device.
    pub fn table_rows(&self) -> String {
        format!(
            "{}\n  SMs: {}  cores: {}  clock: {:.1} GHz\n  memory: {:.1} GB @ {:.0} GB/s\n  warp: {}  max threads/block: {}",
            self.name,
            self.num_sms,
            self.total_cores(),
            self.clock_ghz,
            self.memory_capacity as f64 / (1u64 << 30) as f64,
            self.mem_bandwidth_gbs,
            self.warp_size,
            self.max_threads_per_block,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_x_matches_table_iii() {
        let d = DeviceConfig::titan_x();
        assert_eq!(d.total_cores(), 3072);
        assert_eq!(d.memory_capacity, 12 * (1 << 30));
        assert!((d.mem_bandwidth_gbs - 336.0).abs() < 1e-9);
        assert!((d.clock_ghz - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_blocks_respects_thread_and_block_caps() {
        let d = DeviceConfig::titan_x();
        // 1024-thread blocks: 2 per SM.
        assert_eq!(d.concurrent_blocks(1024), 24 * 2);
        // 32-thread blocks: thread cap allows 64, block cap clamps to 32.
        assert_eq!(d.concurrent_blocks(32), 24 * 32);
        // Degenerate zero-thread request clamps to 1 thread.
        assert_eq!(d.concurrent_blocks(0), d.concurrent_blocks(1));
    }

    #[test]
    fn p100_preset_is_faster_hardware() {
        let titan = DeviceConfig::titan_x();
        let p100 = DeviceConfig::pascal_p100();
        assert!(p100.mem_bandwidth_gbs > titan.mem_bandwidth_gbs);
        assert!(p100.total_cores() > titan.total_cores());
        assert!(p100.memory_capacity > titan.memory_capacity);
    }

    #[test]
    fn scaled_memory_applies_factor() {
        let d = DeviceConfig::titan_x_scaled_memory(0.01);
        assert_eq!(
            d.memory_capacity,
            (12.0 * (1u64 << 30) as f64 * 0.01) as usize
        );
    }

    #[test]
    fn table_rows_mention_cores_and_bandwidth() {
        let rows = DeviceConfig::titan_x().table_rows();
        assert!(rows.contains("3072"));
        assert!(rows.contains("336"));
    }
}
