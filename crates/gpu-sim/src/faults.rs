//! Seeded, deterministic fault injection for the simulated device.
//!
//! Real GPU serving stacks treat transient hardware faults as routine: ECC
//! single-bit events are corrected and logged, double-bit events poison data
//! until the page is retired, kernel launches fail asynchronously, allocations
//! fail under pressure, streams hang, and (rarely) an acknowledged atomic
//! transaction never lands. This module injects all five behaviours into the
//! simulator behind hooks in [`crate::memory`], [`crate::exec`] and
//! [`crate::streams`], with three hard guarantees:
//!
//! 1. **Zero-cost when disabled.** Every hook is gated on
//!    [`faults_active`], a single relaxed atomic load — the same pattern the
//!    sanitizer's recording mode uses. With no injector installed anywhere the
//!    hot path is bit-exact with the un-instrumented simulator.
//! 2. **Deterministic.** Every fault decision is a pure hash of
//!    `(seed, fault kind, deterministic counter or address/value bits)` —
//!    never a shared RNG consumed at access time — so the same workload with
//!    the same seed produces the same faults regardless of how the host
//!    thread pool interleaves blocks. Latched events are sorted before they
//!    are exposed.
//! 3. **Detectable.** Every injected fault latches a [`FaultEvent`] the host
//!    can observe (the analog of ECC/Xid error reporting), so a serving layer
//!    polling [`DeviceMemory::scrub_faults`] after each attempt never serves a
//!    corrupted result.
//!
//! Uncorrectable (double-bit) flips corrupt reads by XOR-ing a two-bit mask
//! into the stored value until the memory is scrubbed; flips target `f32`
//! value buffers allocated while injection is enabled (index/metadata words
//! are modeled as parity-protected). Detection of ECC events is delayed by
//! [`FaultConfig::detection_latency`] launches — [`DeviceMemory::drain_faults`]
//! only reports matured events, while [`DeviceMemory::scrub_faults`] forces
//! full detection *and* repairs armed flips, which is the integrity barrier a
//! retry loop needs.

use crate::memory::{DeviceMemory, DeviceValue};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Number of devices with an installed fault injector. Mirrors the recording
/// gate in [`crate::record`]: when zero, every fault hook is one relaxed load.
static FAULTY_DEVICES: AtomicUsize = AtomicUsize::new(0);

/// True when any device has fault injection installed (the cheap global gate
/// the memory/exec hooks check before touching per-device state).
#[inline]
pub(crate) fn faults_active() -> bool {
    FAULTY_DEVICES.load(Ordering::Relaxed) > 0
}

/// Configuration of the fault injector: a seed plus per-kind rates.
///
/// All rates are probabilities in `[0, 1]`. Launch-scoped rates
/// (`ecc_single_rate`, `ecc_double_rate`, `launch_failure_rate`,
/// `stall_rate`, `dropped_atomic_rate`) are evaluated once per kernel launch;
/// `alloc_failure_rate` is evaluated once per allocation. In a launch where
/// dropped atomics are armed, roughly one in [`FaultConfig::ATOMIC_SELECT`]
/// individual atomics is lost.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for every fault decision; same seed ⇒ same faults.
    pub seed: u64,
    /// Per-launch probability of a corrected single-bit ECC event.
    pub ecc_single_rate: f64,
    /// Per-launch probability of an uncorrectable double-bit flip.
    pub ecc_double_rate: f64,
    /// Launches before an ECC event matures for [`DeviceMemory::drain_faults`]
    /// (the scrubber's detection latency). [`DeviceMemory::scrub_faults`]
    /// ignores this and forces detection.
    pub detection_latency: u64,
    /// Per-launch probability that the launch fails (kernel never runs).
    pub launch_failure_rate: f64,
    /// Per-allocation probability of a spurious out-of-memory failure.
    pub alloc_failure_rate: f64,
    /// Per-launch probability of a stream stall (hung kernel).
    pub stall_rate: f64,
    /// Dead time a stalled launch spends hung, in microseconds.
    pub stall_us: f64,
    /// Per-launch probability that the launch loses atomics.
    pub dropped_atomic_rate: f64,
}

impl FaultConfig {
    /// In an atomic-drop-armed launch, one in this many atomics is lost.
    pub const ATOMIC_SELECT: u64 = 1024;

    /// A quiet injector: installed but with every rate at zero. Useful to
    /// verify that the instrumented path is bit-exact with the plain one.
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            ecc_single_rate: 0.0,
            ecc_double_rate: 0.0,
            detection_latency: 0,
            launch_failure_rate: 0.0,
            alloc_failure_rate: 0.0,
            stall_rate: 0.0,
            stall_us: 0.0,
            dropped_atomic_rate: 0.0,
        }
    }

    /// All five fault kinds enabled at the same `rate`, with a short ECC
    /// detection latency — the chaos-harness schedule.
    pub fn chaos(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            ecc_single_rate: rate,
            ecc_double_rate: rate,
            detection_latency: 2,
            launch_failure_rate: rate,
            alloc_failure_rate: rate,
            stall_rate: rate,
            stall_us: 5_000.0,
            dropped_atomic_rate: rate,
        }
    }

    /// The same schedule re-seeded for one device of a multi-device fleet, so
    /// devices fault independently but each deterministically.
    pub fn for_device(&self, device_index: usize) -> Self {
        FaultConfig {
            seed: mix(self.seed ^ (device_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..self.clone()
        }
    }
}

/// One injected fault, latched for the host to observe.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Single-bit ECC event: corrected by hardware, data unaffected.
    EccSingle {
        /// Launch during which the flip occurred.
        launch: u64,
        /// Device address of the affected word.
        addr: u64,
    },
    /// Double-bit ECC event: uncorrectable; reads of `addr` return corrupted
    /// bits until the memory is scrubbed.
    EccDouble {
        /// Launch during which the flip occurred.
        launch: u64,
        /// Device address of the poisoned word.
        addr: u64,
    },
    /// The kernel launch was dropped: the kernel never ran, so output buffers
    /// keep their pre-launch contents.
    LaunchFailure {
        /// The failed launch.
        launch: u64,
    },
    /// An allocation spuriously failed (reported as `OutOfMemory` to the
    /// caller; this event lets the host tell injected failures from genuine
    /// capacity exhaustion).
    AllocFailure {
        /// Allocation counter value at the failure.
        alloc: u64,
        /// Bytes the failed allocation requested.
        requested: usize,
    },
    /// The launch hung for `stall_us` before completing (watchdog territory).
    StreamStall {
        /// The stalled launch.
        launch: u64,
        /// Dead time in microseconds.
        stall_us: f64,
    },
    /// An acknowledged `atomicAdd` transaction was lost.
    DroppedAtomic {
        /// Launch during which the atomic was dropped.
        launch: u64,
        /// Device address the atomic targeted.
        addr: u64,
    },
}

impl FaultEvent {
    /// True when the fault can have corrupted kernel output: the result of
    /// the affected attempt must be discarded.
    pub fn is_corrupting(&self) -> bool {
        matches!(
            self,
            FaultEvent::EccDouble { .. }
                | FaultEvent::LaunchFailure { .. }
                | FaultEvent::DroppedAtomic { .. }
        )
    }

    /// Deterministic ordering key: events latched from parallel blocks are
    /// sorted by this before being exposed.
    fn sort_key(&self) -> (u64, u8, u64) {
        match *self {
            FaultEvent::EccSingle { launch, addr } => (launch, 0, addr),
            FaultEvent::EccDouble { launch, addr } => (launch, 1, addr),
            FaultEvent::LaunchFailure { launch } => (launch, 2, 0),
            FaultEvent::AllocFailure { alloc, requested } => (alloc, 3, requested as u64),
            FaultEvent::StreamStall { launch, .. } => (launch, 4, 0),
            FaultEvent::DroppedAtomic { launch, addr } => (launch, 5, addr),
        }
    }

    /// Short human-readable kind name (for reports and logs).
    pub fn kind_name(&self) -> &'static str {
        match self {
            FaultEvent::EccSingle { .. } => "ecc-single",
            FaultEvent::EccDouble { .. } => "ecc-double",
            FaultEvent::LaunchFailure { .. } => "launch-failure",
            FaultEvent::AllocFailure { .. } => "alloc-failure",
            FaultEvent::StreamStall { .. } => "stream-stall",
            FaultEvent::DroppedAtomic { .. } => "dropped-atomic",
        }
    }
}

/// An armed uncorrectable flip: reads of `addr` XOR `mask` into the value's
/// bit pattern until scrubbed.
#[derive(Debug, Clone)]
struct ActiveFlip {
    addr: u64,
    mask: u32,
}

/// Injector bookkeeping, held under one mutex per device memory.
#[derive(Debug)]
pub(crate) struct FaultState {
    config: FaultConfig,
    /// Launches begun on this device since installation.
    launches: u64,
    /// Allocations attempted since installation.
    allocs: u64,
    /// `f32` value regions eligible for bit flips (`base → bytes`).
    value_regions: BTreeMap<u64, usize>,
    /// Armed uncorrectable flips.
    flips: Vec<ActiveFlip>,
    /// Latched events: `(detect_at_launch, event)`.
    pending: Vec<(u64, FaultEvent)>,
}

/// Per-memory fault slot: the state under a mutex plus lock-free fast flags
/// consulted on the access hot paths.
#[derive(Debug)]
pub(crate) struct FaultCell {
    /// `Some` while an injector is installed on this memory.
    pub(crate) state: Mutex<Option<FaultState>>,
    /// Number of armed flips (read path skips the lock when zero).
    pub(crate) flips_armed: AtomicUsize,
    /// True while the current launch drops atomics.
    pub(crate) atomics_armed: AtomicBool,
}

impl FaultCell {
    pub(crate) fn new() -> Self {
        FaultCell {
            state: Mutex::new(None),
            flips_armed: AtomicUsize::new(0),
            atomics_armed: AtomicBool::new(false),
        }
    }
}

/// SplitMix64 finalizer: the bijective mixer every fault decision hashes
/// through.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pure decision: does the event tagged `tag` fire at counter `n` (plus an
/// optional extra discriminator) under `rate`?
fn decide(seed: u64, tag: u64, n: u64, extra: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    let h = mix(seed ^ mix(tag ^ mix(n ^ mix(extra))));
    ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate
}

const TAG_ECC_SINGLE: u64 = 0x5EC0;
const TAG_ECC_DOUBLE: u64 = 0xD0B1;
const TAG_LAUNCH: u64 = 0x1A0C;
const TAG_ALLOC: u64 = 0xA110;
const TAG_STALL: u64 = 0x57A1;
const TAG_ATOMIC_ARM: u64 = 0xA70A;
const TAG_ATOMIC_PICK: u64 = 0xA70B;
const TAG_TARGET: u64 = 0x7A26;

impl FaultState {
    /// Deterministically picks a word address (and flip mask) inside the
    /// registered value regions. Returns `None` when no region exists.
    fn pick_flip_target(&self, launch: u64, tag: u64) -> Option<(u64, u32)> {
        if self.value_regions.is_empty() {
            return None;
        }
        let h = mix(self.config.seed ^ mix(TAG_TARGET ^ mix(tag ^ mix(launch))));
        let region = (h % self.value_regions.len() as u64) as usize;
        let (&base, &bytes) = self.value_regions.iter().nth(region)?;
        let words = (bytes / 4).max(1) as u64;
        let word = mix(h) % words;
        let bit_a = (mix(h ^ 0x1) % 32) as u32;
        let mut bit_b = (mix(h ^ 0x2) % 32) as u32;
        if bit_b == bit_a {
            bit_b = (bit_a + 1) % 32;
        }
        Some((base + word * 4, (1 << bit_a) | (1 << bit_b)))
    }
}

impl DeviceMemory {
    /// Installs (or replaces) a fault injector on this memory. Counters,
    /// armed flips and latched events are reset. Flips only target `f32`
    /// buffers allocated *after* installation, so install the injector before
    /// the workload allocates.
    pub fn install_faults(&self, config: FaultConfig) {
        let cell = self.fault_cell();
        let mut guard = cell.state.lock();
        if guard.is_none() {
            FAULTY_DEVICES.fetch_add(1, Ordering::Relaxed);
        }
        cell.flips_armed.store(0, Ordering::Relaxed);
        cell.atomics_armed.store(false, Ordering::Relaxed);
        *guard = Some(FaultState {
            config,
            launches: 0,
            allocs: 0,
            value_regions: BTreeMap::new(),
            flips: Vec::new(),
            pending: Vec::new(),
        });
    }

    /// Removes the fault injector; all fault bookkeeping is discarded and the
    /// hot paths return to the zero-cost disabled gate.
    pub fn clear_faults(&self) {
        let cell = self.fault_cell();
        let mut guard = cell.state.lock();
        if guard.take().is_some() {
            FAULTY_DEVICES.fetch_sub(1, Ordering::Relaxed);
        }
        cell.flips_armed.store(0, Ordering::Relaxed);
        cell.atomics_armed.store(false, Ordering::Relaxed);
    }

    /// True when a fault injector is installed on this memory.
    pub fn faults_installed(&self) -> bool {
        self.fault_cell().state.lock().is_some()
    }

    /// Reports *matured* latched events (those whose detection latency has
    /// elapsed) in deterministic order and removes them — the analog of
    /// polling the driver's ECC/Xid error log. Immature events stay latched.
    pub fn drain_faults(&self) -> Vec<FaultEvent> {
        let cell = self.fault_cell();
        let mut guard = cell.state.lock();
        let Some(state) = guard.as_mut() else {
            return Vec::new();
        };
        let now = state.launches;
        let mut matured = Vec::new();
        state.pending.retain(|(detect_at, event)| {
            if *detect_at <= now {
                matured.push(event.clone());
                false
            } else {
                true
            }
        });
        matured.sort_by_key(FaultEvent::sort_key);
        matured
    }

    /// Forces full detection: returns *all* latched events (matured or not)
    /// in deterministic order, clears them, and repairs armed flips so
    /// subsequent reads are clean. This is the integrity barrier a retry loop
    /// runs after every attempt: an empty scrub proves the attempt ran
    /// fault-free.
    pub fn scrub_faults(&self) -> Vec<FaultEvent> {
        let cell = self.fault_cell();
        let mut guard = cell.state.lock();
        let Some(state) = guard.as_mut() else {
            return Vec::new();
        };
        state.flips.clear();
        cell.flips_armed.store(0, Ordering::Relaxed);
        let mut events: Vec<FaultEvent> = state.pending.drain(..).map(|(_, e)| e).collect();
        events.sort_by_key(FaultEvent::sort_key);
        events
    }

    /// Hook: called at the top of every kernel launch while injection is
    /// active. Advances the launch counter, arms this launch's faults, and
    /// returns `true` when the launch itself fails (the kernel must not run).
    pub(crate) fn fault_launch_begin(&self) -> bool {
        let cell = self.fault_cell();
        let mut guard = cell.state.lock();
        let Some(state) = guard.as_mut() else {
            return false;
        };
        let launch = state.launches;
        state.launches += 1;
        let seed = state.config.seed;
        let latency = state.config.detection_latency;
        if decide(
            seed,
            TAG_ECC_SINGLE,
            launch,
            0,
            state.config.ecc_single_rate,
        ) {
            if let Some((addr, _)) = state.pick_flip_target(launch, TAG_ECC_SINGLE) {
                state
                    .pending
                    .push((launch + latency, FaultEvent::EccSingle { launch, addr }));
            }
        }
        if decide(
            seed,
            TAG_ECC_DOUBLE,
            launch,
            0,
            state.config.ecc_double_rate,
        ) {
            if let Some((addr, mask)) = state.pick_flip_target(launch, TAG_ECC_DOUBLE) {
                state.flips.push(ActiveFlip { addr, mask });
                cell.flips_armed.store(state.flips.len(), Ordering::Relaxed);
                state
                    .pending
                    .push((launch + latency, FaultEvent::EccDouble { launch, addr }));
            }
        }
        if decide(seed, TAG_STALL, launch, 0, state.config.stall_rate) {
            let stall_us = state.config.stall_us;
            state
                .pending
                .push((launch, FaultEvent::StreamStall { launch, stall_us }));
        }
        let atomics = decide(
            seed,
            TAG_ATOMIC_ARM,
            launch,
            0,
            state.config.dropped_atomic_rate,
        );
        cell.atomics_armed.store(atomics, Ordering::Relaxed);
        if decide(
            seed,
            TAG_LAUNCH,
            launch,
            0,
            state.config.launch_failure_rate,
        ) {
            state
                .pending
                .push((launch, FaultEvent::LaunchFailure { launch }));
            return true;
        }
        false
    }

    /// Hook: per-allocation failure decision. Latches an
    /// [`FaultEvent::AllocFailure`] and returns `true` when the allocation
    /// must spuriously fail.
    pub(crate) fn fault_alloc(&self, requested: usize) -> bool {
        let cell = self.fault_cell();
        let mut guard = cell.state.lock();
        let Some(state) = guard.as_mut() else {
            return false;
        };
        let alloc = state.allocs;
        state.allocs += 1;
        if decide(
            state.config.seed,
            TAG_ALLOC,
            alloc,
            requested as u64,
            state.config.alloc_failure_rate,
        ) {
            let detect_at = state.launches;
            state
                .pending
                .push((detect_at, FaultEvent::AllocFailure { alloc, requested }));
            return true;
        }
        false
    }

    /// Hook: registers a freshly allocated `f32` region as a flip target.
    pub(crate) fn fault_register_region(&self, base: u64, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let cell = self.fault_cell();
        if let Some(state) = cell.state.lock().as_mut() {
            state.value_regions.insert(base, bytes);
        }
    }
}

/// Hook (memory drop path): a device memory destroyed with an injector still
/// installed must release its claim on the global gate.
pub(crate) fn device_uninstalled() {
    FAULTY_DEVICES.fetch_sub(1, Ordering::Relaxed);
}

/// Hook (buffer drop path): forgets a freed region and disarms flips that
/// targeted it — the backing memory is gone; latched events stay observed.
pub(crate) fn forget_region(cell: &FaultCell, base: u64, bytes: usize) {
    if bytes == 0 {
        return;
    }
    if let Some(state) = cell.state.lock().as_mut() {
        if state.value_regions.remove(&base).is_some() {
            let end = base + bytes as u64;
            state.flips.retain(|f| f.addr < base || f.addr >= end);
            cell.flips_armed.store(state.flips.len(), Ordering::Relaxed);
        }
    }
}

/// Hook (read path): applies any armed flip on the word at `addr` to a
/// value's bit pattern. Only reached when `flips_armed > 0`.
pub(crate) fn corrupt_value<T: DeviceValue>(cell: &FaultCell, addr: u64, value: T) -> T {
    let guard = cell.state.lock();
    let Some(state) = guard.as_ref() else {
        return value;
    };
    let mut out = value;
    for flip in &state.flips {
        if flip.addr == addr {
            out = out.xor_bits(flip.mask);
        }
    }
    out
}

/// Hook (atomic path): in an atomic-armed launch, decides whether this
/// particular atomic transaction is lost. Deterministic in
/// `(launch, addr, value)`, so the decision is independent of host-thread
/// interleaving. The narration/record event has already fired when this runs:
/// the model is a transaction the hardware acknowledged but never landed.
pub(crate) fn drop_atomic(cell: &FaultCell, addr: u64, value_bits: u32) -> bool {
    let mut guard = cell.state.lock();
    let Some(state) = guard.as_mut() else {
        return false;
    };
    let launch = state.launches.wrapping_sub(1);
    let h =
        mix(state.config.seed ^ mix(TAG_ATOMIC_PICK ^ mix(launch ^ mix(addr ^ value_bits as u64))));
    if h.is_multiple_of(FaultConfig::ATOMIC_SELECT) {
        state
            .pending
            .push((launch, FaultEvent::DroppedAtomic { launch, addr }));
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::GpuDevice;

    fn forced(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            ..FaultConfig::quiet(seed)
        }
    }

    #[test]
    fn quiet_injector_is_bit_exact_with_disabled_path() {
        let run = |inject: bool| {
            let device = GpuDevice::titan_x();
            if inject {
                device.memory().install_faults(FaultConfig::quiet(7));
            }
            let data = device.memory().alloc_from_slice(&[1.5f32; 256]).unwrap();
            let out = device.memory().alloc_zeroed::<f32>(8).unwrap();
            let stats = device.launch((8, 1), 32, |ctx| {
                ctx.begin_warp();
                let x = ctx.block_x();
                let lanes: Vec<(usize, f32)> = (0..32).map(|l| (x, data.get(x * 32 + l))).collect();
                ctx.atomic_add_f32(&out, &lanes);
            });
            (out.to_vec(), stats.time_us.to_bits())
        };
        let plain = run(false);
        let quiet = run(true);
        assert_eq!(plain.0, quiet.0);
        assert_eq!(plain.1, quiet.1);
    }

    #[test]
    fn double_bit_flip_corrupts_reads_until_scrubbed() {
        let device = GpuDevice::titan_x();
        let mut config = forced(42);
        config.ecc_double_rate = 1.0;
        device.memory().install_faults(config);
        let data = device.memory().alloc_from_slice(&[2.0f32; 64]).unwrap();
        device.launch((1, 1), 32, |ctx| ctx.begin_warp());
        let corrupted = data.to_vec();
        assert!(
            corrupted.iter().any(|v| v.to_bits() != 2.0f32.to_bits()),
            "no element was corrupted"
        );
        let events = device.memory().scrub_faults();
        assert!(events
            .iter()
            .any(|e| matches!(e, FaultEvent::EccDouble { .. })));
        assert!(
            data.to_vec().iter().all(|&v| v == 2.0),
            "scrub did not repair"
        );
    }

    #[test]
    fn single_bit_events_are_corrected_but_latched() {
        let device = GpuDevice::titan_x();
        let mut config = forced(9);
        config.ecc_single_rate = 1.0;
        device.memory().install_faults(config);
        let data = device.memory().alloc_from_slice(&[3.0f32; 16]).unwrap();
        device.launch((1, 1), 32, |ctx| ctx.begin_warp());
        assert!(
            data.to_vec().iter().all(|&v| v == 3.0),
            "single-bit is corrected"
        );
        let events = device.memory().scrub_faults();
        assert!(events
            .iter()
            .any(|e| matches!(e, FaultEvent::EccSingle { .. })));
        assert!(!events[0].is_corrupting());
    }

    #[test]
    fn launch_failure_skips_the_kernel() {
        let device = GpuDevice::titan_x();
        let mut config = forced(5);
        config.launch_failure_rate = 1.0;
        device.memory().install_faults(config);
        let out = device.memory().alloc_zeroed::<f32>(4).unwrap();
        let stats = device.launch((4, 1), 32, |_ctx| {
            // SAFETY: never runs — the launch is injected to fail.
            unsafe { out.write(0, 1.0) };
        });
        assert_eq!(stats.blocks, 0);
        assert_eq!(out.to_vec(), vec![0.0; 4]);
        let events = device.memory().scrub_faults();
        assert!(matches!(events[0], FaultEvent::LaunchFailure { launch: 0 }));
        assert!(events[0].is_corrupting());
    }

    #[test]
    fn alloc_failures_surface_as_oom_plus_event() {
        let device = GpuDevice::titan_x();
        let mut config = forced(11);
        config.alloc_failure_rate = 1.0;
        device.memory().install_faults(config);
        let err = device.memory().alloc_zeroed::<f32>(128).unwrap_err();
        assert_eq!(err.requested, 512);
        let events = device.memory().scrub_faults();
        assert!(matches!(
            events[0],
            FaultEvent::AllocFailure {
                alloc: 0,
                requested: 512
            }
        ));
        assert_eq!(
            device.memory().live_bytes(),
            0,
            "failed alloc left bytes live"
        );
    }

    #[test]
    fn dropped_atomics_lose_writes_and_latch() {
        let device = GpuDevice::titan_x();
        let mut config = forced(3);
        config.dropped_atomic_rate = 1.0;
        device.memory().install_faults(config);
        let out = device.memory().alloc_zeroed::<f32>(1).unwrap();
        // Enough distinct (addr, value) atomics that ~1/1024 selection drops
        // at least one with overwhelming probability.
        device.launch((64, 1), 32, |ctx| {
            ctx.begin_warp();
            let lanes: Vec<(usize, f32)> = (0..32)
                .map(|l| (0usize, (ctx.block_x() * 32 + l) as f32 + 0.25))
                .collect();
            ctx.atomic_add_f32(&out, &lanes);
        });
        let expected: f32 = (0..2048).map(|i| i as f32 + 0.25).sum();
        assert!(out.get(0) < expected, "no atomic was dropped");
        let events = device.memory().scrub_faults();
        assert!(events
            .iter()
            .any(|e| matches!(e, FaultEvent::DroppedAtomic { .. })));
    }

    #[test]
    fn stream_stalls_latch_their_dead_time() {
        let device = GpuDevice::titan_x();
        let mut config = forced(21);
        config.stall_rate = 1.0;
        config.stall_us = 777.0;
        device.memory().install_faults(config);
        device.launch((1, 1), 32, |ctx| ctx.begin_warp());
        let events = device.memory().drain_faults();
        assert!(events
            .iter()
            .any(|e| matches!(e, FaultEvent::StreamStall { stall_us, .. } if *stall_us == 777.0)));
    }

    #[test]
    fn detection_latency_delays_drain_but_not_scrub() {
        let device = GpuDevice::titan_x();
        let mut config = forced(17);
        config.ecc_double_rate = 1.0;
        config.detection_latency = 3;
        device.memory().install_faults(config);
        let _data = device.memory().alloc_from_slice(&[1.0f32; 8]).unwrap();
        device.launch((1, 1), 32, |ctx| ctx.begin_warp());
        assert!(
            device.memory().drain_faults().is_empty(),
            "event matured too early"
        );
        for _ in 0..3 {
            device.launch((1, 1), 32, |ctx| ctx.begin_warp());
        }
        // Three more launches elapsed (each may latch its own flip); the
        // first launch's event has now matured.
        let drained = device.memory().drain_faults();
        assert!(drained
            .iter()
            .any(|e| matches!(e, FaultEvent::EccDouble { launch: 0, .. })));
        assert!(!device.memory().scrub_faults().is_empty() || !drained.is_empty());
    }

    #[test]
    fn same_seed_same_faults_across_runs() {
        let run = || {
            let device = GpuDevice::titan_x();
            // Allocate before installing so these allocations cannot fail;
            // the scratch allocations inside the loop absorb the injected
            // alloc failures and register flip-target regions.
            let data = device.memory().alloc_from_slice(&[1.0f32; 512]).unwrap();
            let out = device.memory().alloc_zeroed::<f32>(4).unwrap();
            device
                .memory()
                .install_faults(FaultConfig::chaos(2017, 0.3));
            for _ in 0..20 {
                let _ = device.memory().alloc_zeroed::<f32>(64);
                device.launch((4, 1), 32, |ctx| {
                    ctx.begin_warp();
                    let lanes: Vec<(usize, f32)> = (0..32).map(|l| (l % 4, data.get(l))).collect();
                    ctx.atomic_add_f32(&out, &lanes);
                });
            }
            device.memory().scrub_faults()
        };
        let a = run();
        let b = run();
        assert!(!a.is_empty(), "chaos schedule injected nothing");
        assert_eq!(a, b, "fault schedule is not deterministic");
    }

    #[test]
    fn clear_faults_restores_the_disabled_path() {
        let device = GpuDevice::titan_x();
        let mut config = forced(1);
        config.launch_failure_rate = 1.0;
        device.memory().install_faults(config);
        assert!(device.memory().faults_installed());
        device.memory().clear_faults();
        assert!(!device.memory().faults_installed());
        let out = device.memory().alloc_zeroed::<f32>(1).unwrap();
        let stats = device.launch((1, 1), 32, |ctx| {
            ctx.begin_warp();
            // SAFETY: single block writes a single element.
            unsafe { out.write(0, 4.0) };
        });
        assert_eq!(stats.blocks, 1);
        assert_eq!(out.get(0), 4.0);
        assert!(device.memory().scrub_faults().is_empty());
    }
}
