//! Memory-access recording for sanitizer passes (compute-sanitizer style).
//!
//! When a [`GpuDevice`](crate::GpuDevice) is put into recording mode
//! ([`GpuDevice::start_recording`](crate::GpuDevice::start_recording)), every
//! launch captures two parallel streams of evidence per thread block:
//!
//! * **narrated** events — what the kernel *claims* its memory behaviour is,
//!   emitted by the [`BlockCtx`](crate::BlockCtx) narration methods
//!   (`read_global`, `write_global_shared`, `read_global_range`, …);
//! * **functional** events — what the kernel *actually* touched, hooked at
//!   the [`DeviceBuffer`](crate::DeviceBuffer) `get`/`write`/`atomic_add_f32`
//!   level.
//!
//! Each event carries enough ordering context (warp index, barrier epoch,
//! adjacent-sync position) for a replay checker to decide whether two
//! conflicting accesses are synchronized. The `sanitizer` crate consumes the
//! resulting [`AccessLog`] to run race, out-of-bounds and narration-audit
//! passes; this module only records.
//!
//! Recording is scoped to kernel execution: blocks run each on a single pool
//! thread, so a thread-local recorder installed around the kernel closure
//! attributes events to the right block without locking. Host-side accesses
//! (uploads, `to_vec` downloads between launches) carry no recorder and are
//! deliberately not captured — they model `cudaMemcpy`, not kernel traffic.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global count of devices currently in recording mode. The functional hooks
/// in `DeviceBuffer` consult this first so that non-recording runs pay one
/// relaxed atomic load per access and nothing else.
static RECORDING_DEVICES: AtomicUsize = AtomicUsize::new(0);

/// True if any device is currently recording (cheap global gate).
#[inline]
pub(crate) fn recording_active() -> bool {
    RECORDING_DEVICES.load(Ordering::Relaxed) > 0
}

pub(crate) fn recording_device_added() {
    RECORDING_DEVICES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn recording_device_removed() {
    RECORDING_DEVICES.fetch_sub(1, Ordering::Relaxed);
}

/// What a recorded memory event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read the kernel narrated to the cost model.
    NarratedRead,
    /// A write the kernel narrated to the cost model.
    NarratedWrite,
    /// An atomic the kernel narrated to the cost model.
    NarratedAtomic,
    /// A read the kernel actually performed (`DeviceBuffer::get`).
    FunctionalRead,
    /// A plain write the kernel actually performed (`DeviceBuffer::write`).
    FunctionalWrite,
    /// An atomic add the kernel actually performed
    /// (`DeviceBuffer::atomic_add_f32`).
    FunctionalAtomic,
}

impl AccessKind {
    /// True for events hooked at the functional (`DeviceBuffer`) level.
    pub fn is_functional(self) -> bool {
        matches!(
            self,
            AccessKind::FunctionalRead | AccessKind::FunctionalWrite | AccessKind::FunctionalAtomic
        )
    }

    /// True for events that modify memory (plain writes and atomics).
    pub fn is_write(self) -> bool {
        matches!(
            self,
            AccessKind::NarratedWrite
                | AccessKind::NarratedAtomic
                | AccessKind::FunctionalWrite
                | AccessKind::FunctionalAtomic
        )
    }

    /// True for atomic events.
    pub fn is_atomic(self) -> bool {
        matches!(
            self,
            AccessKind::NarratedAtomic | AccessKind::FunctionalAtomic
        )
    }
}

/// One recorded memory access with its ordering context.
#[derive(Debug, Clone)]
pub struct Event {
    /// First byte of the accessed range (virtual device address).
    pub addr: u64,
    /// Length of the accessed range in bytes.
    pub bytes: u32,
    /// What the access was and which layer observed it.
    pub kind: AccessKind,
    /// Warp the access belongs to (warp-granular: lanes are not separated).
    pub warp: u32,
    /// Sync epoch within the warp: the number of sync events (`syncthreads`
    /// barriers *and* `adjacent_sync` waits) the warp had passed when the
    /// event fired. Warps of one block executing SPMD code hit the same sync
    /// sequence, so equal epochs mean "between the same pair of syncs" and
    /// differing epochs mean an intervening sync separates the accesses.
    pub epoch: u32,
    /// How many `adjacent_sync` waits the block had completed when the event
    /// fired. Block-scoped (never reset per warp): events of block `b` at
    /// adjacent epoch `k` are ordered behind events of a linearly-earlier
    /// block at adjacent epoch `j` exactly when `k > j` — each wait rides one
    /// round of the StreamScan domino (paper §IV-D).
    pub adjacent_epoch: u32,
}

/// All events of one thread block, in program order.
#[derive(Debug, Clone, Default)]
pub struct BlockRecord {
    /// Linearized block index (x-major, matching launch order).
    pub block: usize,
    /// The block's recorded events.
    pub events: Vec<Event>,
}

/// One recorded kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchRecord {
    /// Grid shape of the launch.
    pub grid: (usize, usize),
    /// Threads per block.
    pub block_threads: usize,
    /// Per-block event logs, in linear block order.
    pub blocks: Vec<BlockRecord>,
    /// Live allocations `(base, bytes)` snapshotted when the launch
    /// finished, for the shadow-memory (out-of-bounds) check.
    pub allocations: Vec<(u64, usize)>,
}

/// Everything recorded between `start_recording` and `stop_recording`,
/// possibly spanning several launches (e.g. the two-step method's two
/// kernels).
#[derive(Debug, Clone, Default)]
pub struct AccessLog {
    /// Recorded launches, in issue order.
    pub launches: Vec<LaunchRecord>,
}

impl AccessLog {
    /// Total events across all launches and blocks.
    pub fn event_count(&self) -> usize {
        self.launches
            .iter()
            .flat_map(|l| &l.blocks)
            .map(|b| b.events.len())
            .sum()
    }
}

/// Per-thread recorder installed around one block's kernel closure.
struct Recorder {
    record: BlockRecord,
    warp: u32,
    epoch: u32,
    warp_started: bool,
    adjacent_epoch: u32,
}

thread_local! {
    static CURRENT: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Installs a fresh recorder for `block` on this thread.
pub(crate) fn begin_block(block: usize) {
    CURRENT.with(|current| {
        *current.borrow_mut() = Some(Recorder {
            record: BlockRecord {
                block,
                events: Vec::new(),
            },
            warp: 0,
            epoch: 0,
            warp_started: false,
            adjacent_epoch: 0,
        });
    });
}

/// Removes this thread's recorder and returns the block's events.
pub(crate) fn end_block() -> Option<BlockRecord> {
    CURRENT.with(|current| current.borrow_mut().take().map(|recorder| recorder.record))
}

#[inline]
fn with_recorder(f: impl FnOnce(&mut Recorder)) {
    CURRENT.with(|current| {
        if let Some(recorder) = current.borrow_mut().as_mut() {
            f(recorder);
        }
    });
}

/// Records one access. Called from narration methods and functional hooks;
/// no-op unless a recorder is installed on this thread.
#[inline]
pub(crate) fn on_access(kind: AccessKind, addr: u64, bytes: u32) {
    with_recorder(|recorder| {
        recorder.record.events.push(Event {
            addr,
            bytes,
            kind,
            warp: recorder.warp,
            epoch: recorder.epoch,
            adjacent_epoch: recorder.adjacent_epoch,
        });
    });
}

/// Records a warp-wide batch of lane accesses of `bytes` each.
#[inline]
pub(crate) fn on_access_batch(kind: AccessKind, addrs: &[u64], bytes: u32) {
    with_recorder(|recorder| {
        for &addr in addrs {
            recorder.record.events.push(Event {
                addr,
                bytes,
                kind,
                warp: recorder.warp,
                epoch: recorder.epoch,
                adjacent_epoch: recorder.adjacent_epoch,
            });
        }
    });
}

/// Advances to the next warp (resets the sync epoch — warps of a block run
/// the same sync sequence; the adjacent epoch is block-scoped and persists).
pub(crate) fn on_begin_warp() {
    with_recorder(|recorder| {
        if recorder.warp_started {
            recorder.warp += 1;
        } else {
            recorder.warp_started = true;
        }
        recorder.epoch = 0;
    });
}

/// Advances the current warp's sync epoch (a `syncthreads` barrier).
pub(crate) fn on_syncthreads() {
    with_recorder(|recorder| recorder.epoch += 1);
}

/// Records a completed adjacent-synchronization wait: it both advances the
/// warp's sync epoch (it is an intervening sync event for intra-block
/// ordering) and the block's adjacent epoch (one domino round).
pub(crate) fn on_adjacent_sync() {
    with_recorder(|recorder| {
        recorder.epoch += 1;
        recorder.adjacent_epoch += 1;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_attributes_warp_epoch_and_adjacency() {
        begin_block(3);
        on_access(AccessKind::FunctionalRead, 0x100, 4);
        on_begin_warp();
        on_access(AccessKind::NarratedRead, 0x200, 4);
        on_syncthreads();
        on_access(AccessKind::FunctionalWrite, 0x300, 4);
        on_begin_warp();
        on_adjacent_sync();
        on_access_batch(AccessKind::NarratedWrite, &[0x400, 0x404], 1);
        let record = end_block().unwrap();
        assert_eq!(record.block, 3);
        assert_eq!(record.events.len(), 5);
        assert_eq!((record.events[0].warp, record.events[0].epoch), (0, 0));
        assert_eq!((record.events[1].warp, record.events[1].epoch), (0, 0));
        assert_eq!((record.events[2].warp, record.events[2].epoch), (0, 1));
        // Second begin_warp resets the sync epoch and bumps the warp; the
        // adjacent_sync then counts as one sync event and one domino round.
        assert_eq!((record.events[3].warp, record.events[3].epoch), (1, 1));
        assert_eq!(record.events[2].adjacent_epoch, 0);
        assert_eq!(record.events[3].adjacent_epoch, 1);
        assert_eq!(record.events[4].adjacent_epoch, 1);
        // No recorder installed anymore: events are dropped silently.
        on_access(AccessKind::FunctionalRead, 0x500, 4);
        assert!(end_block().is_none());
    }

    #[test]
    fn access_kind_classification() {
        assert!(AccessKind::FunctionalWrite.is_write());
        assert!(AccessKind::FunctionalAtomic.is_write());
        assert!(AccessKind::NarratedAtomic.is_atomic());
        assert!(!AccessKind::FunctionalRead.is_write());
        assert!(AccessKind::FunctionalRead.is_functional());
        assert!(!AccessKind::NarratedRead.is_functional());
    }
}
