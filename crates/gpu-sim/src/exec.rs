//! Kernel launch machinery: functional block execution plus cost accounting.
//!
//! A kernel is a host closure invoked once per thread block with a
//! [`BlockCtx`]. The closure performs the block's real computation on
//! [`DeviceBuffer`](crate::memory::DeviceBuffer)s (results are bit-useful,
//! validated against sequential references) and *narrates* its memory
//! behaviour to the context — per-warp address batches, atomics, shared
//! memory, shuffles — which the context folds into [`BlockStats`]. Blocks run
//! in parallel on the host pool; statistics are collected per block and
//! reduced deterministically in launch order.

use crate::cache::ReadOnlyCache;
use crate::coalesce::transactions;
use crate::config::DeviceConfig;
use crate::faults;
use crate::memory::{DeviceBuffer, DeviceMemory};
use crate::record::{self, AccessKind, AccessLog, BlockRecord, LaunchRecord};
use crate::stats::{BlockStats, KernelStats};
use crate::trace::{self, BlockTrace, LaunchTrace, MemoryEvent, MemoryEventKind, TraceLog};
use parking_lot::Mutex;

/// A simulated GPU: configuration plus global memory.
pub struct GpuDevice {
    config: DeviceConfig,
    memory: DeviceMemory,
    /// `Some` while the device is in sanitizer recording mode.
    recording: Mutex<Option<AccessLog>>,
    /// `Some` while the device is in profiler tracing mode.
    tracing: Mutex<Option<TraceLog>>,
}

impl GpuDevice {
    /// Creates a device from a configuration.
    pub fn new(config: DeviceConfig) -> Self {
        let memory = DeviceMemory::new(config.memory_capacity);
        GpuDevice {
            config,
            memory,
            recording: Mutex::new(None),
            tracing: Mutex::new(None),
        }
    }

    /// The paper's evaluation device.
    pub fn titan_x() -> Self {
        GpuDevice::new(DeviceConfig::titan_x())
    }

    /// Device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Global memory handle (allocate buffers through this).
    pub fn memory(&self) -> &DeviceMemory {
        &self.memory
    }

    /// Puts the device into sanitizer recording mode: every subsequent launch
    /// captures per-block narrated and functional memory events (plus an
    /// allocation snapshot) into an [`AccessLog`] until
    /// [`GpuDevice::stop_recording`] is called. Idempotent while recording.
    pub fn start_recording(&self) {
        let mut guard = self.recording.lock();
        if guard.is_none() {
            *guard = Some(AccessLog::default());
            record::recording_device_added();
        }
    }

    /// Leaves recording mode and returns everything captured since
    /// [`GpuDevice::start_recording`].
    ///
    /// # Panics
    /// If the device was not recording.
    pub fn stop_recording(&self) -> AccessLog {
        let mut guard = self.recording.lock();
        let log = guard
            .take()
            .expect("stop_recording called on a device that was not recording");
        record::recording_device_removed();
        log
    }

    /// Puts the device into profiler tracing mode: every subsequent launch
    /// captures a [`LaunchTrace`] (per-block memory events plus wave spans on
    /// the simulated timeline) until [`GpuDevice::stop_tracing`] is called.
    /// Idempotent while tracing. Tracing only observes — results and
    /// simulated timings are bit-exact with an untraced run.
    pub fn start_tracing(&self) {
        let mut guard = self.tracing.lock();
        if guard.is_none() {
            *guard = Some(TraceLog::default());
            trace::tracing_device_added();
        }
    }

    /// Leaves tracing mode and returns everything captured since
    /// [`GpuDevice::start_tracing`].
    ///
    /// # Panics
    /// If the device was not tracing.
    pub fn stop_tracing(&self) -> TraceLog {
        let mut guard = self.tracing.lock();
        let log = guard
            .take()
            .expect("stop_tracing called on a device that was not tracing");
        trace::tracing_device_removed();
        log
    }

    /// Takes the launches traced so far while staying in tracing mode.
    /// Returns an empty vector when the device is not tracing (callers can
    /// drain unconditionally).
    pub fn drain_trace(&self) -> Vec<LaunchTrace> {
        match self.tracing.lock().as_mut() {
            Some(log) => std::mem::take(&mut log.launches),
            None => Vec::new(),
        }
    }

    /// Launches a kernel over a `grid.0 × grid.1` grid of one-dimensional
    /// blocks of `block_threads` threads, mirroring the paper's
    /// "two-dimensional thread grids with one-dimensional thread blocks".
    ///
    /// Blocks execute in parallel on the host; the returned statistics are
    /// deterministic (reduced in block launch order, x-major).
    ///
    /// # Panics
    /// If `block_threads` is zero, not a multiple of the warp size, or
    /// exceeds the device limit.
    pub fn launch<K>(&self, grid: (usize, usize), block_threads: usize, kernel: K) -> KernelStats
    where
        K: Fn(&mut BlockCtx) + Sync,
    {
        self.launch_with_shared(grid, block_threads, 0, kernel)
    }

    /// Like [`GpuDevice::launch`], but for kernels that statically allocate
    /// `shared_bytes` of shared memory per block: occupancy is additionally
    /// limited to `shared_mem_per_sm / shared_bytes` blocks per SM.
    ///
    /// # Panics
    /// If the block shape is invalid (see [`GpuDevice::launch`]) or a single
    /// block's shared allocation exceeds the per-SM capacity.
    pub fn launch_with_shared<K>(
        &self,
        grid: (usize, usize),
        block_threads: usize,
        shared_bytes: usize,
        kernel: K,
    ) -> KernelStats
    where
        K: Fn(&mut BlockCtx) + Sync,
    {
        assert!(block_threads > 0, "block must have threads");
        assert_eq!(
            block_threads % self.config.warp_size,
            0,
            "block size must be a whole number of warps"
        );
        assert!(
            block_threads <= self.config.max_threads_per_block,
            "block size {} exceeds device limit {}",
            block_threads,
            self.config.max_threads_per_block
        );
        assert!(
            shared_bytes <= self.config.shared_mem_per_sm,
            "shared allocation {} exceeds per-SM capacity {}",
            shared_bytes,
            self.config.shared_mem_per_sm
        );
        let (gx, gy) = grid;
        let total_blocks = gx * gy;
        // Fault-injection hook: advance the launch counter, arm this
        // launch's faults, and honour an injected launch failure — the
        // kernel never runs, so output buffers keep their pre-launch
        // contents and only the launch overhead is charged (the failure is
        // latched for the host to observe, like CUDA's async error state).
        if faults::faults_active() && self.memory.fault_launch_begin() {
            let mut concurrent = self.config.concurrent_blocks(block_threads);
            if let Some(per_sm) = self.config.shared_mem_per_sm.checked_div(shared_bytes) {
                concurrent = concurrent.min(per_sm.max(1) * self.config.num_sms);
            }
            if let Some(log) = self.tracing.lock().as_mut() {
                log.launches.push(LaunchTrace::dropped(
                    grid,
                    block_threads,
                    concurrent,
                    &self.config,
                ));
            }
            return KernelStats::from_blocks_with_concurrency(&[], concurrent, &self.config);
        }
        let recording = self.recording.lock().is_some();
        let tracing = self.tracing.lock().is_some();
        let mut per_block: Vec<(BlockStats, Option<BlockRecord>, Option<BlockTrace>)> = (0
            ..total_blocks)
            .map(|_| (BlockStats::default(), None, None))
            .collect();
        let config = &self.config;
        cpu_par::par_chunks_mut(&mut per_block, 8, |chunk_index, chunk| {
            for (offset, slot) in chunk.iter_mut().enumerate() {
                let block_linear = chunk_index * 8 + offset;
                // x-major linearization: bIdx varies fastest.
                let block_x = block_linear % gx.max(1);
                let block_y = block_linear / gx.max(1);
                if recording {
                    record::begin_block(block_linear);
                }
                if tracing {
                    trace::begin_block(block_linear);
                }
                let mut ctx = BlockCtx::new(config, block_x, block_y, block_threads);
                kernel(&mut ctx);
                slot.0 = ctx.finish();
                if recording {
                    slot.1 = record::end_block();
                }
                if tracing {
                    slot.2 = trace::end_block();
                }
            }
        });
        let stats: Vec<BlockStats> = per_block.iter().map(|(s, _, _)| s.clone()).collect();
        if recording {
            if let Some(log) = self.recording.lock().as_mut() {
                log.launches.push(LaunchRecord {
                    grid,
                    block_threads,
                    blocks: per_block
                        .iter()
                        .enumerate()
                        .map(|(block, (_, rec, _))| {
                            rec.clone().unwrap_or(BlockRecord {
                                block,
                                events: Vec::new(),
                            })
                        })
                        .collect(),
                    allocations: self.memory.live_allocations(),
                });
            }
        }
        let mut concurrent = config.concurrent_blocks(block_threads);
        if let Some(per_sm) = config.shared_mem_per_sm.checked_div(shared_bytes) {
            concurrent = concurrent.min(per_sm.max(1) * config.num_sms);
        }
        if tracing {
            if let Some(log) = self.tracing.lock().as_mut() {
                let blocks = per_block
                    .into_iter()
                    .enumerate()
                    .map(|(block, (_, _, tr))| {
                        tr.unwrap_or(BlockTrace {
                            block,
                            ..BlockTrace::default()
                        })
                    })
                    .collect();
                log.launches.push(LaunchTrace::assemble(
                    grid,
                    block_threads,
                    concurrent,
                    &stats,
                    blocks,
                    config,
                ));
            }
        }
        KernelStats::from_blocks_with_concurrency(&stats, concurrent, config)
    }
}

/// Clamps a narrated range length to the recorded event's field width.
#[inline]
fn range_len(bytes: usize) -> u32 {
    u32::try_from(bytes).unwrap_or(u32::MAX)
}

/// Minimum transactions a warp-wide batch of 4-byte lane accesses could need
/// if perfectly coalesced (the profiler's coalescing baseline).
#[inline]
fn ideal_lane_transactions(lanes: usize, transaction_bytes: usize) -> u64 {
    ((lanes * 4) as u64).div_ceil(transaction_bytes.max(1) as u64)
}

/// Counter snapshot taken before a narrated operation so the trace hook can
/// attribute the operation's exact deltas without re-deriving the cost model.
#[derive(Clone, Copy)]
struct TraceBefore {
    transactions: u64,
    dram_bytes: u64,
    rocache_hits: u64,
    rocache_misses: u64,
}

/// Execution context handed to a kernel closure, one per thread block.
pub struct BlockCtx<'a> {
    config: &'a DeviceConfig,
    block_x: usize,
    block_y: usize,
    block_threads: usize,
    stats: BlockStats,
    rocache: ReadOnlyCache,
    rocache_sharers: u64,
    warp_cycles: u64,
    warp_open: bool,
}

impl<'a> BlockCtx<'a> {
    fn new(config: &'a DeviceConfig, block_x: usize, block_y: usize, block_threads: usize) -> Self {
        BlockCtx {
            config,
            block_x,
            block_y,
            block_threads,
            stats: BlockStats::default(),
            rocache: ReadOnlyCache::new(
                config.readonly_cache_bytes,
                config.readonly_line_bytes,
                config.readonly_ways,
            ),
            rocache_sharers: 1,
            warp_cycles: 0,
            warp_open: false,
        }
    }

    /// Declares that `sharers` co-resident sibling blocks consume the other
    /// words of every read-only cache line this block fills — e.g. the
    /// column blocks `bIdy, bIdy+1, …` of the unified kernels, which read
    /// adjacent columns of the same factor rows on the same SM. Each miss
    /// then charges `line_bytes / sharers` of DRAM traffic to this block
    /// (the fill is amortized across the siblings).
    pub fn set_rocache_sharers(&mut self, sharers: u64) {
        self.rocache_sharers = sharers.max(1);
    }

    /// Block index along the grid's x dimension.
    pub fn block_x(&self) -> usize {
        self.block_x
    }

    /// Block index along the grid's y dimension.
    pub fn block_y(&self) -> usize {
        self.block_y
    }

    /// Threads per block for this launch.
    pub fn block_threads(&self) -> usize {
        self.block_threads
    }

    /// Warp width of the device.
    pub fn warp_size(&self) -> usize {
        self.config.warp_size
    }

    /// Number of warps in the block.
    pub fn warps_per_block(&self) -> usize {
        self.block_threads / self.config.warp_size
    }

    /// Device configuration (for kernels that need model constants).
    pub fn config(&self) -> &DeviceConfig {
        self.config
    }

    /// Starts accounting a new warp; closes the previous one.
    ///
    /// Kernels iterate their block's warps and call this once per warp so the
    /// context can track the slowest warp (intra-block imbalance).
    pub fn begin_warp(&mut self) {
        if record::recording_active() {
            record::on_begin_warp();
        }
        if trace::tracing_active() {
            trace::on_begin_warp();
        }
        self.close_warp();
        self.warp_open = true;
    }

    fn close_warp(&mut self) {
        if self.warp_open {
            self.stats.warps += 1;
            self.stats.max_warp_cycles = self.stats.max_warp_cycles.max(self.warp_cycles);
            self.stats.total_warp_cycles += self.warp_cycles;
            self.warp_cycles = 0;
            self.warp_open = false;
        }
    }

    fn finish(mut self) -> BlockStats {
        self.close_warp();
        self.stats
    }

    /// Charges `warp_instructions` cycles of compute to the current warp
    /// (one warp-wide instruction ≈ one cycle).
    #[inline]
    pub fn compute(&mut self, warp_instructions: u64) {
        self.warp_cycles += warp_instructions;
    }

    /// Charges a warp-wide global-memory read with the given lane addresses.
    #[inline]
    pub fn read_global(&mut self, addrs: &[u64]) {
        if record::recording_active() {
            record::on_access_batch(AccessKind::NarratedRead, addrs, 1);
        }
        let before = self.trace_before();
        self.global_access(addrs);
        if let Some(before) = before {
            if !addrs.is_empty() {
                let ideal = ideal_lane_transactions(addrs.len(), self.config.transaction_bytes);
                self.trace_memory(MemoryEventKind::GlobalRead, Some(ideal), before, 0, 0);
            }
        }
    }

    /// Charges a warp-wide global-memory write with the given lane addresses.
    #[inline]
    pub fn write_global(&mut self, addrs: &[u64]) {
        if record::recording_active() {
            record::on_access_batch(AccessKind::NarratedWrite, addrs, 1);
        }
        let before = self.trace_before();
        self.global_access(addrs);
        if let Some(before) = before {
            if !addrs.is_empty() {
                let ideal = ideal_lane_transactions(addrs.len(), self.config.transaction_bytes);
                self.trace_memory(MemoryEventKind::GlobalWrite, Some(ideal), before, 0, 0);
            }
        }
    }

    /// Charges a warp-wide write whose cache lines are co-written by
    /// `sharers` sibling blocks (adjacent columns of the same output rows):
    /// the write-back L2 merges the partial-line writes, so DRAM sees each
    /// line once per `sharers` blocks. Issue cost is unchanged.
    pub fn write_global_shared(&mut self, addrs: &[u64], sharers: u64) {
        if addrs.is_empty() {
            return;
        }
        if record::recording_active() {
            record::on_access_batch(AccessKind::NarratedWrite, addrs, 1);
        }
        let before = self.trace_before();
        let t = transactions(addrs, self.config.transaction_bytes) as u64;
        self.stats.transactions += t;
        self.stats.dram_bytes +=
            (t * self.config.transaction_bytes as u64 / sharers.max(1)).max(t * 4);
        self.warp_cycles += t * self.config.mem_issue_cycles;
        if let Some(before) = before {
            let ideal = ideal_lane_transactions(addrs.len(), self.config.transaction_bytes);
            self.trace_memory(MemoryEventKind::GlobalWrite, Some(ideal), before, 0, 0);
        }
    }

    fn global_access(&mut self, addrs: &[u64]) {
        if addrs.is_empty() {
            return;
        }
        let t = transactions(addrs, self.config.transaction_bytes) as u64;
        self.stats.transactions += t;
        self.stats.dram_bytes += t * self.config.transaction_bytes as u64;
        self.warp_cycles += t * self.config.mem_issue_cycles;
    }

    /// Charges a streaming read of a contiguous `bytes`-long region starting
    /// at `start_addr`.
    ///
    /// This models blocked per-thread access to consecutive elements (each
    /// thread owns a contiguous chunk): the hardware touches every sector of
    /// the warp's combined region exactly once via the L1/L2 path, so the
    /// cost is the region's aligned sector count rather than a naive
    /// per-iteration stride analysis.
    pub fn read_global_range(&mut self, start_addr: u64, bytes: usize) {
        if record::recording_active() {
            record::on_access(AccessKind::NarratedRead, start_addr, range_len(bytes));
        }
        let before = self.trace_before();
        self.stream_range(start_addr, bytes);
        if let Some(before) = before {
            if bytes > 0 {
                self.trace_memory(MemoryEventKind::StreamRead, None, before, 0, 0);
            }
        }
    }

    /// Charges a streaming write of a contiguous region (same model as
    /// [`BlockCtx::read_global_range`]).
    pub fn write_global_range(&mut self, start_addr: u64, bytes: usize) {
        if record::recording_active() {
            record::on_access(AccessKind::NarratedWrite, start_addr, range_len(bytes));
        }
        let before = self.trace_before();
        self.stream_range(start_addr, bytes);
        if let Some(before) = before {
            if bytes > 0 {
                self.trace_memory(MemoryEventKind::StreamWrite, None, before, 0, 0);
            }
        }
    }

    /// Cost of streaming a contiguous region through DRAM (shared by the
    /// range read/write narration methods).
    fn stream_range(&mut self, start_addr: u64, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let shift = self.config.transaction_bytes.trailing_zeros();
        let first = start_addr >> shift;
        let last = (start_addr + bytes as u64 - 1) >> shift;
        let t = last - first + 1;
        self.stats.transactions += t;
        self.stats.dram_bytes += t * self.config.transaction_bytes as u64;
        self.warp_cycles += t * self.config.mem_issue_cycles;
    }

    /// Charges a streaming read of a contiguous region that is known to be
    /// resident in the device-wide L2 because a co-scheduled block just
    /// streamed the same region (e.g. the column blocks `bIdy > 0` of the
    /// unified kernels re-reading the tensor stream their `bIdy = 0` sibling
    /// fetched). Load instructions still issue and transactions still count,
    /// but no DRAM traffic is charged.
    pub fn read_global_range_l2(&mut self, start_addr: u64, bytes: usize) {
        if bytes == 0 {
            return;
        }
        if record::recording_active() {
            record::on_access(AccessKind::NarratedRead, start_addr, range_len(bytes));
        }
        let before = self.trace_before();
        let shift = self.config.transaction_bytes.trailing_zeros();
        let first = start_addr >> shift;
        let last = (start_addr + bytes as u64 - 1) >> shift;
        let t = last - first + 1;
        self.stats.transactions += t;
        self.warp_cycles += t * self.config.mem_issue_cycles;
        if let Some(before) = before {
            self.trace_memory(MemoryEventKind::StreamRead, None, before, 0, 0);
        }
    }

    /// Charges a warp-wide read of a *reused* working set of `ws_bytes`
    /// total size through plain global loads: coalescing applies, and when
    /// the working set fits the device L2, repeat traffic stays on chip
    /// (no DRAM bytes). Use for factor-matrix reads in kernels that do not
    /// route them through the read-only cache.
    pub fn read_global_ws(&mut self, addrs: &[u64], ws_bytes: usize) {
        if addrs.is_empty() {
            return;
        }
        if record::recording_active() {
            record::on_access_batch(AccessKind::NarratedRead, addrs, 1);
        }
        let before = self.trace_before();
        let t = transactions(addrs, self.config.transaction_bytes) as u64;
        self.stats.transactions += t;
        self.warp_cycles += t * self.config.mem_issue_cycles;
        if ws_bytes <= self.config.l2_bytes {
            self.warp_cycles += self.config.l2_latency_cycles;
        } else {
            self.stats.dram_bytes += t * self.config.transaction_bytes as u64;
        }
        if let Some(before) = before {
            let ideal = ideal_lane_transactions(addrs.len(), self.config.transaction_bytes);
            self.trace_memory(MemoryEventKind::GlobalRead, Some(ideal), before, 0, 0);
        }
    }

    /// Charges a warp-wide read through the read-only data cache (the `__ldg`
    /// path the paper uses for factor matrices). Hits cost one cycle and no
    /// DRAM traffic; misses fill a cache line from DRAM.
    pub fn read_readonly(&mut self, addrs: &[u64]) {
        self.read_readonly_ws(addrs, usize::MAX);
    }

    /// Like [`BlockCtx::read_readonly`], but for a reused working set of
    /// `ws_bytes` total size: read-only cache misses whose working set fits
    /// the device L2 are served on chip (L2 latency, no DRAM fill).
    pub fn read_readonly_ws(&mut self, addrs: &[u64], ws_bytes: usize) {
        if record::recording_active() {
            record::on_access_batch(AccessKind::NarratedRead, addrs, 1);
        }
        let before = self.trace_before();
        let line = self.rocache.line_bytes() as u64;
        let mut seen_lines = [u64::MAX; 32];
        let mut seen = 0usize;
        for &addr in addrs {
            // Coalesce within the warp first: one probe per distinct line.
            let tag = addr / line;
            if seen_lines[..seen].contains(&tag) {
                continue;
            }
            if seen < seen_lines.len() {
                seen_lines[seen] = tag;
                seen += 1;
            }
            if self.rocache.access(addr) {
                self.stats.rocache_hits += 1;
                self.warp_cycles += 1;
            } else {
                self.stats.rocache_misses += 1;
                self.stats.transactions += 1;
                if ws_bytes <= self.config.l2_bytes {
                    self.warp_cycles += self.config.l2_latency_cycles;
                } else {
                    self.stats.dram_bytes += (line / self.rocache_sharers).max(4);
                    self.warp_cycles += self.config.rocache_miss_cycles;
                }
            }
        }
        if let Some(before) = before {
            if !addrs.is_empty() {
                self.trace_memory(MemoryEventKind::CacheRead, None, before, 0, 0);
            }
        }
    }

    /// Performs and charges a warp's worth of `atomicAdd(float*)`: each
    /// `(index, value)` pair is one lane's atomic into `buffer`.
    ///
    /// Lanes targeting the same element serialize: the warp pays
    /// `atomic_cycles × max multiplicity`, which is the contention behaviour
    /// that makes COO-style accumulation expensive on GPUs (§III-B).
    pub fn atomic_add_f32(&mut self, buffer: &DeviceBuffer<f32>, lanes: &[(usize, f32)]) {
        if lanes.is_empty() {
            return;
        }
        let addrs: Vec<u64> = lanes.iter().map(|&(i, _)| buffer.addr(i)).collect();
        if record::recording_active() {
            record::on_access_batch(AccessKind::NarratedAtomic, &addrs, 4);
        }
        let before = self.trace_before();
        let mut max_multiplicity = 0u64;
        let mut seen: Vec<(usize, u64)> = Vec::with_capacity(lanes.len());
        for &(index, value) in lanes {
            buffer.atomic_add_f32(index, value);
            match seen.iter_mut().find(|(i, _)| *i == index) {
                Some((_, count)) => *count += 1,
                None => seen.push((index, 1)),
            }
        }
        for &(_, count) in &seen {
            max_multiplicity = max_multiplicity.max(count);
        }
        self.stats.atomics += lanes.len() as u64;
        let conflict = self.config.atomic_cycles * max_multiplicity;
        self.stats.atomic_conflict_cycles += conflict;
        self.warp_cycles += conflict;
        // The write traffic itself.
        self.global_access(&addrs);
        if let Some(before) = before {
            let ideal = ideal_lane_transactions(addrs.len(), self.config.transaction_bytes);
            self.trace_memory(
                MemoryEventKind::Atomic,
                Some(ideal),
                before,
                lanes.len() as u64,
                max_multiplicity,
            );
        }
    }

    /// Charges `ops` shared-memory accesses.
    #[inline]
    pub fn shared(&mut self, ops: u64) {
        self.stats.shared_ops += ops;
        self.warp_cycles += ops * self.config.shared_cycles;
    }

    /// Charges `ops` warp-shuffle instructions (register exchange; the paper
    /// uses these inside the segmented scan to avoid shared memory).
    #[inline]
    pub fn shuffle(&mut self, ops: u64) {
        self.stats.shuffles += ops;
        self.warp_cycles += ops * self.config.shuffle_cycles;
    }

    /// Charges one `__syncthreads()` barrier.
    #[inline]
    pub fn syncthreads(&mut self) {
        if record::recording_active() {
            record::on_syncthreads();
        }
        self.warp_cycles += self.config.syncthreads_cycles;
    }

    /// Charges one adjacent-synchronization wait (StreamScan-style inter-block
    /// domino used for kernel fusion, §IV-D).
    #[inline]
    pub fn adjacent_sync(&mut self) {
        if record::recording_active() {
            record::on_adjacent_sync();
        }
        self.warp_cycles += self.config.adjacent_sync_cycles;
    }

    /// Charges a divergent per-lane loop: the warp runs as long as its
    /// busiest lane (`cycles_per_iter × max iterations`), regardless of how
    /// little the other lanes do. This is the warp-divergence penalty of
    /// fiber-centric baselines.
    pub fn diverged_loop(&mut self, lane_iterations: &[u64], cycles_per_iteration: u64) {
        let max = lane_iterations.iter().copied().max().unwrap_or(0);
        self.warp_cycles += max * cycles_per_iteration;
    }

    /// Read-only cache hit rate observed so far in this block.
    pub fn rocache_hit_rate(&self) -> f64 {
        self.rocache.hit_rate()
    }

    /// Snapshot of the trace-relevant counters, taken only when tracing is
    /// active (`None` otherwise, so the disabled path stays a single branch).
    #[inline]
    fn trace_before(&self) -> Option<TraceBefore> {
        if trace::tracing_active() {
            Some(TraceBefore {
                transactions: self.stats.transactions,
                dram_bytes: self.stats.dram_bytes,
                rocache_hits: self.stats.rocache_hits,
                rocache_misses: self.stats.rocache_misses,
            })
        } else {
            None
        }
    }

    /// Emits one trace event carrying the counter deltas since `before`.
    /// `ideal` is the perfectly-coalesced transaction baseline (`None` means
    /// the access is coalesced by construction, so ideal equals actual).
    fn trace_memory(
        &self,
        kind: MemoryEventKind,
        ideal: Option<u64>,
        before: TraceBefore,
        atomic_lanes: u64,
        atomic_multiplicity: u64,
    ) {
        let transactions = self.stats.transactions - before.transactions;
        trace::on_memory(MemoryEvent {
            warp: 0,
            kind,
            transactions,
            // Broadcast-style accesses can beat the payload baseline (one
            // sector serves every lane), so clamp: efficiency is at most 1.
            ideal_transactions: ideal.unwrap_or(transactions).min(transactions),
            dram_bytes: self.stats.dram_bytes - before.dram_bytes,
            cache_hits: self.stats.rocache_hits - before.rocache_hits,
            cache_misses: self.stats.rocache_misses - before.rocache_misses,
            atomic_lanes,
            atomic_multiplicity,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_runs_every_block_once() {
        let device = GpuDevice::titan_x();
        let counter = std::sync::atomic::AtomicUsize::new(0);
        let stats = device.launch((7, 3), 64, |ctx| {
            assert!(ctx.block_x() < 7);
            assert!(ctx.block_y() < 3);
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 21);
        assert_eq!(stats.blocks, 21);
    }

    #[test]
    fn kernel_writes_are_visible_after_launch() {
        let device = GpuDevice::titan_x();
        let buffer = device.memory().alloc_zeroed::<f32>(64).unwrap();
        device.launch((64, 1), 32, |ctx| {
            let x = ctx.block_x();
            // SAFETY: each block writes a distinct element.
            unsafe { buffer.write(x, x as f32) };
            ctx.write_global(&[buffer.addr(x)]);
        });
        let host = buffer.to_vec();
        assert!(host.iter().enumerate().all(|(i, &v)| v == i as f32));
    }

    #[test]
    fn coalesced_reads_cost_fewer_transactions_than_scattered() {
        let device = GpuDevice::titan_x();
        let buffer = device.memory().alloc_zeroed::<f32>(100_000).unwrap();
        let coalesced = device.launch((1, 1), 32, |ctx| {
            ctx.begin_warp();
            let addrs: Vec<u64> = (0..32).map(|lane| buffer.addr(lane)).collect();
            ctx.read_global(&addrs);
        });
        let scattered = device.launch((1, 1), 32, |ctx| {
            ctx.begin_warp();
            let addrs: Vec<u64> = (0..32).map(|lane| buffer.addr(lane * 1024)).collect();
            ctx.read_global(&addrs);
        });
        assert_eq!(coalesced.transactions, 4);
        assert_eq!(scattered.transactions, 32);
        assert!(scattered.dram_bytes > coalesced.dram_bytes);
    }

    #[test]
    fn atomic_conflicts_serialize() {
        let device = GpuDevice::titan_x();
        let buffer = device.memory().alloc_zeroed::<f32>(64).unwrap();
        // All 32 lanes hit the same element.
        let conflicted = device.launch((1, 1), 32, |ctx| {
            ctx.begin_warp();
            let lanes: Vec<(usize, f32)> = (0..32).map(|_| (0usize, 1.0f32)).collect();
            ctx.atomic_add_f32(&buffer, &lanes);
        });
        assert_eq!(buffer.get(0), 32.0);
        // Distinct elements: no serialization.
        let buffer2 = device.memory().alloc_zeroed::<f32>(64).unwrap();
        let spread = device.launch((1, 1), 32, |ctx| {
            ctx.begin_warp();
            let lanes: Vec<(usize, f32)> = (0..32).map(|lane| (lane, 1.0f32)).collect();
            ctx.atomic_add_f32(&buffer2, &lanes);
        });
        assert!(conflicted.atomic_conflict_cycles > 8 * spread.atomic_conflict_cycles);
        assert!(conflicted.time_us > spread.time_us);
    }

    #[test]
    fn readonly_cache_reuse_avoids_dram_traffic() {
        let device = GpuDevice::titan_x();
        let buffer = device.memory().alloc_zeroed::<f32>(1 << 20).unwrap();
        // Re-reading the same 8 rows: high hit rate.
        let reused = device.launch((1, 1), 32, |ctx| {
            ctx.begin_warp();
            for i in 0..1000u64 {
                let addr = buffer.addr(((i % 8) * 16) as usize);
                ctx.read_readonly(&[addr]);
            }
        });
        // Streaming fresh rows every access: all misses.
        let streamed = device.launch((1, 1), 32, |ctx| {
            ctx.begin_warp();
            for i in 0..1000usize {
                ctx.read_readonly(&[buffer.addr(i * 64)]);
            }
        });
        assert!(reused.rocache_hit_rate > 0.95);
        assert!(streamed.rocache_hit_rate < 0.05);
        assert!(streamed.dram_bytes > 50 * reused.dram_bytes.max(1));
    }

    #[test]
    fn diverged_loop_charges_max_lane() {
        let device = GpuDevice::titan_x();
        let even = device.launch((1, 1), 32, |ctx| {
            ctx.begin_warp();
            ctx.diverged_loop(&[10; 32], 2);
        });
        let skewed = device.launch((1, 1), 32, |ctx| {
            ctx.begin_warp();
            let mut lanes = [1u64; 32];
            lanes[0] = 1000;
            ctx.diverged_loop(&lanes, 2);
        });
        assert!(skewed.time_us > even.time_us);
    }

    #[test]
    fn l2_working_set_reads_avoid_dram() {
        let device = GpuDevice::titan_x();
        let small_ws = 64 * 1024; // fits the 3 MB L2
        let big_ws = 64 << 20; // exceeds it
        let buffer = device.memory().alloc_zeroed::<f32>(1 << 20).unwrap();
        let addrs: Vec<u64> = (0..32).map(|lane| buffer.addr(lane * 999)).collect();
        let cached = device.launch((1, 1), 32, |ctx| {
            ctx.begin_warp();
            ctx.read_global_ws(&addrs, small_ws);
        });
        let uncached = device.launch((1, 1), 32, |ctx| {
            ctx.begin_warp();
            ctx.read_global_ws(&addrs, big_ws);
        });
        assert_eq!(cached.dram_bytes, 0);
        assert!(uncached.dram_bytes > 0);
        // Transactions are issued either way.
        assert_eq!(cached.transactions, uncached.transactions);
    }

    #[test]
    fn readonly_ws_misses_stay_on_chip_when_fitting_l2() {
        let device = GpuDevice::titan_x();
        let buffer = device.memory().alloc_zeroed::<f32>(1 << 20).unwrap();
        // Streaming pattern: all read-only cache misses.
        let run = |ws: usize| {
            device.launch((1, 1), 32, |ctx| {
                ctx.begin_warp();
                for i in 0..512usize {
                    ctx.read_readonly_ws(&[buffer.addr(i * 64)], ws);
                }
            })
        };
        let on_chip = run(128 * 1024);
        let off_chip = run(64 << 20);
        assert!(on_chip.rocache_hit_rate < 0.1);
        assert_eq!(on_chip.dram_bytes, 0);
        assert!(off_chip.dram_bytes > 0);
    }

    #[test]
    fn shared_write_amortizes_dram_across_siblings() {
        let device = GpuDevice::titan_x();
        let buffer = device.memory().alloc_zeroed::<f32>(1 << 16).unwrap();
        let addrs: Vec<u64> = (0..32).map(|lane| buffer.addr(lane * 64)).collect();
        let solo = device.launch((1, 1), 32, |ctx| {
            ctx.begin_warp();
            ctx.write_global_shared(&addrs, 1);
        });
        let shared = device.launch((1, 1), 32, |ctx| {
            ctx.begin_warp();
            ctx.write_global_shared(&addrs, 8);
        });
        assert_eq!(solo.dram_bytes, 8 * shared.dram_bytes);
        assert_eq!(solo.transactions, shared.transactions);
    }

    #[test]
    fn read_global_range_l2_counts_transactions_without_dram() {
        let device = GpuDevice::titan_x();
        let buffer = device.memory().alloc_zeroed::<f32>(4096).unwrap();
        let stats = device.launch((1, 1), 32, |ctx| {
            ctx.begin_warp();
            ctx.read_global_range_l2(buffer.addr(0), 4096 * 4);
        });
        assert_eq!(stats.dram_bytes, 0);
        assert_eq!(stats.transactions, (4096 * 4 / 32) as u64);
    }

    #[test]
    fn shared_memory_limits_occupancy() {
        // Same per-block work, but one variant declares 48 KB of shared
        // memory per block: only 2 blocks fit per SM instead of 16, so the
        // launch needs more waves and takes longer.
        let device = GpuDevice::titan_x();
        let blocks = device.config().num_sms * 16;
        let body = |ctx: &mut BlockCtx| {
            ctx.begin_warp();
            ctx.compute(100_000);
        };
        let unconstrained = device.launch_with_shared((blocks, 1), 128, 0, body);
        let constrained = device.launch_with_shared((blocks, 1), 128, 48 * 1024, body);
        assert_eq!(unconstrained.waves, 1);
        assert!(constrained.waves >= 8);
        assert!(constrained.time_us > 4.0 * unconstrained.time_us);
    }

    #[test]
    fn kernel_statistics_are_deterministic() {
        // Blocks run on host threads in nondeterministic order, but stats are
        // collected per block slot and reduced in launch order — two runs of
        // the same kernel must price identically.
        let device = GpuDevice::titan_x();
        let buffer = device.memory().alloc_zeroed::<f32>(1 << 16).unwrap();
        let run = || {
            device.launch((64, 4), 128, |ctx| {
                for w in 0..ctx.warps_per_block() {
                    ctx.begin_warp();
                    let base = (ctx.block_x() * 128 + w * 32) % 60_000;
                    let addrs: Vec<u64> =
                        (0..32).map(|lane| buffer.addr(base + lane * 7)).collect();
                    ctx.read_global(&addrs);
                    ctx.read_readonly(&addrs);
                    ctx.compute(ctx.block_y() as u64 + 3);
                }
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.time_us.to_bits(), b.time_us.to_bits());
        assert_eq!(a.dram_bytes, b.dram_bytes);
        assert_eq!(a.transactions, b.transactions);
        assert_eq!(a.rocache_hit_rate.to_bits(), b.rocache_hit_rate.to_bits());
    }

    #[test]
    fn recording_captures_narrated_and_functional_events() {
        use crate::record::AccessKind;
        let device = GpuDevice::titan_x();
        let buffer = device.memory().alloc_zeroed::<f32>(256).unwrap();
        device.start_recording();
        device.launch((2, 1), 32, |ctx| {
            ctx.begin_warp();
            let base = ctx.block_x() * 32;
            let addrs: Vec<u64> = (0..32).map(|lane| buffer.addr(base + lane)).collect();
            ctx.read_global(&addrs);
            let value = buffer.get(base);
            ctx.syncthreads();
            // SAFETY: each block writes a distinct element.
            unsafe { buffer.write(base, value + 1.0) };
            ctx.write_global(&[buffer.addr(base)]);
        });
        let log = device.stop_recording();
        assert_eq!(log.launches.len(), 1);
        let launch = &log.launches[0];
        assert_eq!(launch.grid, (2, 1));
        assert_eq!(launch.block_threads, 32);
        assert_eq!(launch.blocks.len(), 2);
        assert!(launch.allocations.contains(&(buffer.addr(0), 256 * 4)));
        for (block, record) in launch.blocks.iter().enumerate() {
            assert_eq!(record.block, block);
            // 32 narrated reads + 1 functional read + 1 functional write
            // + 1 narrated write.
            assert_eq!(record.events.len(), 35);
            let functional_write = record
                .events
                .iter()
                .find(|e| e.kind == AccessKind::FunctionalWrite)
                .expect("functional write recorded");
            assert_eq!(functional_write.addr, buffer.addr(block * 32));
            assert_eq!(
                functional_write.epoch, 1,
                "write happened after syncthreads"
            );
            let functional_read = record
                .events
                .iter()
                .find(|e| e.kind == AccessKind::FunctionalRead)
                .expect("functional read recorded");
            assert_eq!(functional_read.epoch, 0, "read happened before syncthreads");
        }
        // After stop_recording, launches are no longer captured and the
        // functional hooks go quiet (no recorder on any thread).
        device.launch((1, 1), 32, |ctx| {
            ctx.begin_warp();
            let _ = buffer.get(0);
            ctx.read_global(&[buffer.addr(0)]);
        });
        assert_eq!(log.event_count(), 70);
    }

    #[test]
    fn recording_spans_multiple_launches() {
        let device = GpuDevice::titan_x();
        let buffer = device.memory().alloc_zeroed::<f32>(32).unwrap();
        device.start_recording();
        for _ in 0..3 {
            device.launch((1, 1), 32, |ctx| {
                ctx.begin_warp();
                ctx.read_global(&[buffer.addr(0)]);
            });
        }
        let log = device.stop_recording();
        assert_eq!(log.launches.len(), 3);
        assert_eq!(log.event_count(), 3);
    }

    #[test]
    #[should_panic(expected = "was not recording")]
    fn stop_recording_without_start_panics() {
        let device = GpuDevice::titan_x();
        let _ = device.stop_recording();
    }

    #[test]
    #[should_panic(expected = "exceeds per-SM capacity")]
    fn oversized_shared_allocation_rejected() {
        let device = GpuDevice::titan_x();
        device.launch_with_shared((1, 1), 32, 1 << 20, |_| {});
    }

    #[test]
    #[should_panic(expected = "whole number of warps")]
    fn launch_rejects_partial_warp_blocks() {
        let device = GpuDevice::titan_x();
        device.launch((1, 1), 48, |_| {});
    }

    #[test]
    fn low_occupancy_grids_are_slower_per_work() {
        // The ParTI mode-2 phenomenon (§V-B): few blocks → idle SMs.
        let device = GpuDevice::titan_x();
        let work = 4_000u64;
        // Same total compute in 2 blocks vs 768 blocks.
        let narrow = device.launch((2, 1), 32, |ctx| {
            ctx.begin_warp();
            ctx.compute(work * 384);
        });
        let wide = device.launch((768, 1), 32, |ctx| {
            ctx.begin_warp();
            ctx.compute(work);
        });
        assert!(narrow.time_us > 10.0 * wide.time_us);
    }
}
