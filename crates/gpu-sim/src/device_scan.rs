//! A device-wide segmented scan, implemented as the actual parallel
//! algorithm (Sengupta et al.; StreamScan-style inter-block domino), not
//! just a cost formula.
//!
//! Structure, faithful to the GPU algorithm the paper builds on (§IV-D):
//!
//! 1. **warp level** — each 32-lane warp runs a Hillis–Steele segmented
//!    inclusive scan in registers: `log2(32)` shuffle steps, where a lane
//!    adds its `d`-distant neighbour's partial sum unless a segment head
//!    lies between them;
//! 2. **block level** — the last partial sum and the "open segment" flag of
//!    each warp are combined through shared memory with a serial scan over
//!    the (few) warps, then broadcast back;
//! 3. **device level** — each block publishes an outgoing carry (the sum of
//!    its trailing open segment); carries propagate block-to-block in launch
//!    order, the adjacent-synchronization domino of StreamScan, and a second
//!    sweep folds the incoming carry into each block's leading open segment.
//!
//! Every phase performs its real data movement on device buffers and charges
//! the corresponding shuffle/shared/sync/global costs, so this module both
//! *computes* segmented scans and *prices* them.

use crate::exec::GpuDevice;
use crate::memory::DeviceBuffer;
use crate::stats::KernelStats;

/// Warp width the scan is written for (matches `DeviceConfig::warp_size`).
const WARP: usize = 32;

/// Result of a device segmented scan.
pub struct DeviceScan {
    /// Merged statistics of the scan kernel and the carry sweep.
    pub stats: KernelStats,
}

/// Runs a segmented inclusive scan over `values` with `head_flags` (packed
/// bits, bit `i` set when element `i` starts a segment; element 0 is always
/// treated as a head), writing the scanned values into `out`.
///
/// `block_size` threads per block, one element per thread.
///
/// # Panics
/// If buffer lengths disagree or `block_size` is not a whole number of warps.
pub fn segmented_scan_device(
    device: &GpuDevice,
    values: &DeviceBuffer<f32>,
    head_flags: &DeviceBuffer<u8>,
    n: usize,
    out: &DeviceBuffer<f32>,
    block_size: usize,
) -> DeviceScan {
    assert!(values.len() >= n, "value buffer too short");
    assert!(out.len() >= n, "output buffer too short");
    assert!(head_flags.len() * 8 >= n, "flag buffer too short");
    assert_eq!(
        block_size % WARP,
        0,
        "block size must be a whole number of warps"
    );
    let blocks = n.div_ceil(block_size).max(1);
    let memory = device.memory();
    // Per-block outgoing carry (sum of the trailing open segment) and a flag
    // telling whether the block is fully "open" (no head at all), in which
    // case the incoming carry flows through to the next block.
    let block_carry = memory.alloc_zeroed::<f32>(blocks).expect("carry buffer");
    let block_open = memory.alloc_zeroed::<u8>(blocks).expect("open-flag buffer");

    let head = |i: usize| head_flags.get(i / 8) & (1 << (i % 8)) != 0 || i == 0;

    // Pass 1: intra-block segmented scan + carry computation.
    let pass1 = device.launch((blocks, 1), block_size, |ctx| {
        let block = ctx.block_x();
        let base = block * block_size;
        if base >= n {
            return;
        }
        let warps = ctx.warps_per_block();
        // Shared memory: per-warp trailing sum + open flag.
        let mut warp_last_sum = vec![0.0f32; warps];
        let mut warp_all_open = vec![false; warps];
        for w in 0..warps {
            let warp_base = base + w * WARP;
            if warp_base >= n {
                break;
            }
            ctx.begin_warp();
            // Load lane registers (one coalesced read of values + flags).
            let lanes = WARP.min(n - warp_base);
            let addrs: Vec<u64> = (0..lanes).map(|l| values.addr(warp_base + l)).collect();
            ctx.read_global(&addrs);
            ctx.read_global_range(head_flags.addr(warp_base / 8), lanes / 8 + 1);
            let mut register: Vec<f32> = (0..lanes).map(|l| values.get(warp_base + l)).collect();
            // `head_dist[l]`: lanes since the most recent head at or before l.
            let mut head_since: Vec<usize> = (0..lanes)
                .map(|l| {
                    let mut distance = 0;
                    while distance <= l && !head(warp_base + l - distance) {
                        distance += 1;
                    }
                    distance
                })
                .collect();
            // Hillis–Steele: log2(WARP) shuffle steps.
            let mut d = 1usize;
            while d < WARP {
                ctx.shuffle(1);
                let snapshot = register.clone();
                for l in 0..lanes {
                    // Lane l takes lane l−d's value unless a head separates
                    // them (head_since < d means a head is within d lanes).
                    if l >= d && head_since[l] >= d {
                        register[l] += snapshot[l - d];
                    }
                }
                // Heads seen propagate: head distance saturates.
                for item in head_since.iter_mut() {
                    *item = (*item).min(WARP);
                }
                d <<= 1;
            }
            ctx.compute(1);
            // Write warp results to the block-shared combine array.
            ctx.shared(2);
            warp_last_sum[w] = register[lanes - 1];
            warp_all_open[w] = (0..lanes).all(|l| !head(warp_base + l));
            // Stage the warp-scanned values into the output (they still need
            // block/device carries folded in).
            let out_addrs: Vec<u64> = (0..lanes).map(|l| out.addr(warp_base + l)).collect();
            ctx.write_global(&out_addrs);
            for (l, &v) in register.iter().enumerate() {
                // SAFETY: each element is written by exactly one lane.
                unsafe { out.write(warp_base + l, v) };
            }
        }
        // Block-level combine: serial scan over warp carries through shared
        // memory, folding each warp's incoming carry into its leading open
        // run.
        ctx.syncthreads();
        let active_warps = warps.min((n - base).div_ceil(WARP));
        let mut incoming = 0.0f32;
        for w in 0..active_warps {
            ctx.shared(2);
            if incoming != 0.0 {
                // Fold into this warp's leading open segment elements.
                let warp_base = base + w * WARP;
                let lanes = WARP.min(n - warp_base);
                for l in 0..lanes {
                    if head(warp_base + l) {
                        break;
                    }
                    // SAFETY: same single-writer discipline as above.
                    unsafe { out.write(warp_base + l, out.get(warp_base + l) + incoming) };
                }
                // A fully open warp extends the incoming carry.
            }
            incoming = if warp_all_open[w] {
                incoming + warp_last_sum[w]
            } else {
                warp_last_sum[w]
            };
        }
        ctx.syncthreads();
        // Publish the block's outgoing carry and openness.
        let block_elems = block_size.min(n - base);
        let all_open = (0..block_elems).all(|l| !head(base + l));
        ctx.write_global(&[block_carry.addr(block), block_open.addr(block)]);
        // SAFETY: one block writes its own slot.
        unsafe {
            block_carry.write(block, incoming);
            block_open.write(block, u8::from(all_open));
        }
        // The StreamScan domino: wait for the previous block's carry.
        ctx.adjacent_sync();
    });

    // Device-level carry propagation (the domino order is sequential by
    // construction; we execute it on the host exactly as the adjacent-sync
    // chain resolves it on hardware, having already charged the waits).
    let mut carry_in = vec![0.0f32; blocks];
    let mut running = 0.0f32;
    for (b, slot) in carry_in.iter_mut().enumerate() {
        *slot = running;
        running = if block_open.get(b) == 1 {
            running + block_carry.get(b)
        } else {
            block_carry.get(b)
        };
    }

    // Pass 2: fold incoming carries into each block's leading open run.
    let pass2 = device.launch((blocks, 1), block_size, |ctx| {
        let block = ctx.block_x();
        let base = block * block_size;
        if base >= n || carry_in[block] == 0.0 {
            return;
        }
        ctx.begin_warp();
        ctx.read_global(&[block_carry.addr(block.saturating_sub(1))]);
        let block_elems = block_size.min(n - base);
        let mut touched: Vec<u64> = Vec::new();
        for l in 0..block_elems {
            if head(base + l) {
                break;
            }
            touched.push(out.addr(base + l));
            // SAFETY: single writer per element in this pass.
            unsafe { out.write(base + l, out.get(base + l) + carry_in[block]) };
        }
        for chunk in touched.chunks(WARP) {
            ctx.read_global(chunk);
            ctx.write_global(chunk);
        }
    });

    let mut stats = pass1;
    stats.merge(&pass2);
    DeviceScan { stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::segmented_scan_inclusive;

    fn pack_flags(heads: &[bool]) -> Vec<u8> {
        let mut bytes = vec![0u8; heads.len().div_ceil(8)];
        for (i, &h) in heads.iter().enumerate() {
            if h {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        bytes
    }

    fn run_case(values: &[f32], heads: &[bool], block_size: usize) -> Vec<f32> {
        let device = GpuDevice::titan_x();
        let memory = device.memory();
        let v = memory.alloc_from_slice(values).unwrap();
        let f = memory.alloc_from_slice(&pack_flags(heads)).unwrap();
        let out = memory.alloc_zeroed::<f32>(values.len()).unwrap();
        let scan = segmented_scan_device(&device, &v, &f, values.len(), &out, block_size);
        assert!(scan.stats.time_us > 0.0);
        out.to_vec()
    }

    #[test]
    fn matches_host_reference_small() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let heads = [true, false, true, false, false, true, false];
        let device_result = run_case(&values, &heads, 32);
        let host = segmented_scan_inclusive(&values, &heads);
        assert_eq!(device_result, host);
    }

    #[test]
    fn segment_spanning_warps_within_a_block() {
        // One segment of 70 elements: crosses two warp boundaries.
        let values = vec![1.0f32; 70];
        let mut heads = vec![false; 70];
        heads[0] = true;
        let device_result = run_case(&values, &heads, 128);
        let expected: Vec<f32> = (1..=70).map(|i| i as f32).collect();
        assert_eq!(device_result, expected);
    }

    #[test]
    fn segment_spanning_blocks() {
        // 300 elements, block size 64: the single segment spans 5 blocks and
        // exercises the domino carry.
        let values = vec![2.0f32; 300];
        let mut heads = vec![false; 300];
        heads[0] = true;
        let device_result = run_case(&values, &heads, 64);
        let expected: Vec<f32> = (1..=300).map(|i| 2.0 * i as f32).collect();
        assert_eq!(device_result, expected);
    }

    #[test]
    fn many_short_segments() {
        let n = 500;
        let values: Vec<f32> = (0..n).map(|i| (i % 7) as f32 + 0.5).collect();
        let heads: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let device_result = run_case(&values, &heads, 96);
        let host = segmented_scan_inclusive(&values, &heads);
        for (i, (d, h)) in device_result.iter().zip(&host).enumerate() {
            assert!((d - h).abs() < 1e-4, "mismatch at {i}: {d} vs {h}");
        }
    }

    #[test]
    fn heads_at_block_boundaries() {
        let n = 256;
        let values = vec![1.0f32; n];
        let heads: Vec<bool> = (0..n).map(|i| i % 64 == 0).collect();
        let device_result = run_case(&values, &heads, 64);
        let host = segmented_scan_inclusive(&values, &heads);
        assert_eq!(device_result, host);
    }

    #[test]
    fn randomized_against_host_reference() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        for trial in 0..20 {
            let n = rng.gen_range(1..700);
            let values: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let heads: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.15)).collect();
            let block_size = [32, 64, 128, 256][trial % 4];
            let device_result = run_case(&values, &heads, block_size);
            let host = segmented_scan_inclusive(&values, &heads);
            for (i, (d, h)) in device_result.iter().zip(&host).enumerate() {
                assert!(
                    (d - h).abs() < 1e-3 * (1.0 + h.abs()),
                    "trial {trial} mismatch at {i}: {d} vs {h}"
                );
            }
        }
    }

    #[test]
    fn scan_cost_scales_with_input() {
        let device = GpuDevice::titan_x();
        let memory = device.memory();
        let run = |n: usize| {
            let v = memory.alloc_zeroed::<f32>(n).unwrap();
            let f = memory.alloc_zeroed::<u8>(n.div_ceil(8)).unwrap();
            let out = memory.alloc_zeroed::<f32>(n).unwrap();
            segmented_scan_device(&device, &v, &f, n, &out, 128)
                .stats
                .time_us
        };
        assert!(run(200_000) > run(2_000));
    }
}
