//! Symbolic warp-access expressions for static coalescing analysis.
//!
//! The dynamic side of the simulator ([`crate::coalesce`]) counts the
//! transactions of one *concrete* warp access. This module answers the same
//! question **before any launch exists**: a kernel's address expressions are
//! abstracted into two shapes — a contiguous byte range ([`RangeAccess`],
//! what the F-COO streaming reads produce) and a per-lane affine expression
//! ([`AffineLaneAccess`], `addr(lane) = base + lane · stride`, what strided
//! gathers produce) — whose transaction counts are evaluated over a
//! *symbolic* base address.
//!
//! Only the base is symbolic: every buffer in the simulator is allocated
//! element-aligned, so the base ranges over the element-aligned offsets
//! within one transaction segment. That set is tiny (≤ 8 offsets for 4-byte
//! elements and 32-byte sectors), which lets the worst case be computed
//! *exactly* by enumeration — each enumerated case is scored with the very
//! same [`crate::coalesce::transactions`] the timing model uses, so a static
//! "proved coalesced" can never disagree with a dynamic replay.

use crate::coalesce::transactions;

/// A contiguous warp-wide read of `bytes` starting at a symbolic
/// (element-aligned) base — the shape of the F-COO value/index/flag streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeAccess {
    /// Length of the range in bytes.
    pub bytes: usize,
    /// Alignment guarantee of the symbolic base, in bytes (element size).
    pub align_bytes: usize,
}

impl RangeAccess {
    /// A range of `bytes` whose base is aligned to `align_bytes`.
    pub fn new(bytes: usize, align_bytes: usize) -> Self {
        assert!(align_bytes > 0, "alignment must be positive");
        RangeAccess { bytes, align_bytes }
    }

    /// Minimum transactions any base admits: the aligned cover of the range.
    pub fn ideal_transactions(&self, segment_bytes: usize) -> usize {
        self.bytes.div_ceil(segment_bytes)
    }

    /// Exact worst case over all aligned bases: the range starts as late as
    /// possible within its first segment.
    pub fn max_transactions(&self, segment_bytes: usize) -> usize {
        if self.bytes == 0 {
            return 0;
        }
        let worst_offset = segment_bytes - self.align_bytes.min(segment_bytes);
        (worst_offset + self.bytes - 1) / segment_bytes + 1
    }

    /// True when even the worst-case base costs at most one extra transaction
    /// over the aligned ideal — the classic definition of a coalesced stream.
    pub fn is_coalesced(&self, segment_bytes: usize) -> bool {
        self.max_transactions(segment_bytes) <= self.ideal_transactions(segment_bytes) + 1
    }
}

/// A warp gather whose lane addresses are affine in the lane index:
/// `addr(lane) = base + lane · stride_bytes`, with `base` symbolic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineLaneAccess {
    /// Per-lane address stride in bytes.
    pub stride_bytes: u64,
    /// Bytes each lane reads.
    pub elem_bytes: u32,
    /// Number of participating lanes (≤ warp width).
    pub lanes: u32,
}

impl AffineLaneAccess {
    /// The contiguous pattern: lane strides equal the element size.
    pub fn contiguous(elem_bytes: u32, lanes: u32) -> Self {
        AffineLaneAccess {
            stride_bytes: elem_bytes as u64,
            elem_bytes,
            lanes,
        }
    }

    /// An arbitrary affine stride.
    pub fn strided(stride_bytes: u64, elem_bytes: u32, lanes: u32) -> Self {
        AffineLaneAccess {
            stride_bytes,
            elem_bytes,
            lanes,
        }
    }

    /// The concrete lane addresses for a given base assignment.
    pub fn addrs(&self, base: u64) -> Vec<u64> {
        (0..self.lanes as u64)
            .map(|lane| base + lane * self.stride_bytes)
            .collect()
    }

    /// Transactions for one concrete base — scored by the dynamic model's
    /// own [`transactions`] so static and dynamic counts cannot diverge.
    pub fn transactions_at(&self, base: u64, segment_bytes: usize) -> usize {
        transactions(&self.addrs(base), segment_bytes)
    }

    /// Minimum transactions for this many lanes of useful bytes.
    pub fn ideal_transactions(&self, segment_bytes: usize) -> usize {
        let useful = self.lanes as usize * self.elem_bytes as usize;
        useful.div_ceil(segment_bytes).max(usize::from(useful > 0))
    }

    /// Exact worst case over every element-aligned base, by enumerating the
    /// base's offset within one transaction segment.
    pub fn max_transactions(&self, segment_bytes: usize) -> usize {
        self.base_offsets(segment_bytes)
            .map(|offset| self.transactions_at(offset, segment_bytes))
            .max()
            .unwrap_or(0)
    }

    /// A base offset (within one segment) that attains
    /// [`AffineLaneAccess::max_transactions`] — the concrete half of a
    /// refutation counterexample.
    pub fn worst_base_offset(&self, segment_bytes: usize) -> u64 {
        self.base_offsets(segment_bytes)
            .max_by_key(|&offset| self.transactions_at(offset, segment_bytes))
            .unwrap_or(0)
    }

    /// Worst-case efficiency: ideal over worst-case transactions, in (0, 1].
    pub fn worst_case_efficiency(&self, segment_bytes: usize) -> f64 {
        let max = self.max_transactions(segment_bytes);
        if max == 0 {
            return 1.0;
        }
        self.ideal_transactions(segment_bytes) as f64 / max as f64
    }

    /// True when even the worst-case base costs at most one transaction over
    /// the ideal.
    pub fn is_coalesced(&self, segment_bytes: usize) -> bool {
        self.max_transactions(segment_bytes) <= self.ideal_transactions(segment_bytes) + 1
    }

    fn base_offsets(&self, segment_bytes: usize) -> impl Iterator<Item = u64> + '_ {
        let step = (self.elem_bytes as usize).max(1);
        (0..segment_bytes.max(1)).step_by(step).map(|o| o as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_warp_read_is_coalesced_worst_case() {
        // 32 f32 lanes: aligned base → 4 transactions, worst base → 5.
        let access = AffineLaneAccess::contiguous(4, 32);
        assert_eq!(access.ideal_transactions(32), 4);
        assert_eq!(access.transactions_at(0, 32), 4);
        assert_eq!(access.max_transactions(32), 5);
        assert!(access.is_coalesced(32));
    }

    #[test]
    fn wide_stride_is_refuted_for_every_base() {
        // 128-byte stride: every lane lands in its own segment regardless of
        // alignment, matching coalesce::strided_lanes_do_not_coalesce.
        let access = AffineLaneAccess::strided(128, 4, 32);
        assert_eq!(access.max_transactions(32), 32);
        assert!(!access.is_coalesced(32));
        assert!(access.worst_case_efficiency(32) <= 0.125);
    }

    #[test]
    fn worst_base_offset_attains_the_maximum() {
        for stride in [4u64, 8, 12, 16, 40, 64] {
            let access = AffineLaneAccess::strided(stride, 4, 32);
            let offset = access.worst_base_offset(32);
            assert_eq!(
                access.transactions_at(offset, 32),
                access.max_transactions(32),
                "stride {stride}"
            );
        }
    }

    #[test]
    fn symbolic_counts_agree_with_dynamic_transactions() {
        // The symbolic worst case must dominate every concrete base the
        // dynamic model could ever see (bases are element-aligned).
        for stride in [4u64, 8, 24, 32, 48] {
            let access = AffineLaneAccess::strided(stride, 4, 32);
            let worst = access.max_transactions(32);
            for base in (0..256u64).step_by(4) {
                let dynamic = transactions(&access.addrs(0x1000 + base), 32);
                assert!(dynamic <= worst, "stride {stride} base {base}");
            }
        }
    }

    #[test]
    fn range_stream_is_always_coalesced() {
        for bytes in [1usize, 4, 31, 32, 100, 4096] {
            let range = RangeAccess::new(bytes, 4);
            assert!(range.is_coalesced(32), "{bytes} bytes");
            assert!(range.max_transactions(32) <= range.ideal_transactions(32) + 1);
        }
        // An aligned range has no slack at all.
        let aligned = RangeAccess::new(128, 32);
        assert_eq!(aligned.max_transactions(32), 4);
    }

    #[test]
    fn degenerate_shapes() {
        assert_eq!(RangeAccess::new(0, 4).max_transactions(32), 0);
        let none = AffineLaneAccess::contiguous(4, 0);
        assert_eq!(none.max_transactions(32), 0);
        assert!((none.worst_case_efficiency(32) - 1.0).abs() < 1e-12);
        let one = AffineLaneAccess::strided(4096, 4, 1);
        assert_eq!(one.max_transactions(32), 1);
        assert!(one.is_coalesced(32));
    }
}
