//! Global-memory coalescing analysis.
//!
//! A warp's lane addresses are merged into the minimal set of aligned
//! memory transactions (L2 sectors), exactly the quantity NVIDIA profilers
//! report as `gld_transactions`. Fewer transactions per warp access is what
//! "coalesced access" means, and is the dominant term in the timing model for
//! these bandwidth-bound kernels.

/// Counts the distinct aligned `segment_bytes`-sized transactions covering
/// the given lane addresses. Duplicate and adjacent addresses merge.
pub fn transactions(addrs: &[u64], segment_bytes: usize) -> usize {
    debug_assert!(segment_bytes.is_power_of_two());
    if addrs.is_empty() {
        return 0;
    }
    let shift = segment_bytes.trailing_zeros();
    // Fast path for ≤ 32 lanes (one address per lane): linear membership in
    // a stack buffer beats hashing at warp width.
    if addrs.len() <= 32 {
        let mut segments = [0u64; 32];
        let mut count = 0usize;
        for &addr in addrs {
            let segment = addr >> shift;
            if !segments[..count].contains(&segment) {
                segments[count] = segment;
                count += 1;
            }
        }
        return count;
    }
    // Wider batches (e.g. several addresses per lane): sort and dedup.
    let mut segments: Vec<u64> = addrs.iter().map(|&addr| addr >> shift).collect();
    segments.sort_unstable();
    segments.dedup();
    segments.len()
}

/// Classifies a warp access for diagnostics: the ratio of actual transactions
/// to the minimum possible for this many lanes.
pub fn coalescing_efficiency(addrs: &[u64], segment_bytes: usize, elem_bytes: usize) -> f64 {
    if addrs.is_empty() {
        return 1.0;
    }
    let actual = transactions(addrs, segment_bytes) as f64;
    let useful_bytes = (addrs.len() * elem_bytes) as f64;
    let ideal = (useful_bytes / segment_bytes as f64).ceil().max(1.0);
    ideal / actual
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_f32_lanes_coalesce() {
        // 32 consecutive f32s = 128 bytes = 4 aligned 32-byte transactions.
        let addrs: Vec<u64> = (0..32).map(|lane| 4096 + lane * 4).collect();
        assert_eq!(transactions(&addrs, 32), 4);
    }

    #[test]
    fn strided_lanes_do_not_coalesce() {
        // Stride of 128 bytes: every lane in its own segment.
        let addrs: Vec<u64> = (0..32).map(|lane| lane * 128).collect();
        assert_eq!(transactions(&addrs, 32), 32);
    }

    #[test]
    fn broadcast_address_is_one_transaction() {
        let addrs = [512u64; 32];
        assert_eq!(transactions(&addrs, 32), 1);
    }

    #[test]
    fn unaligned_contiguous_span_costs_one_extra() {
        // 128 bytes starting 16 bytes into a segment touch 5 sectors.
        let addrs: Vec<u64> = (0..32).map(|lane| 16 + lane * 4).collect();
        assert_eq!(transactions(&addrs, 32), 5);
    }

    #[test]
    fn empty_warp_has_no_transactions() {
        assert_eq!(transactions(&[], 32), 0);
    }

    #[test]
    fn efficiency_is_one_for_coalesced_and_low_for_scattered() {
        let coalesced: Vec<u64> = (0..32).map(|lane| lane * 4).collect();
        assert!((coalescing_efficiency(&coalesced, 32, 4) - 1.0).abs() < 1e-9);
        let scattered: Vec<u64> = (0..32).map(|lane| lane * 4096).collect();
        assert!(coalescing_efficiency(&scattered, 32, 4) < 0.2);
    }
}
