//! A minimal CUDA-stream timeline for modeling kernel overlap.
//!
//! The paper's CP decomposition uses two streams: one runs SpMTTKRP kernels,
//! the other runs the CUBLAS-style dense operations, "overlapped
//! automatically when possible" (§V-E). This timeline tracks per-stream busy
//! time and cross-stream dependencies.
//!
//! The serving scheduler (`crates/serve`) places independent jobs on these
//! streams, so the timeline additionally offers checked ([`Timeline::try_push`],
//! [`Timeline::try_push_after`]) and grow-on-demand ([`Timeline::ensure_stream`])
//! variants of the enqueue API, plus per-stream busy-time and utilization
//! accessors for the scheduler's metrics.

/// Busy-time accounting for a set of streams.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Finish time of the last operation enqueued on each stream.
    stream_time: Vec<f64>,
    /// Sum of enqueued durations per stream (excludes dependency waits).
    stream_busy: Vec<f64>,
}

impl Timeline {
    /// Creates a timeline with `streams` streams, all idle at time zero.
    pub fn new(streams: usize) -> Self {
        let streams = streams.max(1);
        Timeline {
            stream_time: vec![0.0; streams],
            stream_busy: vec![0.0; streams],
        }
    }

    /// Number of streams currently tracked.
    pub fn streams(&self) -> usize {
        self.stream_time.len()
    }

    /// Grows the timeline so that `stream` is a valid index; new streams
    /// start idle at time zero. No-op when the stream already exists.
    pub fn ensure_stream(&mut self, stream: usize) {
        if stream >= self.stream_time.len() {
            self.stream_time.resize(stream + 1, 0.0);
            self.stream_busy.resize(stream + 1, 0.0);
        }
    }

    /// Enqueues `duration_us` of work on `stream`; returns its finish time.
    ///
    /// # Panics
    /// If `stream` is out of range, naming the stream and the stream count.
    /// Use [`Timeline::try_push`] or [`Timeline::ensure_stream`] for
    /// dynamically sized schedulers.
    pub fn push(&mut self, stream: usize, duration_us: f64) -> f64 {
        match self.try_push(stream, duration_us) {
            Some(finish) => finish,
            None => panic!(
                "stream {stream} out of range: timeline has {} streams",
                self.stream_time.len()
            ),
        }
    }

    /// Enqueues work on `stream` that cannot start before `earliest_us`
    /// (a dependency on another stream's event). Returns the finish time.
    ///
    /// # Panics
    /// If `stream` is out of range, naming the stream and the stream count.
    pub fn push_after(&mut self, stream: usize, earliest_us: f64, duration_us: f64) -> f64 {
        match self.try_push_after(stream, earliest_us, duration_us) {
            Some(finish) => finish,
            None => panic!(
                "stream {stream} out of range: timeline has {} streams",
                self.stream_time.len()
            ),
        }
    }

    /// Checked variant of [`Timeline::push`]: returns `None` instead of
    /// panicking when `stream` is out of range.
    pub fn try_push(&mut self, stream: usize, duration_us: f64) -> Option<f64> {
        let time = self.stream_time.get_mut(stream)?;
        *time += duration_us;
        self.stream_busy[stream] += duration_us;
        Some(*time)
    }

    /// Checked variant of [`Timeline::push_after`]: returns `None` instead
    /// of panicking when `stream` is out of range.
    pub fn try_push_after(
        &mut self,
        stream: usize,
        earliest_us: f64,
        duration_us: f64,
    ) -> Option<f64> {
        let time = self.stream_time.get_mut(stream)?;
        let start = time.max(earliest_us);
        *time = start + duration_us;
        self.stream_busy[stream] += duration_us;
        Some(*time)
    }

    /// Fault-injection hook: models a hung kernel by advancing `stream` by
    /// `stall_us` of *dead* time. The stall counts toward the makespan (the
    /// stream is blocked) but not toward busy time, exactly like a
    /// dependency wait. Returns the stream's new finish time.
    ///
    /// # Panics
    /// If `stream` is out of range, naming the stream and the stream count.
    pub fn stall(&mut self, stream: usize, stall_us: f64) -> f64 {
        match self.stream_time.get_mut(stream) {
            Some(time) => {
                *time += stall_us.max(0.0);
                *time
            }
            None => panic!(
                "stream {stream} out of range: timeline has {} streams",
                self.stream_time.len()
            ),
        }
    }

    /// Device-wide synchronization: all streams advance to the latest time.
    /// The idle gap this introduces does not count as busy time.
    pub fn sync_all(&mut self) -> f64 {
        let t = self.elapsed_us();
        for stream in &mut self.stream_time {
            *stream = t;
        }
        t
    }

    /// Current makespan: when the busiest stream finishes.
    pub fn elapsed_us(&self) -> f64 {
        self.stream_time.iter().copied().fold(0.0, f64::max)
    }

    /// Current busy time of one stream (finish time of its last operation).
    ///
    /// # Panics
    /// If `stream` is out of range, naming the stream and the stream count.
    pub fn stream_elapsed_us(&self, stream: usize) -> f64 {
        match self.stream_time.get(stream) {
            Some(&t) => t,
            None => panic!(
                "stream {stream} out of range: timeline has {} streams",
                self.stream_time.len()
            ),
        }
    }

    /// Total enqueued work on one stream in microseconds, excluding idle
    /// gaps from dependency waits. Returns zero for out-of-range streams.
    pub fn stream_busy_us(&self, stream: usize) -> f64 {
        self.stream_busy.get(stream).copied().unwrap_or(0.0)
    }

    /// Fraction of the timeline's makespan during which `stream` was busy,
    /// in `[0, 1]`. Zero when nothing has been enqueued anywhere.
    pub fn utilization(&self, stream: usize) -> f64 {
        let makespan = self.elapsed_us();
        if makespan <= 0.0 {
            return 0.0;
        }
        self.stream_busy_us(stream) / makespan
    }

    /// Per-stream utilization, one entry per stream.
    pub fn utilizations(&self) -> Vec<f64> {
        (0..self.streams()).map(|s| self.utilization(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_streams_overlap() {
        let mut timeline = Timeline::new(2);
        timeline.push(0, 100.0);
        timeline.push(1, 80.0);
        assert_eq!(timeline.elapsed_us(), 100.0);
    }

    #[test]
    fn dependencies_delay_start() {
        let mut timeline = Timeline::new(2);
        let mttkrp_done = timeline.push(0, 100.0);
        // Dense update must wait for the MTTKRP result.
        let finish = timeline.push_after(1, mttkrp_done, 30.0);
        assert_eq!(finish, 130.0);
        assert_eq!(timeline.elapsed_us(), 130.0);
    }

    #[test]
    fn push_after_does_not_rewind_busy_stream() {
        let mut timeline = Timeline::new(2);
        timeline.push(1, 500.0);
        let finish = timeline.push_after(1, 100.0, 10.0);
        assert_eq!(finish, 510.0);
    }

    #[test]
    fn sync_all_aligns_streams() {
        let mut timeline = Timeline::new(3);
        timeline.push(0, 10.0);
        timeline.push(2, 50.0);
        assert_eq!(timeline.sync_all(), 50.0);
        timeline.push(1, 5.0);
        assert_eq!(timeline.elapsed_us(), 55.0);
    }

    #[test]
    fn out_of_range_push_panics_with_named_stream() {
        let mut timeline = Timeline::new(2);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            timeline.push(5, 1.0);
        }))
        .unwrap_err();
        let message = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(message.contains("stream 5"), "got: {message}");
        assert!(message.contains("2 streams"), "got: {message}");
    }

    #[test]
    fn try_push_is_checked() {
        let mut timeline = Timeline::new(1);
        assert_eq!(timeline.try_push(0, 10.0), Some(10.0));
        assert_eq!(timeline.try_push(3, 10.0), None);
        assert_eq!(timeline.try_push_after(3, 0.0, 10.0), None);
        // The failed pushes left the timeline untouched.
        assert_eq!(timeline.elapsed_us(), 10.0);
    }

    #[test]
    fn ensure_stream_grows_on_demand() {
        let mut timeline = Timeline::new(1);
        timeline.ensure_stream(3);
        assert_eq!(timeline.streams(), 4);
        assert_eq!(timeline.push(3, 25.0), 25.0);
        // Growing to an existing stream is a no-op.
        timeline.ensure_stream(0);
        assert_eq!(timeline.streams(), 4);
    }

    #[test]
    fn utilization_excludes_dependency_waits() {
        let mut timeline = Timeline::new(2);
        timeline.push(0, 100.0);
        // Stream 1 waits 100 µs, then works 50 µs: busy 50 of 150 makespan.
        timeline.push_after(1, 100.0, 50.0);
        assert_eq!(timeline.stream_busy_us(0), 100.0);
        assert_eq!(timeline.stream_busy_us(1), 50.0);
        assert!((timeline.utilization(0) - 100.0 / 150.0).abs() < 1e-12);
        assert!((timeline.utilization(1) - 50.0 / 150.0).abs() < 1e-12);
        assert_eq!(timeline.utilizations().len(), 2);
    }

    #[test]
    fn sync_all_does_not_inflate_busy_time() {
        let mut timeline = Timeline::new(2);
        timeline.push(0, 40.0);
        timeline.sync_all();
        assert_eq!(timeline.stream_busy_us(1), 0.0);
        timeline.push(1, 10.0);
        assert_eq!(timeline.stream_busy_us(1), 10.0);
        assert_eq!(timeline.elapsed_us(), 50.0);
    }

    #[test]
    fn empty_timeline_reports_zero_utilization() {
        let timeline = Timeline::new(2);
        assert_eq!(timeline.utilization(0), 0.0);
        assert_eq!(timeline.stream_busy_us(9), 0.0);
    }
}
