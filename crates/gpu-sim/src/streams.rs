//! A minimal CUDA-stream timeline for modeling kernel overlap.
//!
//! The paper's CP decomposition uses two streams: one runs SpMTTKRP kernels,
//! the other runs the CUBLAS-style dense operations, "overlapped
//! automatically when possible" (§V-E). This timeline tracks per-stream busy
//! time and cross-stream dependencies.

/// Busy-time accounting for a set of streams.
#[derive(Debug, Clone)]
pub struct Timeline {
    stream_time: Vec<f64>,
}

impl Timeline {
    /// Creates a timeline with `streams` streams, all idle at time zero.
    pub fn new(streams: usize) -> Self {
        Timeline {
            stream_time: vec![0.0; streams.max(1)],
        }
    }

    /// Enqueues `duration_us` of work on `stream`; returns its finish time.
    pub fn push(&mut self, stream: usize, duration_us: f64) -> f64 {
        self.stream_time[stream] += duration_us;
        self.stream_time[stream]
    }

    /// Enqueues work on `stream` that cannot start before `earliest_us`
    /// (a dependency on another stream's event). Returns the finish time.
    pub fn push_after(&mut self, stream: usize, earliest_us: f64, duration_us: f64) -> f64 {
        let start = self.stream_time[stream].max(earliest_us);
        self.stream_time[stream] = start + duration_us;
        self.stream_time[stream]
    }

    /// Device-wide synchronization: all streams advance to the latest time.
    pub fn sync_all(&mut self) -> f64 {
        let t = self.elapsed_us();
        for stream in &mut self.stream_time {
            *stream = t;
        }
        t
    }

    /// Current makespan: when the busiest stream finishes.
    pub fn elapsed_us(&self) -> f64 {
        self.stream_time.iter().copied().fold(0.0, f64::max)
    }

    /// Current busy time of one stream.
    pub fn stream_elapsed_us(&self, stream: usize) -> f64 {
        self.stream_time[stream]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_streams_overlap() {
        let mut timeline = Timeline::new(2);
        timeline.push(0, 100.0);
        timeline.push(1, 80.0);
        assert_eq!(timeline.elapsed_us(), 100.0);
    }

    #[test]
    fn dependencies_delay_start() {
        let mut timeline = Timeline::new(2);
        let mttkrp_done = timeline.push(0, 100.0);
        // Dense update must wait for the MTTKRP result.
        let finish = timeline.push_after(1, mttkrp_done, 30.0);
        assert_eq!(finish, 130.0);
        assert_eq!(timeline.elapsed_us(), 130.0);
    }

    #[test]
    fn push_after_does_not_rewind_busy_stream() {
        let mut timeline = Timeline::new(2);
        timeline.push(1, 500.0);
        let finish = timeline.push_after(1, 100.0, 10.0);
        assert_eq!(finish, 510.0);
    }

    #[test]
    fn sync_all_aligns_streams() {
        let mut timeline = Timeline::new(3);
        timeline.push(0, 10.0);
        timeline.push(2, 50.0);
        assert_eq!(timeline.sync_all(), 50.0);
        timeline.push(1, 5.0);
        assert_eq!(timeline.elapsed_us(), 55.0);
    }
}
