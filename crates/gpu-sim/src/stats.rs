//! Cost counters and the analytic timing model.
//!
//! Functional execution produces one [`BlockStats`] per thread block; the
//! timing model folds them into a [`KernelStats`] with a simulated duration.
//!
//! # Timing model
//!
//! Blocks are scheduled in waves of [`DeviceConfig::concurrent_blocks`]
//! resident blocks, in launch order. For each wave:
//!
//! * **compute bound** — the wave lasts at least as long as its slowest
//!   block. A block's compute time is `max(longest warp, total warp cycles /
//!   warp_schedulers)` — the first term captures intra-block load imbalance
//!   and divergence, the second throughput saturation;
//! * **memory bound** — the wave also lasts at least `wave DRAM bytes /
//!   device bandwidth`; transferred bytes are `transactions ×
//!   transaction_bytes` plus read-only cache miss fills.
//!
//! The kernel time is the sum of wave times plus a fixed launch overhead.
//! Every constant lives in [`DeviceConfig`]; nothing is fit to the paper's
//! numbers — the reproduction targets performance *shape*, not absolute
//! microseconds.

use crate::config::DeviceConfig;

/// Per-block cost counters, filled during functional execution.
#[derive(Debug, Clone, Default)]
pub struct BlockStats {
    /// Cycles of the longest warp in the block.
    pub max_warp_cycles: u64,
    /// Total cycles summed over the block's warps.
    pub total_warp_cycles: u64,
    /// Global-memory transactions issued (reads + writes, post-coalescing).
    pub transactions: u64,
    /// DRAM bytes moved (transactions × sector size + cache miss fills).
    pub dram_bytes: u64,
    /// Read-only cache hits.
    pub rocache_hits: u64,
    /// Read-only cache misses.
    pub rocache_misses: u64,
    /// Atomic operations issued.
    pub atomics: u64,
    /// Extra serialization cycles caused by intra-warp atomic conflicts.
    pub atomic_conflict_cycles: u64,
    /// Shared-memory accesses.
    pub shared_ops: u64,
    /// Warp-shuffle instructions.
    pub shuffles: u64,
    /// Number of warps that executed in this block.
    pub warps: u64,
}

impl BlockStats {
    /// Simulated compute time of this block in microseconds.
    pub fn compute_time_us(&self, device: &DeviceConfig) -> f64 {
        let throughput = self.total_warp_cycles as f64 / device.warp_schedulers as f64;
        let latency = self.max_warp_cycles as f64;
        latency.max(throughput) / device.cycles_per_us()
    }
}

/// Aggregated statistics and simulated duration of one kernel launch.
#[derive(Debug, Clone, Default)]
pub struct KernelStats {
    /// Simulated kernel duration in microseconds.
    pub time_us: f64,
    /// Number of blocks launched.
    pub blocks: u64,
    /// Number of scheduling waves.
    pub waves: u64,
    /// Sum of global memory transactions.
    pub transactions: u64,
    /// Sum of DRAM bytes moved.
    pub dram_bytes: u64,
    /// Read-only cache hit rate across all blocks (0 when unused).
    pub rocache_hit_rate: f64,
    /// Total atomics issued.
    pub atomics: u64,
    /// Total atomic conflict serialization cycles.
    pub atomic_conflict_cycles: u64,
    /// Ratio of slowest to mean block compute time (load-imbalance gauge).
    pub imbalance: f64,
}

impl KernelStats {
    /// Folds per-block stats into kernel-level stats with the wave model,
    /// using the occupancy implied by the block size alone.
    pub fn from_blocks(blocks: &[BlockStats], block_threads: usize, device: &DeviceConfig) -> Self {
        Self::from_blocks_with_concurrency(blocks, device.concurrent_blocks(block_threads), device)
    }

    /// Folds per-block stats with an explicit number of concurrently
    /// resident blocks (e.g. when shared-memory usage limits occupancy).
    pub fn from_blocks_with_concurrency(
        blocks: &[BlockStats],
        concurrent: usize,
        device: &DeviceConfig,
    ) -> Self {
        if blocks.is_empty() {
            return KernelStats {
                time_us: device.launch_overhead_us,
                ..Default::default()
            };
        }
        let concurrent = concurrent.max(1);
        let mut time_us = device.launch_overhead_us;
        let mut waves = 0u64;
        for wave in blocks.chunks(concurrent) {
            waves += 1;
            let compute = wave
                .iter()
                .map(|b| b.compute_time_us(device))
                .fold(0.0f64, f64::max);
            let bytes: u64 = wave.iter().map(|b| b.dram_bytes).sum();
            let memory = bytes as f64 / (device.mem_bandwidth_gbs * 1e3);
            time_us += compute.max(memory);
        }
        let hits: u64 = blocks.iter().map(|b| b.rocache_hits).sum();
        let misses: u64 = blocks.iter().map(|b| b.rocache_misses).sum();
        let compute_times: Vec<f64> = blocks.iter().map(|b| b.compute_time_us(device)).collect();
        let mean = compute_times.iter().sum::<f64>() / compute_times.len() as f64;
        let max = compute_times.iter().fold(0.0f64, |a, &b| a.max(b));
        KernelStats {
            time_us,
            blocks: blocks.len() as u64,
            waves,
            transactions: blocks.iter().map(|b| b.transactions).sum(),
            dram_bytes: blocks.iter().map(|b| b.dram_bytes).sum(),
            rocache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            atomics: blocks.iter().map(|b| b.atomics).sum(),
            atomic_conflict_cycles: blocks.iter().map(|b| b.atomic_conflict_cycles).sum(),
            imbalance: if mean > 0.0 { max / mean } else { 1.0 },
        }
    }

    /// Adds another kernel's stats (for multi-kernel operations), summing
    /// durations and counters.
    pub fn merge(&mut self, other: &KernelStats) {
        self.time_us += other.time_us;
        self.blocks += other.blocks;
        self.waves += other.waves;
        self.transactions += other.transactions;
        self.dram_bytes += other.dram_bytes;
        self.atomics += other.atomics;
        self.atomic_conflict_cycles += other.atomic_conflict_cycles;
        // Hit rate and imbalance become block-weighted approximations.
        if other.blocks > 0 {
            let total = (self.blocks + other.blocks) as f64;
            let weight = other.blocks as f64 / total;
            self.rocache_hit_rate =
                self.rocache_hit_rate * (1.0 - weight) + other.rocache_hit_rate * weight;
            self.imbalance = self.imbalance.max(other.imbalance);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(max_warp: u64, total: u64, bytes: u64) -> BlockStats {
        BlockStats {
            max_warp_cycles: max_warp,
            total_warp_cycles: total,
            dram_bytes: bytes,
            warps: 4,
            ..Default::default()
        }
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let device = DeviceConfig::titan_x();
        let stats = KernelStats::from_blocks(&[], 128, &device);
        assert!((stats.time_us - device.launch_overhead_us).abs() < 1e-12);
        assert_eq!(stats.blocks, 0);
    }

    #[test]
    fn compute_time_is_latency_or_throughput_bound() {
        let device = DeviceConfig::titan_x();
        // One enormous warp dominates (imbalance).
        let unbalanced = block(10_000, 10_400, 0);
        // Same total work spread evenly over 4 schedulers.
        let balanced = block(2_600, 10_400, 0);
        assert!(unbalanced.compute_time_us(&device) > 3.0 * balanced.compute_time_us(&device));
    }

    #[test]
    fn memory_bound_wave_scales_with_bytes() {
        let device = DeviceConfig::titan_x();
        let light = KernelStats::from_blocks(&[block(10, 10, 1_000)], 128, &device);
        let heavy = KernelStats::from_blocks(&[block(10, 10, 100_000_000)], 128, &device);
        assert!(heavy.time_us > 10.0 * light.time_us);
    }

    #[test]
    fn more_waves_take_longer() {
        let device = DeviceConfig::titan_x();
        let concurrent = device.concurrent_blocks(128);
        let one_wave: Vec<BlockStats> = (0..concurrent)
            .map(|_| block(100_000, 400_000, 0))
            .collect();
        let two_waves: Vec<BlockStats> = (0..concurrent * 2)
            .map(|_| block(100_000, 400_000, 0))
            .collect();
        let a = KernelStats::from_blocks(&one_wave, 128, &device);
        let b = KernelStats::from_blocks(&two_waves, 128, &device);
        assert_eq!(a.waves, 1);
        assert_eq!(b.waves, 2);
        assert!(b.time_us > a.time_us * 1.5);
    }

    #[test]
    fn imbalance_gauge_detects_stragglers() {
        let device = DeviceConfig::titan_x();
        let mut blocks = vec![block(100, 400, 0); 10];
        blocks.push(block(10_000, 10_000, 0));
        let stats = KernelStats::from_blocks(&blocks, 128, &device);
        assert!(stats.imbalance > 5.0);
    }

    #[test]
    fn merge_accumulates_time_and_counters() {
        let device = DeviceConfig::titan_x();
        let mut a = KernelStats::from_blocks(&[block(10, 40, 100)], 128, &device);
        let b = KernelStats::from_blocks(&[block(10, 40, 100)], 128, &device);
        let t = a.time_us;
        a.merge(&b);
        assert!((a.time_us - 2.0 * t).abs() < 1e-9);
        assert_eq!(a.blocks, 2);
        assert_eq!(a.dram_bytes, 200);
    }
}
