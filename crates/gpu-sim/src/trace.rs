//! Structured event/span tracing for the profiling layer.
//!
//! When a [`GpuDevice`](crate::GpuDevice) is put into tracing mode
//! ([`GpuDevice::start_tracing`](crate::GpuDevice::start_tracing)), every
//! launch captures a [`LaunchTrace`]: per-block memory events (transactions,
//! cache probes, atomics — emitted by the [`BlockCtx`](crate::BlockCtx)
//! narration methods) plus per-wave spans whose timestamps replicate the
//! analytic timing fold of [`KernelStats`](crate::KernelStats) exactly, so a
//! trace is consistent with the simulated duration bit for bit.
//!
//! The tracer follows the same two design rules as the sanitizer recorder
//! ([`record`](crate::record)) and the fault injector
//! ([`faults`](crate::faults)):
//!
//! * **zero-cost when disabled** — every hook is behind a single relaxed
//!   atomic load ([`tracing_active`]); a non-tracing run executes the exact
//!   same instruction stream as an uninstrumented one, so tracing can never
//!   perturb results or simulated timings;
//! * **deterministic regardless of host interleaving** — events are
//!   collected per block on the executing pool thread (a thread-local
//!   collector, no shared mutable state) and reassembled in x-major launch
//!   order, and all timestamps come from the simulated timeline, never the
//!   wall clock. Two runs of the same seed produce byte-identical traces.
//!
//! Export goes through [`ChromeTrace`], a hand-rolled Chrome-trace/Perfetto
//! JSON builder (the dependency set has no JSON library, and hand-formatting
//! keeps the bytes reproducible), and [`KernelCounters`], the per-kernel
//! counter report (achieved vs. peak bandwidth, coalescing efficiency, cache
//! hit rate, atomic serialization, effective-warp occupancy).

use crate::config::DeviceConfig;
use crate::stats::BlockStats;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global count of devices currently in tracing mode. Narration hooks consult
/// this first so that non-tracing runs pay one relaxed atomic load and
/// nothing else.
static TRACING_DEVICES: AtomicUsize = AtomicUsize::new(0);

/// True if any device is currently tracing (cheap global gate).
#[inline]
pub(crate) fn tracing_active() -> bool {
    TRACING_DEVICES.load(Ordering::Relaxed) > 0
}

pub(crate) fn tracing_device_added() {
    TRACING_DEVICES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn tracing_device_removed() {
    TRACING_DEVICES.fetch_sub(1, Ordering::Relaxed);
}

/// What kind of memory behaviour a [`MemoryEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryEventKind {
    /// Warp-wide global read (`read_global`, `read_global_ws`).
    GlobalRead,
    /// Warp-wide global write (`write_global`, `write_global_shared`).
    GlobalWrite,
    /// Contiguous streaming read (`read_global_range`,
    /// `read_global_range_l2`).
    StreamRead,
    /// Contiguous streaming write (`write_global_range`).
    StreamWrite,
    /// Read-only data cache probe batch (`read_readonly`,
    /// `read_readonly_ws`).
    CacheRead,
    /// Warp-wide `atomicAdd` (`atomic_add_f32`), including its write
    /// traffic.
    Atomic,
}

impl MemoryEventKind {
    /// Short stable label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            MemoryEventKind::GlobalRead => "global_read",
            MemoryEventKind::GlobalWrite => "global_write",
            MemoryEventKind::StreamRead => "stream_read",
            MemoryEventKind::StreamWrite => "stream_write",
            MemoryEventKind::CacheRead => "cache_read",
            MemoryEventKind::Atomic => "atomic",
        }
    }
}

/// One narrated memory operation observed while tracing: the counter deltas
/// it caused, plus the coalescing baseline.
#[derive(Debug, Clone)]
pub struct MemoryEvent {
    /// Warp the operation belongs to.
    pub warp: u32,
    /// What the operation was.
    pub kind: MemoryEventKind,
    /// Global-memory transactions the operation issued (post-coalescing).
    pub transactions: u64,
    /// Minimum transactions the operation's payload could have needed if
    /// perfectly coalesced (`ceil(bytes / transaction_bytes)`). Streaming
    /// ranges are coalesced by construction, so ideal equals actual there.
    pub ideal_transactions: u64,
    /// DRAM bytes the operation moved.
    pub dram_bytes: u64,
    /// Read-only cache hits (cache probes only).
    pub cache_hits: u64,
    /// Read-only cache misses (cache probes only).
    pub cache_misses: u64,
    /// Intra-warp atomic lanes issued (atomics only).
    pub atomic_lanes: u64,
    /// Worst per-element multiplicity of the atomic batch — the
    /// serialization factor the warp paid (atomics only, else 0).
    pub atomic_multiplicity: u64,
}

/// All memory events of one thread block, in program order.
#[derive(Debug, Clone, Default)]
pub struct BlockTrace {
    /// Linearized block index (x-major, matching launch order).
    pub block: usize,
    /// Warps that executed in the block (`begin_warp` calls).
    pub warps: u64,
    /// The block's memory events.
    pub events: Vec<MemoryEvent>,
}

/// One scheduling wave of a launch, on the simulated timeline.
///
/// The fields replicate the wave fold of
/// [`KernelStats::from_blocks_with_concurrency`](crate::KernelStats::from_blocks_with_concurrency):
/// `dur_us = max(compute_us, memory_us)` and consecutive waves abut, so the
/// last wave's end equals the kernel's simulated duration.
#[derive(Debug, Clone)]
pub struct WaveTrace {
    /// Start of the wave in microseconds from launch start (the first wave
    /// starts after the fixed launch overhead).
    pub start_us: f64,
    /// Wave duration (`max(compute_us, memory_us)`).
    pub dur_us: f64,
    /// Compute bound: slowest resident block.
    pub compute_us: f64,
    /// Memory bound: wave DRAM bytes over device bandwidth.
    pub memory_us: f64,
    /// Index of the first block scheduled in this wave.
    pub first_block: usize,
    /// Number of blocks in this wave.
    pub blocks: usize,
}

/// Everything traced for one kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchTrace {
    /// Grid shape of the launch.
    pub grid: (usize, usize),
    /// Threads per block.
    pub block_threads: usize,
    /// Concurrently resident blocks (wave width).
    pub concurrent: usize,
    /// Warps the launch configuration asked for
    /// (`blocks × block_threads / warp_size`).
    pub launched_warps: u64,
    /// Simulated duration, identical to the launch's
    /// [`KernelStats::time_us`](crate::KernelStats::time_us).
    pub time_us: f64,
    /// True when an injected launch failure dropped the kernel before any
    /// block ran (only the launch overhead was charged).
    pub dropped: bool,
    /// Per-block event traces, in linear block order.
    pub blocks: Vec<BlockTrace>,
    /// Wave spans on the simulated timeline.
    pub waves: Vec<WaveTrace>,
}

impl LaunchTrace {
    /// Assembles a launch trace from the per-block stats and event traces,
    /// replaying the exact wave fold of the timing model so trace timestamps
    /// agree with the returned [`KernelStats`](crate::KernelStats) bit for
    /// bit.
    pub(crate) fn assemble(
        grid: (usize, usize),
        block_threads: usize,
        concurrent: usize,
        stats: &[BlockStats],
        blocks: Vec<BlockTrace>,
        device: &DeviceConfig,
    ) -> Self {
        let concurrent = concurrent.max(1);
        let mut waves = Vec::new();
        let mut cursor = device.launch_overhead_us;
        for (index, wave) in stats.chunks(concurrent).enumerate() {
            let compute = wave
                .iter()
                .map(|b| b.compute_time_us(device))
                .fold(0.0f64, f64::max);
            let bytes: u64 = wave.iter().map(|b| b.dram_bytes).sum();
            let memory = bytes as f64 / (device.mem_bandwidth_gbs * 1e3);
            let dur = compute.max(memory);
            waves.push(WaveTrace {
                start_us: cursor,
                dur_us: dur,
                compute_us: compute,
                memory_us: memory,
                first_block: index * concurrent,
                blocks: wave.len(),
            });
            cursor += dur;
        }
        let total_blocks = grid.0 * grid.1;
        LaunchTrace {
            grid,
            block_threads,
            concurrent,
            launched_warps: (total_blocks * block_threads / device.warp_size.max(1)) as u64,
            time_us: if stats.is_empty() {
                device.launch_overhead_us
            } else {
                cursor
            },
            dropped: false,
            blocks,
            waves,
        }
    }

    /// A launch dropped by an injected launch failure: no blocks ran, only
    /// the launch overhead was charged.
    pub(crate) fn dropped(
        grid: (usize, usize),
        block_threads: usize,
        concurrent: usize,
        device: &DeviceConfig,
    ) -> Self {
        LaunchTrace {
            grid,
            block_threads,
            concurrent,
            launched_warps: 0,
            time_us: device.launch_overhead_us,
            dropped: true,
            blocks: Vec::new(),
            waves: Vec::new(),
        }
    }

    /// Per-kernel counters aggregated over the whole launch.
    pub fn counters(&self) -> KernelCounters {
        let mut c = KernelCounters {
            time_us: self.time_us,
            launches: 1,
            blocks: self.blocks.len() as u64,
            waves: self.waves.len() as u64,
            launched_warps: self.launched_warps,
            ..KernelCounters::default()
        };
        for block in &self.blocks {
            c.active_warps += block.warps;
            for event in &block.events {
                c.transactions += event.transactions;
                c.ideal_transactions += event.ideal_transactions;
                c.max_access_transactions = c.max_access_transactions.max(event.transactions);
                c.dram_bytes += event.dram_bytes;
                c.cache_hits += event.cache_hits;
                c.cache_misses += event.cache_misses;
                c.atomics += event.atomic_lanes;
                if event.kind == MemoryEventKind::Atomic {
                    c.atomic_calls += 1;
                    c.atomic_multiplicity_sum += event.atomic_multiplicity;
                }
            }
        }
        c
    }

    /// Total memory events across all blocks.
    pub fn event_count(&self) -> usize {
        self.blocks.iter().map(|b| b.events.len()).sum()
    }
}

/// Everything traced between `start_tracing` and `stop_tracing`, possibly
/// spanning several launches.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// Traced launches, in issue order.
    pub launches: Vec<LaunchTrace>,
}

impl TraceLog {
    /// Total memory events across all launches.
    pub fn event_count(&self) -> usize {
        self.launches.iter().map(|l| l.event_count()).sum()
    }

    /// Counters aggregated over every launch in the log.
    pub fn counters(&self) -> KernelCounters {
        let mut total = KernelCounters::default();
        for launch in &self.launches {
            total.merge(&launch.counters());
        }
        total
    }
}

/// The per-kernel counter report: every quantity the paper's evaluation
/// argues about, derived from the dynamic trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelCounters {
    /// Simulated duration in microseconds (summed over merged launches).
    pub time_us: f64,
    /// Number of launches merged into this report.
    pub launches: u64,
    /// Blocks executed.
    pub blocks: u64,
    /// Scheduling waves.
    pub waves: u64,
    /// Warps the launch configurations asked for.
    pub launched_warps: u64,
    /// Warps that actually began execution.
    pub active_warps: u64,
    /// Global-memory transactions issued.
    pub transactions: u64,
    /// Minimum transactions if every access were perfectly coalesced.
    pub ideal_transactions: u64,
    /// Largest transaction count of any single warp-wide access.
    pub max_access_transactions: u64,
    /// DRAM bytes moved.
    pub dram_bytes: u64,
    /// Read-only cache hits.
    pub cache_hits: u64,
    /// Read-only cache misses.
    pub cache_misses: u64,
    /// Atomic lanes issued.
    pub atomics: u64,
    /// Warp-wide atomic batches issued.
    pub atomic_calls: u64,
    /// Sum over atomic batches of the worst per-element multiplicity.
    pub atomic_multiplicity_sum: u64,
}

impl KernelCounters {
    /// Achieved DRAM bandwidth in GB/s (`dram_bytes / time_us`, matching the
    /// wave model's `memory_us = bytes / (bandwidth × 1e3)`).
    pub fn achieved_gbs(&self) -> f64 {
        if self.time_us <= 0.0 {
            0.0
        } else {
            self.dram_bytes as f64 / self.time_us / 1e3
        }
    }

    /// Fraction of the device's peak bandwidth actually achieved.
    pub fn bandwidth_fraction(&self, device: &DeviceConfig) -> f64 {
        self.achieved_gbs() / device.mem_bandwidth_gbs
    }

    /// Coalescing efficiency: ideal transactions over issued transactions
    /// (1.0 means every access was perfectly coalesced).
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.transactions == 0 {
            1.0
        } else {
            self.ideal_transactions as f64 / self.transactions as f64
        }
    }

    /// Read-only cache hit rate (0 when the cache was unused).
    pub fn cache_hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }

    /// Atomic-conflict serialization factor: the mean worst-lane multiplicity
    /// per warp-wide atomic batch (1.0 means conflict-free).
    pub fn atomic_serialization(&self) -> f64 {
        if self.atomic_calls == 0 {
            1.0
        } else {
            self.atomic_multiplicity_sum as f64 / self.atomic_calls as f64
        }
    }

    /// Effective-warp occupancy: warps that did work over warps launched.
    pub fn occupancy(&self) -> f64 {
        if self.launched_warps == 0 {
            1.0
        } else {
            self.active_warps as f64 / self.launched_warps as f64
        }
    }

    /// Accumulates another report (for multi-launch operations).
    pub fn merge(&mut self, other: &KernelCounters) {
        self.time_us += other.time_us;
        self.launches += other.launches;
        self.blocks += other.blocks;
        self.waves += other.waves;
        self.launched_warps += other.launched_warps;
        self.active_warps += other.active_warps;
        self.transactions += other.transactions;
        self.ideal_transactions += other.ideal_transactions;
        self.max_access_transactions = self
            .max_access_transactions
            .max(other.max_access_transactions);
        self.dram_bytes += other.dram_bytes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.atomics += other.atomics;
        self.atomic_calls += other.atomic_calls;
        self.atomic_multiplicity_sum += other.atomic_multiplicity_sum;
    }
}

/// Per-thread collector installed around one block's kernel closure (same
/// scheme as the sanitizer recorder: one pool thread per block, so no
/// locking, and reassembly in launch order keeps the result deterministic).
struct Collector {
    trace: BlockTrace,
    warp: u32,
    warp_started: bool,
}

thread_local! {
    static CURRENT: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Installs a fresh collector for `block` on this thread.
pub(crate) fn begin_block(block: usize) {
    CURRENT.with(|current| {
        *current.borrow_mut() = Some(Collector {
            trace: BlockTrace {
                block,
                warps: 0,
                events: Vec::new(),
            },
            warp: 0,
            warp_started: false,
        });
    });
}

/// Removes this thread's collector and returns the block's trace.
pub(crate) fn end_block() -> Option<BlockTrace> {
    CURRENT.with(|current| current.borrow_mut().take().map(|c| c.trace))
}

#[inline]
fn with_collector(f: impl FnOnce(&mut Collector)) {
    CURRENT.with(|current| {
        if let Some(collector) = current.borrow_mut().as_mut() {
            f(collector);
        }
    });
}

/// Advances to the next warp.
pub(crate) fn on_begin_warp() {
    with_collector(|collector| {
        if collector.warp_started {
            collector.warp += 1;
        } else {
            collector.warp_started = true;
        }
        collector.trace.warps += 1;
    });
}

/// Records one memory event attributed to the current warp. No-op unless a
/// collector is installed on this thread.
#[inline]
pub(crate) fn on_memory(mut event: MemoryEvent) {
    with_collector(|collector| {
        event.warp = collector.warp;
        collector.trace.events.push(event);
    });
}

/// Trace-event phases of the Chrome trace-event format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete span (`ph: "X"`) with a duration.
    Complete,
    /// The opening edge of a nested span (`ph: "B"`).
    Begin,
    /// The closing edge of a nested span (`ph: "E"`).
    End,
    /// A zero-duration instant (`ph: "i"`).
    Instant,
}

impl Phase {
    fn code(self) -> &'static str {
        match self {
            Phase::Complete => "X",
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        }
    }
}

/// One event of a Chrome trace.
#[derive(Debug, Clone)]
pub struct ChromeEvent {
    /// Event name (shown on the span).
    pub name: String,
    /// Category string.
    pub cat: &'static str,
    /// Phase of the event.
    pub ph: Phase,
    /// Timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds (complete spans only).
    pub dur_us: f64,
    /// Process id (track group — a device, or the request lane).
    pub pid: u64,
    /// Thread id (track — a stream, or one request).
    pub tid: u64,
    /// `args` key/value payload.
    pub args: Vec<(String, String)>,
}

/// A Chrome-trace/Perfetto JSON document under construction.
///
/// The writer is hand-rolled (the vendored dependency set has no JSON
/// library) and formats every float with fixed precision, so the same trace
/// always serializes to the same bytes.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<ChromeEvent>,
    metadata: Vec<(u64, String)>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Names a process (track group) in the exported trace.
    pub fn name_process(&mut self, pid: u64, name: impl Into<String>) {
        self.metadata.push((pid, name.into()));
    }

    /// Appends a complete span.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        ts_us: f64,
        dur_us: f64,
        pid: u64,
        tid: u64,
        args: Vec<(String, String)>,
    ) {
        self.events.push(ChromeEvent {
            name: name.into(),
            cat,
            ph: Phase::Complete,
            ts_us,
            dur_us,
            pid,
            tid,
            args,
        });
    }

    /// Appends the opening edge of a nested span.
    pub fn begin(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        ts_us: f64,
        pid: u64,
        tid: u64,
        args: Vec<(String, String)>,
    ) {
        self.events.push(ChromeEvent {
            name: name.into(),
            cat,
            ph: Phase::Begin,
            ts_us,
            dur_us: 0.0,
            pid,
            tid,
            args,
        });
    }

    /// Appends the closing edge of a nested span.
    pub fn end(&mut self, cat: &'static str, ts_us: f64, pid: u64, tid: u64) {
        self.events.push(ChromeEvent {
            name: String::new(),
            cat,
            ph: Phase::End,
            ts_us,
            dur_us: 0.0,
            pid,
            tid,
            args: Vec::new(),
        });
    }

    /// Appends an instant event.
    pub fn instant(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        ts_us: f64,
        pid: u64,
        tid: u64,
        args: Vec<(String, String)>,
    ) {
        self.events.push(ChromeEvent {
            name: name.into(),
            cat,
            ph: Phase::Instant,
            ts_us,
            dur_us: 0.0,
            pid,
            tid,
            args,
        });
    }

    /// The events appended so far, in insertion order.
    pub fn events(&self) -> &[ChromeEvent] {
        &self.events
    }

    /// Checks trace well-formedness: per `(pid, tid)` track, timestamps must
    /// be monotone non-decreasing in serialization order and every `B` must
    /// be closed by a matching `E` (with `E` never underflowing the stack).
    /// Returns the violations found (empty means well-formed).
    pub fn validate(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let mut order = self.serialization_order();
        order.sort_by(|&a, &b| {
            let (ea, eb) = (&self.events[a], &self.events[b]);
            (ea.pid, ea.tid).cmp(&(eb.pid, eb.tid))
        });
        let mut last: Option<(u64, u64, f64)> = None;
        let mut depth: i64 = 0;
        for index in order {
            let event = &self.events[index];
            match last {
                Some((pid, tid, ts)) if (pid, tid) == (event.pid, event.tid) => {
                    if event.ts_us < ts {
                        violations.push(format!(
                            "track {pid}/{tid}: timestamp {0:.3} before {ts:.3}",
                            event.ts_us
                        ));
                    }
                }
                _ => {
                    if depth != 0 {
                        violations.push(format!("unbalanced spans: depth {depth} at track end"));
                    }
                    depth = 0;
                }
            }
            match event.ph {
                Phase::Begin => depth += 1,
                Phase::End => {
                    depth -= 1;
                    if depth < 0 {
                        violations.push(format!(
                            "track {}/{}: end without begin at {:.3}",
                            event.pid, event.tid, event.ts_us
                        ));
                        depth = 0;
                    }
                }
                Phase::Complete | Phase::Instant => {}
            }
            last = Some((event.pid, event.tid, event.ts_us));
        }
        if depth != 0 {
            violations.push(format!("unbalanced spans: depth {depth} at trace end"));
        }
        violations
    }

    /// The order in which `to_json` serializes events: stable-sorted by
    /// track, then timestamp, with `E` edges sorting after co-timestamped
    /// children so nesting stays balanced.
    fn serialization_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by(|&a, &b| {
            let (ea, eb) = (&self.events[a], &self.events[b]);
            (ea.pid, ea.tid)
                .cmp(&(eb.pid, eb.tid))
                .then(ea.ts_us.total_cmp(&eb.ts_us))
                .then_with(|| {
                    // At equal timestamps: begins first, ends last, so that
                    // zero-length children stay inside their parents.
                    let rank = |ph: Phase| match ph {
                        Phase::Begin => 0,
                        Phase::Complete | Phase::Instant => 1,
                        Phase::End => 2,
                    };
                    rank(ea.ph).cmp(&rank(eb.ph))
                })
                .then(a.cmp(&b))
        });
        order
    }

    /// Serializes to Chrome trace-event JSON (the `traceEvents` array form
    /// Perfetto and `chrome://tracing` load directly). Deterministic:
    /// identical traces produce identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for &(pid, ref name) in &self.metadata {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            );
        }
        for &index in &self.serialization_order() {
            let event = &self.events[index];
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3},",
                escape(&event.name),
                event.cat,
                event.ph.code(),
                event.ts_us
            );
            if event.ph == Phase::Complete {
                let _ = write!(out, "\"dur\":{:.3},", event.dur_us);
            }
            if event.ph == Phase::Instant {
                out.push_str("\"s\":\"t\",");
            }
            let _ = write!(out, "\"pid\":{},\"tid\":{}", event.pid, event.tid);
            if !event.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (key, value)) in event.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":\"{}\"", escape(key), escape(value));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }
}

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_derive_ratios() {
        let c = KernelCounters {
            time_us: 10.0,
            dram_bytes: 336_000 * 10,
            transactions: 200,
            ideal_transactions: 100,
            cache_hits: 30,
            cache_misses: 10,
            atomic_calls: 4,
            atomic_multiplicity_sum: 12,
            launched_warps: 8,
            active_warps: 6,
            ..KernelCounters::default()
        };
        let device = DeviceConfig::titan_x();
        assert!((c.achieved_gbs() - 336.0).abs() < 1e-9);
        assert!((c.bandwidth_fraction(&device) - 1.0).abs() < 1e-9);
        assert!((c.coalescing_efficiency() - 0.5).abs() < 1e-12);
        assert!((c.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert!((c.atomic_serialization() - 3.0).abs() < 1e-12);
        assert!((c.occupancy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_use_neutral_ratios() {
        let c = KernelCounters::default();
        assert_eq!(c.achieved_gbs(), 0.0);
        assert_eq!(c.coalescing_efficiency(), 1.0);
        assert_eq!(c.cache_hit_rate(), 0.0);
        assert_eq!(c.atomic_serialization(), 1.0);
        assert_eq!(c.occupancy(), 1.0);
    }

    #[test]
    fn chrome_trace_json_is_loadable_shape() {
        let mut trace = ChromeTrace::new();
        trace.name_process(0, "device 0");
        trace.begin("req 0", "request", 1.0, 0, 0, vec![]);
        trace.complete(
            "exec",
            "exec",
            1.5,
            2.0,
            0,
            0,
            vec![("tier".into(), "unified".into())],
        );
        trace.instant("admit", "request", 1.0, 0, 0, vec![]);
        trace.end("request", 4.0, 0, 0);
        assert!(trace.validate().is_empty());
        let json = trace.to_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("process_name"));
        assert!(json.trim_end().ends_with("}"));
    }

    #[test]
    fn validate_flags_unbalanced_and_backwards_tracks() {
        let mut trace = ChromeTrace::new();
        trace.begin("open", "t", 1.0, 0, 0, vec![]);
        assert!(!trace.validate().is_empty());
        let mut backwards = ChromeTrace::new();
        backwards.instant("b", "t", 5.0, 0, 0, vec![]);
        backwards.instant("a", "t", 2.0, 0, 0, vec![]);
        // Serialization order sorts by timestamp, so this trace is emitted
        // well-formed; an end-before-begin cannot be repaired though.
        assert!(backwards.validate().is_empty());
        let mut underflow = ChromeTrace::new();
        underflow.end("t", 1.0, 0, 0);
        assert!(!underflow.validate().is_empty());
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
