//! Functional + analytic simulator of a CUDA-like GPU.
//!
//! This crate is the hardware substitution of the reproduction (see
//! DESIGN.md): the paper evaluates on an NVIDIA Titan X, which is not
//! available here, and the phenomena the paper measures — coalescing,
//! read-only cache hit rates, atomic contention, warp divergence, occupancy,
//! memory footprints — are all *memory-system* behaviours that an analytic
//! model reproduces faithfully.
//!
//! Kernels execute **functionally** on the host (real results, validated
//! against sequential references) while narrating their memory behaviour to a
//! [`BlockCtx`], which accounts costs per warp and block. The timing model
//! (see [`stats`]) folds those counters into a simulated duration using the
//! device parameters in [`DeviceConfig`].
//!
//! ```
//! use gpu_sim::GpuDevice;
//!
//! let device = GpuDevice::titan_x();
//! let data = device.memory().alloc_from_slice(&[1.0f32; 1024]).unwrap();
//! let stats = device.launch((8, 1), 128, |ctx| {
//!     let base = ctx.block_x() * 128;
//!     for warp in 0..ctx.warps_per_block() {
//!         ctx.begin_warp();
//!         let addrs: Vec<u64> =
//!             (0..32).map(|lane| data.addr(base + warp * 32 + lane)).collect();
//!         ctx.read_global(&addrs);
//!         ctx.compute(1);
//!     }
//! });
//! assert_eq!(stats.blocks, 8);
//! assert!(stats.time_us > 0.0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod coalesce;
pub mod config;
pub mod device_scan;
pub mod exec;
pub mod faults;
pub mod memory;
pub mod record;
pub mod scan;
pub mod stats;
pub mod streams;
pub mod symbolic;
pub mod trace;

pub use config::DeviceConfig;
pub use device_scan::{segmented_scan_device, DeviceScan};
pub use exec::{BlockCtx, GpuDevice};
pub use faults::{FaultConfig, FaultEvent};
pub use memory::{DeviceBuffer, DeviceMemory, OutOfMemory};
pub use record::{AccessKind, AccessLog, BlockRecord, Event, LaunchRecord};
pub use stats::{BlockStats, KernelStats};
pub use streams::Timeline;
pub use symbolic::{AffineLaneAccess, RangeAccess};
pub use trace::{
    BlockTrace, ChromeEvent, ChromeTrace, KernelCounters, LaunchTrace, MemoryEvent,
    MemoryEventKind, Phase, TraceLog, WaveTrace,
};
