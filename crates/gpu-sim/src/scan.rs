//! Segmented-scan primitives.
//!
//! The unified kernels accumulate per-non-zero products into fibers/slices
//! with a segmented scan over bit-flag-delimited segments (Sengupta et al.,
//! Yan et al. StreamScan), instead of per-element atomics. This module
//! provides:
//!
//! * a host reference implementation ([`segmented_scan_inclusive`] /
//!   [`segmented_reduce`]) used by tests and by the functional side of the
//!   kernels, and
//! * the cycle-cost helpers the kernels charge for the warp-shuffle and
//!   shared-memory stages of the device algorithm.

use crate::config::DeviceConfig;

/// Inclusive segmented scan: running sums that restart wherever
/// `head_flags[i]` is true (index 0 is always a segment head).
pub fn segmented_scan_inclusive(values: &[f32], head_flags: &[bool]) -> Vec<f32> {
    assert_eq!(values.len(), head_flags.len(), "flag array length mismatch");
    let mut out = Vec::with_capacity(values.len());
    let mut running = 0.0f32;
    for (i, (&v, &head)) in values.iter().zip(head_flags).enumerate() {
        if i == 0 || head {
            running = v;
        } else {
            running += v;
        }
        out.push(running);
    }
    out
}

/// Segmented reduction: the total of each segment, in order.
///
/// ```
/// use gpu_sim::scan::segmented_reduce;
///
/// let values = [1.0, 2.0, 3.0, 4.0];
/// let heads = [true, false, true, false];
/// assert_eq!(segmented_reduce(&values, &heads), vec![3.0, 7.0]);
/// ```
pub fn segmented_reduce(values: &[f32], head_flags: &[bool]) -> Vec<f32> {
    assert_eq!(values.len(), head_flags.len(), "flag array length mismatch");
    let mut out = Vec::new();
    let mut running = 0.0f32;
    for (i, (&v, &head)) in values.iter().zip(head_flags).enumerate() {
        if i == 0 {
            running = v;
        } else if head {
            out.push(running);
            running = v;
        } else {
            running += v;
        }
    }
    if !values.is_empty() {
        out.push(running);
    }
    out
}

/// Cycles one warp pays for a warp-level segmented scan implemented with
/// shuffles: `log2(warp)` shuffle+select stages.
pub fn warp_segscan_cycles(config: &DeviceConfig) -> u64 {
    let stages = (config.warp_size as f64).log2().ceil() as u64;
    stages * (config.shuffle_cycles + 1)
}

/// Cycles a block pays to combine its warps' partial segments through shared
/// memory: `log2(warps)` shared-memory stages plus two barriers.
pub fn block_segscan_cycles(block_threads: usize, config: &DeviceConfig) -> u64 {
    let warps = (block_threads / config.warp_size).max(1);
    let stages = (warps as f64).log2().ceil() as u64;
    stages * (2 * config.shared_cycles + 1) + 2 * config.syncthreads_cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_restarts_at_heads() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let heads = [true, false, true, false, false];
        assert_eq!(
            segmented_scan_inclusive(&values, &heads),
            vec![1.0, 3.0, 3.0, 7.0, 12.0]
        );
    }

    #[test]
    fn scan_treats_index_zero_as_head() {
        let values = [1.0, 1.0];
        let heads = [false, false];
        assert_eq!(segmented_scan_inclusive(&values, &heads), vec![1.0, 2.0]);
    }

    #[test]
    fn reduce_produces_one_total_per_segment() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let heads = [true, false, true, true, false];
        assert_eq!(segmented_reduce(&values, &heads), vec![3.0, 3.0, 9.0]);
    }

    #[test]
    fn reduce_single_segment_is_total() {
        let values = [1.0, 2.0, 3.0];
        let heads = [true, false, false];
        assert_eq!(segmented_reduce(&values, &heads), vec![6.0]);
    }

    #[test]
    fn reduce_empty_input() {
        assert!(segmented_reduce(&[], &[]).is_empty());
    }

    #[test]
    fn reduce_all_heads_is_identity() {
        let values = [4.0, 5.0, 6.0];
        let heads = [true, true, true];
        assert_eq!(segmented_reduce(&values, &heads), values.to_vec());
    }

    #[test]
    fn scan_reduce_consistency() {
        // The last scan value of each segment equals the segment reduction.
        let values: Vec<f32> = (1..=12).map(|i| i as f32).collect();
        let heads: Vec<bool> = (0..12).map(|i| i % 5 == 0 || i % 3 == 0).collect();
        let scan = segmented_scan_inclusive(&values, &heads);
        let reduce = segmented_reduce(&values, &heads);
        let mut seg_ends = Vec::new();
        for i in 0..12 {
            let next_is_head = i + 1 == 12 || heads[i + 1];
            if next_is_head {
                seg_ends.push(scan[i]);
            }
        }
        assert_eq!(seg_ends, reduce);
    }

    #[test]
    fn cost_helpers_scale_with_block_size() {
        let config = DeviceConfig::titan_x();
        assert!(block_segscan_cycles(1024, &config) > block_segscan_cycles(64, &config));
        assert!(warp_segscan_cycles(&config) >= 5);
    }
}
