//! Simulated device global memory: an allocator with capacity enforcement and
//! live/peak byte tracking, plus typed buffers the kernels operate on.
//!
//! Buffers hold their data in host memory (execution is functional) but carry
//! a unique virtual base address so the coalescing and cache models see a
//! realistic address space. Peak-byte tracking regenerates the paper's Fig. 9
//! (GPU memory consumption); capacity enforcement reproduces ParTI's
//! out-of-memory failures on the large SpMTTKRP intermediates.

use crate::faults::{self, FaultCell};
use crate::record::{self, AccessKind};
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

/// Allocation failure: the device ran out of global memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes that were requested.
    pub requested: usize,
    /// Bytes that were live at the time.
    pub live: usize,
    /// Device capacity.
    pub capacity: usize,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} B with {} B live of {} B capacity",
            self.requested, self.live, self.capacity
        )
    }
}

impl std::error::Error for OutOfMemory {}

struct MemoryInner {
    capacity: usize,
    live: AtomicUsize,
    peak: AtomicUsize,
    next_base: AtomicUsize,
    /// Serializes the capacity check against concurrent allocations.
    alloc_lock: Mutex<()>,
    /// Live allocations by base address (`base → bytes`), the shadow map the
    /// sanitizer's out-of-bounds pass checks accesses against.
    allocations: Mutex<BTreeMap<u64, usize>>,
    /// Fault-injection slot (state plus lock-free fast flags); see
    /// [`crate::faults`].
    faults: FaultCell,
}

impl Drop for MemoryInner {
    fn drop(&mut self) {
        // A memory destroyed with an injector still installed must release
        // its claim on the global fault gate.
        if self.faults.state.get_mut().is_some() {
            faults::device_uninstalled();
        }
    }
}

/// Handle to a device's global memory.
#[derive(Clone)]
pub struct DeviceMemory {
    inner: Arc<MemoryInner>,
}

impl DeviceMemory {
    /// Creates a memory arena with the given capacity in bytes.
    pub fn new(capacity: usize) -> Self {
        DeviceMemory {
            inner: Arc::new(MemoryInner {
                capacity,
                live: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                next_base: AtomicUsize::new(256),
                alloc_lock: Mutex::new(()),
                allocations: Mutex::new(BTreeMap::new()),
                faults: FaultCell::new(),
            }),
        }
    }

    /// Allocates a zero-initialized buffer of `len` elements.
    pub fn alloc_zeroed<T: DeviceValue>(&self, len: usize) -> Result<DeviceBuffer<T>, OutOfMemory> {
        self.alloc_from_iter((0..len).map(|_| T::ZERO))
    }

    /// Allocates a buffer initialized from a slice (a host→device copy).
    pub fn alloc_from_slice<T: DeviceValue>(
        &self,
        data: &[T],
    ) -> Result<DeviceBuffer<T>, OutOfMemory> {
        self.alloc_from_iter(data.iter().copied())
    }

    /// Allocates a buffer from an iterator.
    pub fn alloc_from_iter<T: DeviceValue>(
        &self,
        data: impl IntoIterator<Item = T>,
    ) -> Result<DeviceBuffer<T>, OutOfMemory> {
        let data: Vec<UnsafeCell<T>> = data.into_iter().map(UnsafeCell::new).collect();
        let bytes = data.len() * std::mem::size_of::<T>();
        // Fault-injection hook: a spurious allocation failure is reported as
        // a normal OutOfMemory (callers need no special handling) while the
        // injector latches an AllocFailure event so the host can tell it from
        // genuine capacity exhaustion.
        if faults::faults_active() && self.fault_alloc(bytes) {
            return Err(OutOfMemory {
                requested: bytes,
                live: self.inner.live.load(Ordering::Relaxed),
                capacity: self.inner.capacity,
            });
        }
        {
            let _guard = self.inner.alloc_lock.lock();
            let live = self.inner.live.load(Ordering::Relaxed);
            if live + bytes > self.inner.capacity {
                return Err(OutOfMemory {
                    requested: bytes,
                    live,
                    capacity: self.inner.capacity,
                });
            }
            let new_live = live + bytes;
            self.inner.live.store(new_live, Ordering::Relaxed);
            self.inner.peak.fetch_max(new_live, Ordering::Relaxed);
        }
        // 256-byte aligned virtual bases, like cudaMalloc. The extra 256-byte
        // gap between allocations guarantees that one-off overruns land in
        // unmapped address space, where the sanitizer's shadow check sees
        // them.
        let base = self
            .inner
            .next_base
            .fetch_add(bytes.div_ceil(256) * 256 + 256, Ordering::Relaxed);
        if bytes > 0 {
            self.inner.allocations.lock().insert(base as u64, bytes);
        }
        // Fault-injection hook: value (`f32`) regions are eligible bit-flip
        // targets; index/metadata words are modeled as parity-protected.
        if faults::faults_active() && T::FLIPPABLE {
            self.fault_register_region(base as u64, bytes);
        }
        Ok(DeviceBuffer {
            data,
            base: base as u64,
            memory: Arc::clone(&self.inner),
        })
    }

    /// Snapshot of the live allocations as `(base, bytes)` pairs, sorted by
    /// base address (the sanitizer's shadow memory map).
    pub fn live_allocations(&self) -> Vec<(u64, usize)> {
        self.inner
            .allocations
            .lock()
            .iter()
            .map(|(&base, &bytes)| (base, bytes))
            .collect()
    }

    /// Bytes currently allocated.
    pub fn live_bytes(&self) -> usize {
        self.inner.live.load(Ordering::Relaxed)
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current live bytes (to measure one phase).
    pub fn reset_peak(&self) {
        self.inner
            .peak
            .store(self.inner.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// The fault-injection slot shared by this memory's buffers (see
    /// [`crate::faults`] for the methods implemented on top of it).
    pub(crate) fn fault_cell(&self) -> &FaultCell {
        &self.inner.faults
    }
}

/// Types storable in device buffers.
pub trait DeviceValue: Copy + Send + Sync + 'static {
    /// The zero pattern used by [`DeviceMemory::alloc_zeroed`].
    const ZERO: Self;
    /// Whether buffers of this type are eligible ECC bit-flip targets under
    /// fault injection (value words; index/metadata words are modeled as
    /// parity-protected).
    const FLIPPABLE: bool;
    /// XORs a fault mask into the value's bit pattern (ECC-style corruption).
    fn xor_bits(self, mask: u32) -> Self;
}

impl DeviceValue for f32 {
    const ZERO: Self = 0.0;
    const FLIPPABLE: bool = true;
    fn xor_bits(self, mask: u32) -> Self {
        f32::from_bits(self.to_bits() ^ mask)
    }
}
impl DeviceValue for u32 {
    const ZERO: Self = 0;
    const FLIPPABLE: bool = false;
    fn xor_bits(self, mask: u32) -> Self {
        self ^ mask
    }
}
impl DeviceValue for u8 {
    const ZERO: Self = 0;
    const FLIPPABLE: bool = false;
    fn xor_bits(self, mask: u32) -> Self {
        self ^ (mask as u8)
    }
}

/// A typed buffer in simulated device memory.
///
/// Reads are always safe. Plain writes require the caller (the kernel) to
/// guarantee that no two threads write the same element — the same contract
/// CUDA gives global memory. For racy accumulation, `f32` buffers provide
/// [`DeviceBuffer::atomic_add_f32`], matching CUDA's `atomicAdd`.
pub struct DeviceBuffer<T: DeviceValue> {
    data: Vec<UnsafeCell<T>>,
    base: u64,
    memory: Arc<MemoryInner>,
}

impl<T: DeviceValue> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("len", &self.data.len())
            .field("base", &self.base)
            .finish()
    }
}

// SAFETY: element disjointness for plain writes is delegated to kernels,
// exactly like real GPU global memory; concurrent reads are fine.
unsafe impl<T: DeviceValue> Send for DeviceBuffer<T> {}
// SAFETY: same contract as `Send` above — shared references only allow
// reads and the explicitly-unsafe `write`, whose caller owns disjointness.
unsafe impl<T: DeviceValue> Sync for DeviceBuffer<T> {}

impl<T: DeviceValue> DeviceBuffer<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Virtual device address of element `index` (for the coalescing and
    /// cache models). The one-past-the-end index is allowed, as for raw
    /// pointers, so range narration can express exclusive end addresses.
    ///
    /// # Panics
    /// If `index` is beyond one past the end of the buffer, naming the index
    /// and the buffer length.
    #[inline]
    pub fn addr(&self, index: usize) -> u64 {
        assert!(
            index <= self.data.len(),
            "DeviceBuffer address out of bounds: index {index} exceeds length {} (base {:#x})",
            self.data.len(),
            self.base
        );
        self.base + (index * std::mem::size_of::<T>()) as u64
    }

    /// Reads element `index`.
    ///
    /// # Panics
    /// If `index` is out of bounds, naming the index and the buffer length
    /// (a `cudaMemcheck`-style loud failure instead of undefined behaviour).
    #[inline]
    pub fn get(&self, index: usize) -> T {
        assert!(
            index < self.data.len(),
            "DeviceBuffer read out of bounds: index {index} >= length {} (base {:#x})",
            self.data.len(),
            self.base
        );
        if record::recording_active() {
            record::on_access(
                AccessKind::FunctionalRead,
                self.base + (index * std::mem::size_of::<T>()) as u64,
                std::mem::size_of::<T>() as u32,
            );
        }
        // SAFETY: kernels never write an element that another thread reads
        // concurrently without atomics (CUDA global-memory contract).
        let value = unsafe { *self.data[index].get() };
        // Fault-injection hook: armed uncorrectable flips corrupt the read
        // until the memory is scrubbed. Gated on the same zero-cost global
        // check as recording, then a per-memory armed-flip count.
        if faults::faults_active() && self.memory.faults.flips_armed.load(Ordering::Relaxed) > 0 {
            let addr = self.base + (index * std::mem::size_of::<T>()) as u64;
            return faults::corrupt_value(&self.memory.faults, addr, value);
        }
        value
    }

    /// Writes element `index`.
    ///
    /// # Panics
    /// If `index` is out of bounds, naming the index and the buffer length.
    ///
    /// # Safety
    /// No other thread may access this element concurrently.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        assert!(
            index < self.data.len(),
            "DeviceBuffer write out of bounds: index {index} >= length {} (base {:#x})",
            self.data.len(),
            self.base
        );
        if record::recording_active() {
            record::on_access(
                AccessKind::FunctionalWrite,
                self.base + (index * std::mem::size_of::<T>()) as u64,
                std::mem::size_of::<T>() as u32,
            );
        }
        // SAFETY: `index` is bounds-checked above; exclusive access to this
        // element is the caller's obligation, stated in this fn's contract.
        unsafe { *self.data[index].get() = value };
    }

    /// Copies the buffer back to host memory.
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Bytes this buffer occupies.
    pub fn bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl DeviceBuffer<f32> {
    /// Atomically adds `value` to element `index` (CUDA `atomicAdd` on
    /// `float`), implemented as a compare-and-swap loop on the bit pattern.
    ///
    /// # Panics
    /// If `index` is out of bounds, naming the index and the buffer length.
    #[inline]
    pub fn atomic_add_f32(&self, index: usize, value: f32) {
        assert!(
            index < self.data.len(),
            "DeviceBuffer atomic out of bounds: index {index} >= length {} (base {:#x})",
            self.data.len(),
            self.base
        );
        if record::recording_active() {
            record::on_access(
                AccessKind::FunctionalAtomic,
                self.base + (index * std::mem::size_of::<f32>()) as u64,
                std::mem::size_of::<f32>() as u32,
            );
        }
        // Fault-injection hook (after the record event fires: the hardware
        // acknowledged the transaction, then lost the write). Gated on the
        // zero-cost global check, then this launch's armed flag.
        if faults::faults_active()
            && self.memory.faults.atomics_armed.load(Ordering::Relaxed)
            && faults::drop_atomic(
                &self.memory.faults,
                self.base + (index * std::mem::size_of::<f32>()) as u64,
                value.to_bits(),
            )
        {
            return;
        }
        // SAFETY: UnsafeCell<f32> and AtomicU32 have identical size and
        // alignment; all concurrent accesses to accumulated elements go
        // through this method.
        let atomic: &AtomicU32 = unsafe { AtomicU32::from_ptr(self.data[index].get() as *mut u32) };
        let mut current = atomic.load(Ordering::Relaxed);
        loop {
            let next = (f32::from_bits(current) + value).to_bits();
            match atomic.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }
}

impl<T: DeviceValue> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        let bytes = self.bytes();
        self.memory.live.fetch_sub(bytes, Ordering::Relaxed);
        if bytes > 0 {
            self.memory.allocations.lock().remove(&self.base);
        }
        // Fault-injection hook: flips aimed at freed memory are disarmed.
        if faults::faults_active() && T::FLIPPABLE {
            faults::forget_region(&self.memory.faults, self.base, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_tracks_live_and_peak() {
        let memory = DeviceMemory::new(1 << 20);
        let a = memory.alloc_zeroed::<f32>(1000).unwrap();
        assert_eq!(memory.live_bytes(), 4000);
        {
            let _b = memory.alloc_zeroed::<u32>(500).unwrap();
            assert_eq!(memory.live_bytes(), 6000);
            assert_eq!(memory.peak_bytes(), 6000);
        }
        assert_eq!(memory.live_bytes(), 4000);
        assert_eq!(memory.peak_bytes(), 6000);
        drop(a);
        assert_eq!(memory.live_bytes(), 0);
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let memory = DeviceMemory::new(1024);
        let small = memory.alloc_zeroed::<f32>(128).unwrap();
        let err = memory.alloc_zeroed::<f32>(200).unwrap_err();
        assert_eq!(err.requested, 800);
        assert_eq!(err.live, 512);
        assert_eq!(err.capacity, 1024);
        drop(small);
        assert!(memory.alloc_zeroed::<f32>(200).is_ok());
    }

    #[test]
    fn buffers_have_disjoint_address_ranges() {
        let memory = DeviceMemory::new(1 << 20);
        let a = memory.alloc_zeroed::<f32>(100).unwrap();
        let b = memory.alloc_zeroed::<f32>(100).unwrap();
        let a_end = a.addr(99) + 4;
        assert!(b.addr(0) >= a_end, "buffer addresses overlap");
    }

    #[test]
    fn read_write_round_trip() {
        let memory = DeviceMemory::new(1 << 20);
        let buffer = memory.alloc_from_slice(&[1.0f32, 2.0, 3.0]).unwrap();
        // SAFETY: single-threaded test, no concurrent access to element 1.
        unsafe { buffer.write(1, 9.5) };
        assert_eq!(buffer.to_vec(), vec![1.0, 9.5, 3.0]);
    }

    #[test]
    fn atomic_add_from_many_threads() {
        let memory = DeviceMemory::new(1 << 20);
        let buffer = std::sync::Arc::new(memory.alloc_zeroed::<f32>(4).unwrap());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let buffer = std::sync::Arc::clone(&buffer);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        buffer.atomic_add_f32(2, 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(buffer.get(2), 8000.0);
        assert_eq!(buffer.get(0), 0.0);
    }

    #[test]
    fn get_out_of_bounds_panics_loudly() {
        let memory = DeviceMemory::new(1 << 20);
        let buffer = memory.alloc_zeroed::<f32>(3).unwrap();
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| buffer.get(3))).unwrap_err();
        let message = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(message.contains("read out of bounds"), "got: {message}");
        assert!(message.contains("index 3"), "got: {message}");
        assert!(message.contains("length 3"), "got: {message}");
    }

    #[test]
    fn write_out_of_bounds_panics_loudly() {
        let memory = DeviceMemory::new(1 << 20);
        let buffer = memory.alloc_zeroed::<u32>(5).unwrap();
        // SAFETY: index 17 is out of bounds, so the call panics before any
        // write happens; no aliasing is possible.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            buffer.write(17, 1)
        }))
        .unwrap_err();
        let message = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(message.contains("write out of bounds"), "got: {message}");
        assert!(message.contains("index 17"), "got: {message}");
        assert!(message.contains("length 5"), "got: {message}");
    }

    #[test]
    fn atomic_add_out_of_bounds_panics_loudly() {
        let memory = DeviceMemory::new(1 << 20);
        let buffer = memory.alloc_zeroed::<f32>(2).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            buffer.atomic_add_f32(2, 1.0)
        }))
        .unwrap_err();
        let message = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(message.contains("atomic out of bounds"), "got: {message}");
        assert!(message.contains("index 2"), "got: {message}");
        assert!(message.contains("length 2"), "got: {message}");
    }

    #[test]
    fn addr_allows_one_past_end_but_not_beyond() {
        let memory = DeviceMemory::new(1 << 20);
        let buffer = memory.alloc_zeroed::<f32>(4).unwrap();
        assert_eq!(buffer.addr(4), buffer.addr(0) + 16);
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| buffer.addr(5))).unwrap_err();
        let message = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(message.contains("address out of bounds"), "got: {message}");
        assert!(message.contains("index 5"), "got: {message}");
    }

    #[test]
    fn live_allocations_tracks_alloc_and_drop() {
        let memory = DeviceMemory::new(1 << 20);
        assert!(memory.live_allocations().is_empty());
        let a = memory.alloc_zeroed::<f32>(10).unwrap();
        let b = memory.alloc_zeroed::<u8>(7).unwrap();
        let map = memory.live_allocations();
        assert_eq!(map, vec![(a.addr(0), 40), (b.addr(0), 7)]);
        drop(a);
        assert_eq!(memory.live_allocations(), vec![(b.addr(0), 7)]);
        drop(b);
        assert!(memory.live_allocations().is_empty());
    }

    #[test]
    fn zero_length_buffers_do_not_enter_shadow_map() {
        let memory = DeviceMemory::new(1 << 20);
        let empty = memory.alloc_zeroed::<f32>(0).unwrap();
        assert!(memory.live_allocations().is_empty());
        drop(empty);
        assert!(memory.live_allocations().is_empty());
    }

    #[test]
    fn reset_peak_rebases_to_live() {
        let memory = DeviceMemory::new(1 << 20);
        {
            let _big = memory.alloc_zeroed::<f32>(10_000).unwrap();
        }
        assert_eq!(memory.peak_bytes(), 40_000);
        memory.reset_peak();
        assert_eq!(memory.peak_bytes(), 0);
    }
}
