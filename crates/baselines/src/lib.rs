//! Baseline implementations the paper compares against, rebuilt from the
//! algorithm descriptions in the paper and in Li et al. / Smith & Karypis:
//!
//! * [`parti_gpu`] — ParTI's GPU kernels: fiber-centric SpTTM with
//!   rank-shaped 2-D thread blocks, and the two-step SpMTTKRP that
//!   materializes a semi-sparse intermediate and accumulates with atomics;
//! * [`parti_omp`] — ParTI's OpenMP-style multicore kernels on the `cpu-par`
//!   pool (the Fig. 6 speedup denominators);
//! * [`csf`] — SPLATT's compressed-sparse-fiber format and its FLOP-reduced
//!   parallel MTTKRP;
//! * [`timing`] — wall-clock measurement for the CPU baselines.
//!
//! Every baseline is validated against the sequential references in
//! `tensor_core::ops`, so speedup comparisons are between *correct*
//! implementations.

pub mod csf;
pub mod parti_gpu;
pub mod parti_omp;
pub mod timing;

pub use csf::{mttkrp_csf, Csf};
pub use parti_gpu::{spmttkrp_two_step_gpu, spttm_fiber_gpu};
pub use parti_omp::{spmttkrp_omp, spttm_omp, SortedCoo};
