//! ParTI-GPU-style baselines (Li et al. [13], [18]), re-implemented on the
//! shared simulator.
//!
//! Two design decisions — both criticized by the paper — characterize these
//! kernels and drive every Fig. 6–9 comparison:
//!
//! * **fiber-centric parallelism with rank-shaped 2-D thread blocks**: each
//!   thread walks one fiber for one factor column; block shape is
//!   `(512 / min(R, 32), min(R, 32))`. Unequal fiber lengths produce warp
//!   divergence; fiber counts bound the launch width (brainq mode-2 has just
//!   540 fibers, §V-B); per-element loads are duplicated across the rank
//!   lanes and strided across the fiber lanes;
//! * **two-step SpMTTKRP with a semi-sparse intermediate**: `Y = X ×₃ C`
//!   is materialized (the memory blow-up of Fig. 9, out-of-memory on
//!   nell1/delicious), then reduced into `M` with per-element atomics on the
//!   divided output slices (§III-B).

use crate::parti_omp::SortedCoo;
use gpu_sim::memory::DeviceBuffer;
use gpu_sim::{GpuDevice, KernelStats, OutOfMemory};
use tensor_core::{DenseMatrix, Idx, SemiSparseTensor, SparseTensorCoo};

/// Threads per 2-D ParTI block.
const PARTI_BLOCK_THREADS: usize = 512;

/// The ParTI block shape for a given rank: `(threads_x, threads_y)`.
///
/// Follows the paper's description literally: "when the number of threads is
/// 512 in a two-dimensional thread block and rank is 32, the shape of the
/// two-dimensional thread block will be (16, 32)" — the y dimension tracks
/// the rank, which is exactly why this baseline's shape (and memory
/// behaviour) changes with the rank.
fn block_shape(rank: usize) -> (usize, usize) {
    let threads_y = rank.clamp(1, PARTI_BLOCK_THREADS);
    let threads_x = (PARTI_BLOCK_THREADS / threads_y).max(1);
    (threads_x, threads_y)
}

/// Step-1 state kept resident on the device, as ParTI keeps its semi-sparse
/// intermediate between the two kernels of its SpMTTKRP.
struct FiberSpttmDevice {
    /// `nfibs × R` fiber results (the semi-sparse intermediate's values).
    out: DeviceBuffer<f32>,
    /// Tensor values, kept resident for the operation's lifetime.
    _values: DeviceBuffer<f32>,
    /// Product-mode indices.
    _k_indices: DeviceBuffer<u32>,
    /// Fiber start offsets.
    _group_ptr: DeviceBuffer<u32>,
    /// The dense matrix of step 1.
    _u: DeviceBuffer<f32>,
    stats: KernelStats,
}

fn spttm_fiber_device(
    device: &GpuDevice,
    prepared: &SortedCoo,
    u_host: &DenseMatrix,
) -> Result<FiberSpttmDevice, OutOfMemory> {
    assert!(
        prepared.fiber_groups,
        "SortedCoo must be built with for_spttm"
    );
    let tensor = &prepared.tensor;
    let mode = prepared.mode;
    assert_eq!(
        u_host.rows(),
        tensor.shape()[mode],
        "matrix rows must match product-mode size"
    );
    let r = u_host.cols();
    let nfibs = prepared.groups();

    let memory = device.memory();
    let values = memory.alloc_from_slice(tensor.values())?;
    let k_indices = memory.alloc_from_slice(tensor.mode_indices(mode))?;
    let group_ptr: Vec<u32> = prepared.group_ptr.iter().map(|&p| p as u32).collect();
    let group_ptr = memory.alloc_from_slice(&group_ptr)?;
    let u = memory.alloc_from_slice(u_host.data())?;
    let out = memory.alloc_zeroed::<f32>(nfibs * r)?;

    let stats = run_fiber_kernel(
        device,
        nfibs,
        r,
        &group_ptr,
        &values,
        &k_indices,
        &u,
        u_host.cols(),
        &out,
        None,
    );
    Ok(FiberSpttmDevice {
        out,
        _values: values,
        _k_indices: k_indices,
        _group_ptr: group_ptr,
        _u: u,
        stats,
    })
}

/// Fiber-centric SpTTM on the simulated GPU.
///
/// `prepared` must come from [`SortedCoo::for_spttm`]. Returns the
/// semi-sparse result and kernel statistics.
pub fn spttm_fiber_gpu(
    device: &GpuDevice,
    prepared: &SortedCoo,
    u_host: &DenseMatrix,
) -> Result<(SemiSparseTensor, KernelStats), OutOfMemory> {
    let step = spttm_fiber_device(device, prepared, u_host)?;
    let tensor = &prepared.tensor;
    let mode = prepared.mode;
    let r = u_host.cols();
    let nfibs = prepared.groups();
    let mut result = SemiSparseTensor::new(tensor.shape().to_vec(), mode, r);
    let host_values = step.out.to_vec();
    let index_modes: Vec<usize> = (0..tensor.order()).filter(|&m| m != mode).collect();
    for g in 0..nfibs {
        let first = prepared.group_ptr[g];
        let coord: Vec<Idx> = index_modes
            .iter()
            .map(|&m| tensor.mode_indices(m)[first])
            .collect();
        result.push_fiber(&coord, &host_values[g * r..(g + 1) * r]);
    }
    Ok((result, step.stats))
}

/// The shared fiber-walk kernel. When `atomic_target` is `Some((m, rows))`,
/// results are atomically accumulated into `m` at the per-fiber output rows
/// in `rows` (step 2 of the two-step MTTKRP); otherwise each fiber writes its
/// own output row in `out`.
#[allow(clippy::too_many_arguments)]
fn run_fiber_kernel(
    device: &GpuDevice,
    nfibs: usize,
    rank: usize,
    group_ptr: &DeviceBuffer<u32>,
    values: &DeviceBuffer<f32>,
    k_indices: &DeviceBuffer<u32>,
    u: &DeviceBuffer<f32>,
    u_cols: usize,
    out: &DeviceBuffer<f32>,
    atomic_target: Option<(&DeviceBuffer<f32>, &[u32])>,
) -> KernelStats {
    let (threads_x, threads_y) = block_shape(rank);
    let cols_per_thread = rank.div_ceil(threads_y);
    let grid_x = nfibs.div_ceil(threads_x);
    device.launch((grid_x, 1), PARTI_BLOCK_THREADS, |ctx| {
        let warp = ctx.warp_size();
        let mut read_addrs: Vec<u64> = Vec::with_capacity(warp);
        let mut factor_addrs: Vec<u64> = Vec::with_capacity(warp);
        let mut write_addrs: Vec<u64> = Vec::with_capacity(warp);
        let mut atomic_batch: Vec<(usize, f32)> = Vec::with_capacity(warp);
        let mut lane_acc = vec![0.0f32; warp * cols_per_thread];
        let block_x = ctx.block_x();
        for w in 0..ctx.warps_per_block() {
            // Lane → (tx, ty) with x fastest, CUDA-style.
            let lane_fiber = |lane: usize| {
                let linear = w * warp + lane;
                let tx = linear % threads_x;
                ctx_fiber(block_x, threads_x, tx)
            };
            let lane_ty = |lane: usize| (w * warp + lane) / threads_x;
            let any_active =
                (0..warp).any(|lane| lane_fiber(lane) < nfibs && lane_ty(lane) < threads_y);
            if !any_active {
                continue;
            }
            ctx.begin_warp();
            // Fiber lengths per lane → divergence.
            let lens: Vec<u64> = (0..warp)
                .map(|lane| {
                    let fi = lane_fiber(lane);
                    if fi < nfibs && lane_ty(lane) < threads_y {
                        (group_ptr.get(fi + 1) - group_ptr.get(fi)) as u64
                    } else {
                        0
                    }
                })
                .collect();
            let max_len = lens.iter().copied().max().unwrap_or(0);
            ctx.diverged_loop(&lens, 2);
            lane_acc.iter_mut().for_each(|a| *a = 0.0);
            for it in 0..max_len {
                read_addrs.clear();
                for (lane, &len) in lens.iter().enumerate() {
                    if it < len {
                        let fi = lane_fiber(lane);
                        let nz = group_ptr.get(fi) as usize + it as usize;
                        read_addrs.push(values.addr(nz));
                        read_addrs.push(k_indices.addr(nz));
                    }
                }
                ctx.read_global(&read_addrs);
                for c in 0..cols_per_thread {
                    factor_addrs.clear();
                    for lane in 0..warp {
                        if it >= lens[lane] {
                            continue;
                        }
                        let fi = lane_fiber(lane);
                        let ty = lane_ty(lane);
                        let col = ty + c * threads_y;
                        if col >= rank {
                            continue;
                        }
                        let nz = group_ptr.get(fi) as usize + it as usize;
                        let k = k_indices.get(nz) as usize;
                        factor_addrs.push(u.addr(k * u_cols + col));
                        lane_acc[lane * cols_per_thread + c] +=
                            values.get(nz) * u.get(k * u_cols + col);
                    }
                    if !factor_addrs.is_empty() {
                        // The dense matrix is reused across fibers: traffic
                        // stays in L2 when it fits.
                        ctx.read_global_ws(&factor_addrs, u.len() * 4);
                        ctx.compute(2);
                    }
                }
            }
            // Write or atomically accumulate the per-thread results.
            write_addrs.clear();
            atomic_batch.clear();
            for lane in 0..warp {
                if lens[lane] == 0 {
                    continue;
                }
                let fi = lane_fiber(lane);
                let ty = lane_ty(lane);
                for c in 0..cols_per_thread {
                    let col = ty + c * threads_y;
                    if col >= rank {
                        continue;
                    }
                    let sum = lane_acc[lane * cols_per_thread + c];
                    match atomic_target {
                        None => {
                            let index = fi * rank + col;
                            // SAFETY: each (fiber, column) pair is owned by
                            // exactly one thread.
                            unsafe { out.write(index, sum) };
                            write_addrs.push(out.addr(index));
                        }
                        Some((_, rows)) => {
                            let index = rows[fi] as usize * rank + col;
                            atomic_batch.push((index, sum));
                        }
                    }
                }
            }
            if !write_addrs.is_empty() {
                ctx.write_global(&write_addrs);
            }
            if let Some((m, _)) = atomic_target {
                for chunk in atomic_batch.chunks(warp) {
                    ctx.atomic_add_f32(m, chunk);
                }
            }
        }
    })
}

#[inline]
fn ctx_fiber(block_x: usize, threads_x: usize, tx: usize) -> usize {
    block_x * threads_x + tx
}

/// ParTI-GPU two-step SpMTTKRP on a 3-order tensor (see module docs).
///
/// Returns the dense result, the merged statistics of both kernels, and the
/// device-memory peak observed during the operation (for Fig. 9).
pub fn spmttkrp_two_step_gpu(
    device: &GpuDevice,
    tensor: &SparseTensorCoo,
    mode: usize,
    factors: &[&DenseMatrix],
) -> Result<(DenseMatrix, KernelStats, usize), OutOfMemory> {
    assert_eq!(tensor.order(), 3, "ParTI two-step baseline is 3-order");
    assert_eq!(factors.len(), 3, "one factor per mode required");
    let product_modes: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
    let (first_product, second_product) = (product_modes[0], product_modes[1]);
    let r = factors[first_product].cols();
    assert_eq!(factors[second_product].cols(), r, "factor rank mismatch");
    let memory = device.memory();
    memory.reset_peak();

    // Step 1: Y = X ×(second_product) C, fiber-centric, materialized. The
    // device state (intermediate values, tensor arrays, factor) stays
    // resident across both kernels, exactly as in ParTI — this coexistence
    // is what blows up the memory footprint (Fig. 9) and produces the
    // out-of-memory failures on nell1/delicious.
    let prepared = SortedCoo::for_spttm(tensor, second_product);
    let step1 = spttm_fiber_device(device, &prepared, factors[second_product])?;
    let step1_stats = step1.stats.clone();
    let y_values = &step1.out;

    // Step 2: M(i,:) += Y(i, j, :) ∗ B(j, :) with atomics on M.
    // The intermediate's fibers are indexed by (mode, first_product) coords,
    // read off the sorted tensor's group starts.
    let nfibs = prepared.groups();
    let mut out_rows: Vec<u32> = Vec::with_capacity(nfibs);
    let mut b_rows: Vec<u32> = Vec::with_capacity(nfibs);
    for g in 0..nfibs {
        let first = prepared.group_ptr[g];
        out_rows.push(prepared.tensor.mode_indices(mode)[first]);
        b_rows.push(prepared.tensor.mode_indices(first_product)[first]);
    }
    let b = memory.alloc_from_slice(factors[first_product].data())?;
    let rows = tensor.shape()[mode];
    let m = memory.alloc_zeroed::<f32>(rows * r)?;
    let b_rows_dev = memory.alloc_from_slice(&b_rows)?;

    let (threads_x, threads_y) = block_shape(r);
    let cols_per_thread = r.div_ceil(threads_y);
    let grid_x = nfibs.div_ceil(threads_x);
    let b_cols = factors[first_product].cols();
    let step2_stats = device.launch((grid_x, 1), PARTI_BLOCK_THREADS, |ctx| {
        let warp = ctx.warp_size();
        let block_x = ctx.block_x();
        let mut y_addrs: Vec<u64> = Vec::with_capacity(warp);
        let mut b_addrs: Vec<u64> = Vec::with_capacity(warp);
        let mut atomic_batch: Vec<(usize, f32)> = Vec::with_capacity(warp);
        for w in 0..ctx.warps_per_block() {
            let mut any = false;
            for lane in 0..warp {
                let linear = w * warp + lane;
                let fi = block_x * threads_x + linear % threads_x;
                if fi < nfibs && linear / threads_x < threads_y {
                    any = true;
                }
            }
            if !any {
                continue;
            }
            ctx.begin_warp();
            for c in 0..cols_per_thread {
                y_addrs.clear();
                b_addrs.clear();
                atomic_batch.clear();
                for lane in 0..warp {
                    let linear = w * warp + lane;
                    let tx = linear % threads_x;
                    let ty = linear / threads_x;
                    let fi = block_x * threads_x + tx;
                    if fi >= nfibs || ty >= threads_y {
                        continue;
                    }
                    let col = ty + c * threads_y;
                    if col >= r {
                        continue;
                    }
                    let j = b_rows_dev.get(fi) as usize;
                    y_addrs.push(y_values.addr(fi * r + col));
                    b_addrs.push(b.addr(j * b_cols + col));
                    let contribution = y_values.get(fi * r + col) * b.get(j * b_cols + col);
                    atomic_batch.push((out_rows[fi] as usize * r + col, contribution));
                }
                if y_addrs.is_empty() {
                    continue;
                }
                // The intermediate is streamed once (DRAM); the factor is
                // reused and L2-resident when it fits.
                ctx.read_global(&y_addrs);
                ctx.read_global_ws(&b_addrs, b.len() * 4);
                ctx.compute(2);
                for chunk in atomic_batch.chunks(warp) {
                    ctx.atomic_add_f32(&m, chunk);
                }
            }
        }
    });

    let peak = memory.peak_bytes();
    let mut stats = step1_stats;
    stats.merge(&step2_stats);
    Ok((DenseMatrix::from_vec(rows, r, m.to_vec()), stats, peak))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_core::datasets::{self, DatasetKind};
    use tensor_core::ops;

    fn factors_for(tensor: &SparseTensorCoo, r: usize, seed: u64) -> Vec<DenseMatrix> {
        tensor
            .shape()
            .iter()
            .enumerate()
            .map(|(m, &size)| DenseMatrix::random(size, r, seed + m as u64))
            .collect()
    }

    #[test]
    fn fiber_gpu_spttm_matches_reference_all_modes() {
        let device = GpuDevice::titan_x();
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 3000, 60);
        for mode in 0..3 {
            let prepared = SortedCoo::for_spttm(&tensor, mode);
            let u = DenseMatrix::random(tensor.shape()[mode], 16, 2);
            let (result, stats) = spttm_fiber_gpu(&device, &prepared, &u).unwrap();
            let reference = ops::spttm(&tensor, mode, &u);
            let diff = result
                .max_abs_diff(&reference)
                .expect("fiber sets must match");
            assert!(diff < 1e-3, "mode {mode} diff {diff}");
            assert!(stats.time_us > 0.0);
        }
    }

    #[test]
    fn two_step_mttkrp_matches_reference_all_modes() {
        let device = GpuDevice::titan_x();
        let (tensor, _) = datasets::generate(DatasetKind::Brainq, 6000, 61);
        let factors = factors_for(&tensor, 8, 4);
        let refs: Vec<&DenseMatrix> = factors.iter().collect();
        for mode in 0..3 {
            let (result, _, peak) = spmttkrp_two_step_gpu(&device, &tensor, mode, &refs).unwrap();
            let reference = ops::spmttkrp(&tensor, mode, &refs);
            assert!(result.max_abs_diff(&reference) < 1e-3, "mode {mode}");
            assert!(peak > 0);
        }
    }

    #[test]
    fn skewed_fibers_cause_divergence_imbalance() {
        let device = GpuDevice::titan_x();
        let (skewed, _) = datasets::generate(DatasetKind::Nell1, 20_000, 62);
        let (uniform, _) = datasets::generate(DatasetKind::Uniform, 20_000, 62);
        let mut imbalances = Vec::new();
        for tensor in [&skewed, &uniform] {
            let prepared = SortedCoo::for_spttm(tensor, 2);
            let u = DenseMatrix::random(tensor.shape()[2], 16, 2);
            let (_, stats) = spttm_fiber_gpu(&device, &prepared, &u).unwrap();
            imbalances.push(stats.imbalance);
        }
        assert!(
            imbalances[0] > imbalances[1],
            "skewed imbalance {} should exceed uniform {}",
            imbalances[0],
            imbalances[1]
        );
    }

    #[test]
    fn two_step_uses_atomics() {
        let device = GpuDevice::titan_x();
        let (tensor, _) = datasets::generate(DatasetKind::Brainq, 6000, 63);
        let factors = factors_for(&tensor, 8, 5);
        let refs: Vec<&DenseMatrix> = factors.iter().collect();
        let (_, stats, _) = spmttkrp_two_step_gpu(&device, &tensor, 0, &refs).unwrap();
        assert!(stats.atomics > 0);
        assert!(stats.atomic_conflict_cycles > 0);
    }

    #[test]
    fn intermediate_inflates_memory_peak() {
        let device = GpuDevice::titan_x();
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 8000, 64);
        let factors = factors_for(&tensor, 16, 6);
        let refs: Vec<&DenseMatrix> = factors.iter().collect();
        let (_, _, peak) = spmttkrp_two_step_gpu(&device, &tensor, 0, &refs).unwrap();
        // The intermediate alone is nfibs × R floats; peak must exceed the
        // raw tensor + output considerably.
        let fibers = tensor.count_distinct(&[0, 1]);
        assert!(peak > fibers * 16 * 4);
    }

    #[test]
    fn two_step_ooms_on_scaled_device() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell1, 10_000, 65);
        let device = GpuDevice::new(gpu_sim::DeviceConfig::titan_x_scaled_memory(5e-5));
        let factors = factors_for(&tensor, 16, 7);
        let refs: Vec<&DenseMatrix> = factors.iter().collect();
        assert!(spmttkrp_two_step_gpu(&device, &tensor, 0, &refs).is_err());
    }
}
