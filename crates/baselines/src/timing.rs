//! Wall-clock timing for the CPU baselines.
//!
//! GPU kernels report simulated microseconds from the analytic model; the
//! CPU baselines (ParTI-OMP, SPLATT) run for real on the host pool and are
//! timed with the monotonic clock, exactly as the paper times its CPU
//! competitors.

use std::time::Instant;

/// Runs `f` and returns its result plus the elapsed wall-clock microseconds.
// This module is the sanctioned home of host wall-clock reads (see
// clippy.toml `disallowed-methods`): CPU baselines are *measured*, not
// simulated, so nondeterministic timing is the point here.
#[allow(clippy::disallowed_methods)]
pub fn time_us<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_positive_duration() {
        let (value, elapsed) = time_us(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(value > 0);
        assert!(elapsed > 0.0);
    }
}
