//! ParTI-OMP-style multicore CPU baselines.
//!
//! ParTI's OpenMP backend parallelizes SpTTM over fibers and SpMTTKRP over
//! output slices of the COO tensor. These re-implementations run on the
//! `cpu-par` pool (the OpenMP stand-in) and return wall-clock times; they are
//! the denominators of the paper's Fig. 6 speedup plots.

use crate::timing;
use cpu_par::parallel_for;
use tensor_core::{DenseMatrix, Idx, SemiSparseTensor, SparseTensorCoo, Val};

/// A COO tensor pre-sorted and indexed for fiber/slice-parallel CPU kernels.
///
/// Building this is ParTI's preprocessing step and is excluded from kernel
/// timing, matching how the paper measures.
#[derive(Debug, Clone)]
pub struct SortedCoo {
    /// The operating mode the groups are built for.
    pub mode: usize,
    /// `true` if groups are fibers (all modes but `mode` fixed, for SpTTM);
    /// `false` if groups are slices (only `mode` fixed, for SpMTTKRP).
    pub fiber_groups: bool,
    /// The sorted tensor.
    pub tensor: SparseTensorCoo,
    /// Start offsets of each group in the sorted non-zero order, plus a
    /// final cap equal to `nnz`.
    pub group_ptr: Vec<usize>,
}

impl SortedCoo {
    /// Prepares fiber groups for SpTTM on `mode`.
    pub fn for_spttm(tensor: &SparseTensorCoo, mode: usize) -> Self {
        let index_modes: Vec<usize> = (0..tensor.order()).filter(|&m| m != mode).collect();
        Self::build(tensor, mode, &index_modes, true)
    }

    /// Prepares slice groups for SpMTTKRP on `mode`.
    pub fn for_spmttkrp(tensor: &SparseTensorCoo, mode: usize) -> Self {
        Self::build(tensor, mode, &[mode], false)
    }

    fn build(
        tensor: &SparseTensorCoo,
        mode: usize,
        group_modes: &[usize],
        fiber_groups: bool,
    ) -> Self {
        let mut sorted = tensor.clone();
        let mut order: Vec<usize> = group_modes.to_vec();
        order.extend((0..tensor.order()).filter(|m| !group_modes.contains(m)));
        sorted.sort_by_mode_order(&order);
        let mut group_ptr = Vec::new();
        for nz in 0..sorted.nnz() {
            let boundary = nz == 0
                || group_modes
                    .iter()
                    .any(|&m| sorted.mode_indices(m)[nz] != sorted.mode_indices(m)[nz - 1]);
            if boundary {
                group_ptr.push(nz);
            }
        }
        group_ptr.push(sorted.nnz());
        SortedCoo {
            mode,
            fiber_groups,
            tensor: sorted,
            group_ptr,
        }
    }

    /// Number of groups (fibers or slices).
    pub fn groups(&self) -> usize {
        self.group_ptr.len().saturating_sub(1)
    }
}

/// ParTI-OMP SpTTM: one task per fiber, no synchronization needed because
/// each fiber owns one output row. Returns the result and wall-clock µs.
pub fn spttm_omp(prepared: &SortedCoo, u: &DenseMatrix) -> (SemiSparseTensor, f64) {
    assert!(
        prepared.fiber_groups,
        "SortedCoo must be built with for_spttm"
    );
    let mode = prepared.mode;
    let tensor = &prepared.tensor;
    assert_eq!(
        u.rows(),
        tensor.shape()[mode],
        "matrix rows must match product-mode size"
    );
    let r = u.cols();
    let groups = prepared.groups();
    let mut values = vec![0.0f32; groups * r];
    let product_index = tensor.mode_indices(mode);
    let tensor_values = tensor.values();
    let out_ptr = SyncMutPtr(values.as_mut_ptr());
    let (_, elapsed_us) = timing::time_us(|| {
        let out_ptr = &out_ptr;
        parallel_for(groups, |g| {
            // SAFETY: each group owns a distinct output row.
            let row = unsafe { std::slice::from_raw_parts_mut(out_ptr.0.add(g * r), r) };
            for nz in prepared.group_ptr[g]..prepared.group_ptr[g + 1] {
                let value = tensor_values[nz];
                let u_row = u.row(product_index[nz] as usize);
                for (o, &m) in row.iter_mut().zip(u_row) {
                    *o += value * m;
                }
            }
        });
    });
    let mut result = SemiSparseTensor::new(tensor.shape().to_vec(), mode, r);
    let index_modes: Vec<usize> = (0..tensor.order()).filter(|&m| m != mode).collect();
    for g in 0..groups {
        let first = prepared.group_ptr[g];
        let coord: Vec<Idx> = index_modes
            .iter()
            .map(|&m| tensor.mode_indices(m)[first])
            .collect();
        result.push_fiber(&coord, &values[g * r..(g + 1) * r]);
    }
    (result, elapsed_us)
}

/// ParTI-OMP SpMTTKRP: one task per output slice (row of `M`), walking that
/// slice's non-zeros. Returns the dense result and wall-clock µs.
pub fn spmttkrp_omp(prepared: &SortedCoo, factors: &[&DenseMatrix]) -> (DenseMatrix, f64) {
    assert!(
        !prepared.fiber_groups,
        "SortedCoo must be built with for_spmttkrp"
    );
    let mode = prepared.mode;
    let tensor = &prepared.tensor;
    let order = tensor.order();
    assert_eq!(factors.len(), order, "one factor per mode required");
    let product_modes: Vec<usize> = (0..order).filter(|&m| m != mode).collect();
    let r = factors[product_modes[0]].cols();
    for &m in &product_modes {
        assert_eq!(
            factors[m].rows(),
            tensor.shape()[m],
            "factor {m} row count mismatch"
        );
        assert_eq!(factors[m].cols(), r, "factor {m} rank mismatch");
    }
    let rows = tensor.shape()[mode];
    let mut out = DenseMatrix::zeros(rows, r);
    let out_ptr = SyncMutPtr(out.data_mut().as_mut_ptr());
    let groups = prepared.groups();
    let mode_index = tensor.mode_indices(mode);
    let tensor_values = tensor.values();
    let (_, elapsed_us) = timing::time_us(|| {
        let out_ptr = &out_ptr;
        let product_modes = &product_modes;
        #[allow(clippy::needless_range_loop)] // nz indexes several parallel arrays
        parallel_for(groups, |g| {
            let first = prepared.group_ptr[g];
            let out_row = mode_index[first] as usize;
            // SAFETY: each slice owns a distinct output row.
            let row = unsafe { std::slice::from_raw_parts_mut(out_ptr.0.add(out_row * r), r) };
            let mut scratch = vec![0.0f32; r];
            for nz in prepared.group_ptr[g]..prepared.group_ptr[g + 1] {
                let value: Val = tensor_values[nz];
                scratch.iter_mut().for_each(|s| *s = value);
                for &m in product_modes {
                    let factor_row = factors[m].row(tensor.mode_indices(m)[nz] as usize);
                    for (s, &f) in scratch.iter_mut().zip(factor_row) {
                        *s *= f;
                    }
                }
                for (o, &s) in row.iter_mut().zip(&scratch) {
                    *o += s;
                }
            }
        });
    });
    (out, elapsed_us)
}

struct SyncMutPtr(*mut f32);
// SAFETY: the pointer targets the output buffer, which outlives the scoped
// workers; writes are restricted to disjoint rows per worker.
unsafe impl Send for SyncMutPtr {}
// SAFETY: see `Send` above — per-worker row disjointness makes this sound.
unsafe impl Sync for SyncMutPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_core::datasets::{self, DatasetKind};
    use tensor_core::ops;

    fn factors_for(tensor: &SparseTensorCoo, r: usize, seed: u64) -> Vec<DenseMatrix> {
        tensor
            .shape()
            .iter()
            .enumerate()
            .map(|(m, &size)| DenseMatrix::random(size, r, seed + m as u64))
            .collect()
    }

    #[test]
    fn spttm_omp_matches_reference() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 3000, 50);
        for mode in 0..3 {
            let prepared = SortedCoo::for_spttm(&tensor, mode);
            let u = DenseMatrix::random(tensor.shape()[mode], 16, 5);
            let (result, elapsed) = spttm_omp(&prepared, &u);
            let reference = ops::spttm(&tensor, mode, &u);
            let diff = result
                .max_abs_diff(&reference)
                .expect("fiber sets must match");
            assert!(diff < 1e-3, "mode {mode} diff {diff}");
            assert!(elapsed > 0.0);
        }
    }

    #[test]
    fn spmttkrp_omp_matches_reference() {
        let (tensor, _) = datasets::generate(DatasetKind::Brainq, 6000, 51);
        let factors = factors_for(&tensor, 8, 3);
        let refs: Vec<&DenseMatrix> = factors.iter().collect();
        for mode in 0..3 {
            let prepared = SortedCoo::for_spmttkrp(&tensor, mode);
            let (result, _) = spmttkrp_omp(&prepared, &refs);
            let reference = ops::spmttkrp(&tensor, mode, &refs);
            assert!(result.max_abs_diff(&reference) < 1e-3, "mode {mode}");
        }
    }

    #[test]
    fn group_counts_match_distinct_coordinates() {
        let (tensor, _) = datasets::generate(DatasetKind::Delicious, 2500, 52);
        let fibers = SortedCoo::for_spttm(&tensor, 2);
        assert_eq!(fibers.groups(), tensor.count_distinct(&[0, 1]));
        let slices = SortedCoo::for_spmttkrp(&tensor, 0);
        assert_eq!(slices.groups(), tensor.count_distinct(&[0]));
    }

    #[test]
    #[should_panic(expected = "must be built with for_spttm")]
    fn spttm_rejects_slice_grouping() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 500, 53);
        let prepared = SortedCoo::for_spmttkrp(&tensor, 0);
        let u = DenseMatrix::random(tensor.shape()[0], 4, 1);
        let _ = spttm_omp(&prepared, &u);
    }
}
