//! SPLATT's Compressed Sparse Fiber (CSF) format (Smith & Karypis).
//!
//! CSF is the tree-based, fiber-centric format the paper compares against
//! for SpMTTKRP on CPUs. A 3-order tensor sorted by `(root, middle, leaf)`
//! becomes a three-level tree: distinct root indices (slices), distinct
//! `(root, middle)` pairs (fibers), and leaves (non-zeros). The MTTKRP over
//! it is FLOP-reduced: the leaf factor rows are accumulated once per fiber
//! before being scaled by the middle factor row — the optimization SPLATT is
//! built around.

use crate::timing;
use cpu_par::parallel_for;
use tensor_core::{DenseMatrix, Idx, SparseTensorCoo, Val};

/// A 3-order tensor in CSF form, rooted at a chosen mode.
#[derive(Debug, Clone)]
pub struct Csf {
    /// Tensor shape (all modes).
    pub shape: Vec<usize>,
    /// Mode order `(root, middle, leaf)` used to build the tree.
    pub mode_order: [usize; 3],
    /// Distinct root-mode indices, one per slice.
    pub slice_index: Vec<Idx>,
    /// Fiber range of each slice: fibers of slice `s` are
    /// `slice_ptr[s]..slice_ptr[s + 1]`.
    pub slice_ptr: Vec<usize>,
    /// Middle-mode index of each fiber.
    pub fiber_index: Vec<Idx>,
    /// Leaf range of each fiber.
    pub fiber_ptr: Vec<usize>,
    /// Leaf-mode index of each non-zero.
    pub leaf_index: Vec<Idx>,
    /// Non-zero values, leaf order.
    pub values: Vec<Val>,
}

impl Csf {
    /// Builds a CSF tree rooted at `root_mode` (the MTTKRP output mode in
    /// SPLATT's usual configuration). The other two modes become the middle
    /// and leaf levels in ascending order.
    ///
    /// # Panics
    /// If the tensor is not 3-order or is empty.
    pub fn build(tensor: &SparseTensorCoo, root_mode: usize) -> Self {
        assert_eq!(tensor.order(), 3, "CSF implementation is 3-order");
        assert!(tensor.nnz() > 0, "cannot build CSF from an empty tensor");
        assert!(root_mode < 3, "root mode out of range");
        let others: Vec<usize> = (0..3).filter(|&m| m != root_mode).collect();
        let mode_order = [root_mode, others[0], others[1]];
        let mut sorted = tensor.clone();
        sorted.sort_by_mode_order(mode_order.as_ref());
        let root = sorted.mode_indices(mode_order[0]);
        let middle = sorted.mode_indices(mode_order[1]);
        let leaf = sorted.mode_indices(mode_order[2]);

        // CSR-style pointer construction: push each level's start ordinal on
        // a boundary, then cap with the total count.
        let mut slice_index = Vec::new();
        let mut slice_ptr = Vec::new();
        let mut fiber_index = Vec::new();
        let mut fiber_ptr = Vec::new();
        for nz in 0..sorted.nnz() {
            let new_slice = nz == 0 || root[nz] != root[nz - 1];
            let new_fiber = new_slice || middle[nz] != middle[nz - 1];
            if new_fiber {
                fiber_ptr.push(nz);
                fiber_index.push(middle[nz]);
            }
            if new_slice {
                slice_ptr.push(fiber_index.len() - 1);
                slice_index.push(root[nz]);
            }
        }
        fiber_ptr.push(sorted.nnz());
        slice_ptr.push(fiber_index.len());
        Csf {
            shape: sorted.shape().to_vec(),
            mode_order,
            slice_index,
            slice_ptr,
            fiber_index,
            fiber_ptr,
            leaf_index: leaf.to_vec(),
            values: sorted.values().to_vec(),
        }
    }

    /// Number of slices (root-level nodes).
    pub fn num_slices(&self) -> usize {
        self.slice_index.len()
    }

    /// Number of fibers (middle-level nodes).
    pub fn num_fibers(&self) -> usize {
        self.fiber_index.len()
    }

    /// Number of non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Bytes of the CSF structure.
    pub fn storage_bytes(&self) -> usize {
        4 * (self.slice_index.len()
            + self.slice_ptr.len()
            + self.fiber_index.len()
            + self.fiber_ptr.len()
            + self.leaf_index.len()
            + self.values.len())
    }
}

/// SPLATT-style parallel MTTKRP on the CSF root mode.
///
/// `factors` holds one matrix per tensor mode; the output mode is the CSF
/// root. Parallelizes over slices (SPLATT's strategy), so each output row is
/// written by exactly one task. Returns the result and the wall-clock time.
pub fn mttkrp_csf(csf: &Csf, factors: &[&DenseMatrix]) -> (DenseMatrix, f64) {
    let [root_mode, middle_mode, leaf_mode] = csf.mode_order;
    let r = factors[middle_mode].cols();
    assert_eq!(
        factors[middle_mode].rows(),
        csf.shape[middle_mode],
        "middle factor mismatch"
    );
    assert_eq!(
        factors[leaf_mode].rows(),
        csf.shape[leaf_mode],
        "leaf factor mismatch"
    );
    assert_eq!(factors[leaf_mode].cols(), r, "factor rank mismatch");
    let rows = csf.shape[root_mode];
    let mut out = DenseMatrix::zeros(rows, r);
    let out_ptr = SyncMutPtr(out.data_mut().as_mut_ptr());
    let middle_factor = factors[middle_mode];
    let leaf_factor = factors[leaf_mode];
    let (_, elapsed_us) = timing::time_us(|| {
        let out_ptr = &out_ptr;
        parallel_for(csf.num_slices(), |s| {
            let mut accum = vec![0.0f32; r];
            let mut row_accum = vec![0.0f32; r];
            for f in csf.slice_ptr[s]..csf.slice_ptr[s + 1] {
                accum.iter_mut().for_each(|a| *a = 0.0);
                for nz in csf.fiber_ptr[f]..csf.fiber_ptr[f + 1] {
                    let value = csf.values[nz];
                    let leaf_row = leaf_factor.row(csf.leaf_index[nz] as usize);
                    for (a, &l) in accum.iter_mut().zip(leaf_row) {
                        *a += value * l;
                    }
                }
                let middle_row = middle_factor.row(csf.fiber_index[f] as usize);
                for ((ra, &a), &m) in row_accum.iter_mut().zip(&accum).zip(middle_row) {
                    *ra += a * m;
                }
            }
            let out_row = csf.slice_index[s] as usize;
            // SAFETY: each slice owns a distinct output row.
            let dest = unsafe { std::slice::from_raw_parts_mut(out_ptr.0.add(out_row * r), r) };
            dest.copy_from_slice(&row_accum);
        });
    });
    (out, elapsed_us)
}

struct SyncMutPtr(*mut f32);
// SAFETY: the pointer targets the output buffer, which outlives the scoped
// workers; writes are restricted to disjoint rows per worker.
unsafe impl Send for SyncMutPtr {}
// SAFETY: see `Send` above — per-worker row disjointness makes this sound.
unsafe impl Sync for SyncMutPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_core::datasets::{self, DatasetKind};
    use tensor_core::ops;

    fn factors_for(tensor: &SparseTensorCoo, r: usize, seed: u64) -> Vec<DenseMatrix> {
        tensor
            .shape()
            .iter()
            .enumerate()
            .map(|(m, &size)| DenseMatrix::random(size, r, seed + m as u64))
            .collect()
    }

    #[test]
    fn csf_structure_counts_match_tensor() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 3000, 40);
        for root in 0..3 {
            let csf = Csf::build(&tensor, root);
            assert_eq!(csf.nnz(), tensor.nnz());
            assert_eq!(csf.num_slices(), tensor.count_distinct(&[root]));
            let others: Vec<usize> = (0..3).filter(|&m| m != root).collect();
            assert_eq!(
                csf.num_fibers(),
                tensor.count_distinct(&[root, others[0]]),
                "root {root}"
            );
        }
    }

    #[test]
    fn csf_pointers_are_monotone_and_complete() {
        let (tensor, _) = datasets::generate(DatasetKind::Delicious, 2500, 41);
        let csf = Csf::build(&tensor, 1);
        assert_eq!(*csf.slice_ptr.last().unwrap(), csf.num_fibers());
        assert_eq!(*csf.fiber_ptr.last().unwrap(), csf.nnz());
        assert!(csf.slice_ptr.windows(2).all(|w| w[0] < w[1]));
        assert!(csf.fiber_ptr.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn csf_leaves_within_slice_share_root_index() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 2000, 42);
        let csf = Csf::build(&tensor, 0);
        let mut sorted = tensor.clone();
        sorted.sort_by_mode_order(&[0, 1, 2]);
        let root = sorted.mode_indices(0);
        for s in 0..csf.num_slices() {
            for f in csf.slice_ptr[s]..csf.slice_ptr[s + 1] {
                let leaves = &root[csf.fiber_ptr[f]..csf.fiber_ptr[f + 1]];
                assert!(leaves.iter().all(|&r| r == csf.slice_index[s]));
            }
        }
    }

    #[test]
    fn mttkrp_csf_matches_reference_all_modes() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 3000, 43);
        let factors = factors_for(&tensor, 16, 7);
        let refs: Vec<&DenseMatrix> = factors.iter().collect();
        for mode in 0..3 {
            let csf = Csf::build(&tensor, mode);
            let (result, elapsed) = mttkrp_csf(&csf, &refs);
            let reference = ops::spmttkrp(&tensor, mode, &refs);
            assert!(
                result.max_abs_diff(&reference) < 1e-3,
                "mode {mode}: diff {}",
                result.max_abs_diff(&reference)
            );
            assert!(elapsed > 0.0);
        }
    }

    #[test]
    fn mttkrp_csf_on_skewed_tensor() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell1, 4000, 44);
        let factors = factors_for(&tensor, 8, 9);
        let refs: Vec<&DenseMatrix> = factors.iter().collect();
        let csf = Csf::build(&tensor, 0);
        let (result, _) = mttkrp_csf(&csf, &refs);
        let reference = ops::spmttkrp(&tensor, 0, &refs);
        assert!(result.max_abs_diff(&reference) < 1e-3);
    }

    #[test]
    fn single_nonzero_csf() {
        let tensor = SparseTensorCoo::from_entries(vec![3, 3, 3], &[(vec![2, 1, 0], 4.0)]);
        let csf = Csf::build(&tensor, 0);
        assert_eq!(csf.num_slices(), 1);
        assert_eq!(csf.num_fibers(), 1);
        let factors = factors_for(&tensor, 4, 1);
        let refs: Vec<&DenseMatrix> = factors.iter().collect();
        let (result, _) = mttkrp_csf(&csf, &refs);
        let reference = ops::spmttkrp(&tensor, 0, &refs);
        assert!(result.max_abs_diff(&reference) < 1e-5);
    }

    #[test]
    fn storage_bytes_positive_and_below_coo_plus_tree() {
        let (tensor, _) = datasets::generate(DatasetKind::Nell2, 3000, 45);
        let csf = Csf::build(&tensor, 0);
        assert!(csf.storage_bytes() > 8 * csf.nnz());
        // CSF compresses repeated root/middle indices.
        assert!(csf.storage_bytes() < tensor.storage_bytes() + 8 * csf.num_fibers());
    }
}
