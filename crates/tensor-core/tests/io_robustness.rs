//! Robustness: the FROSTT `.tns` parser must never panic — any byte soup
//! either parses or returns a structured error.

use proptest::prelude::*;
use std::io::Cursor;
use tensor_core::io::{read_tns, write_tns};

proptest! {
    #[test]
    fn parser_never_panics_on_arbitrary_text(input in ".{0,400}") {
        let _ = read_tns(Cursor::new(input.into_bytes()));
    }

    #[test]
    fn parser_never_panics_on_numeric_soup(
        lines in proptest::collection::vec(
            proptest::collection::vec(-1_000_000i64..1_000_000, 0..6),
            0..30,
        ),
    ) {
        let mut text = String::new();
        for line in &lines {
            let fields: Vec<String> = line.iter().map(|v| v.to_string()).collect();
            text.push_str(&fields.join(" "));
            text.push('\n');
        }
        let _ = read_tns(Cursor::new(text.into_bytes()));
    }

    /// Anything we write, we can read back identically.
    #[test]
    fn write_read_round_trip(
        entries in proptest::collection::vec(
            ((0u32..50, 0u32..50, 0u32..50), -100.0f32..100.0),
            1..60,
        ),
    ) {
        let mut tensor = tensor_core::SparseTensorCoo::new(vec![50, 50, 50]);
        for ((i, j, k), value) in entries {
            tensor.push(&[i, j, k], value);
        }
        tensor.coalesce();
        prop_assume!(tensor.nnz() > 0);
        let mut buffer = Vec::new();
        write_tns(&tensor, &mut buffer).unwrap();
        let reloaded = read_tns(Cursor::new(buffer)).unwrap();
        prop_assert_eq!(reloaded.nnz(), tensor.nnz());
        let a: std::collections::BTreeMap<Vec<u32>, f32> = tensor.iter().collect();
        let b: std::collections::BTreeMap<Vec<u32>, f32> = reloaded.iter().collect();
        prop_assert_eq!(a, b);
    }
}
