//! Property-based tests for the dense solvers standing in for CUBLAS.

use proptest::prelude::*;
use tensor_core::linalg::{cholesky, cholesky_solve, pinv_sym, solve_normal_equations, sym_eigen};
use tensor_core::DenseMatrix;

/// Builds an SPD matrix AᵀA + εI from arbitrary data.
fn spd_from(data: Vec<f32>, n: usize) -> DenseMatrix {
    let rows = data.len() / n;
    let a = DenseMatrix::from_vec(rows, n, data[..rows * n].to_vec());
    let mut g = a.gram();
    for i in 0..n {
        g.set(i, i, g.get(i, i) + 0.5 + n as f32);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Jacobi eigenvalues of an SPD matrix are positive and their sum equals
    /// the trace.
    #[test]
    fn eigenvalues_of_spd_are_positive_and_sum_to_trace(
        data in proptest::collection::vec(-2.0f32..2.0, 24..48),
        n in 2usize..5,
    ) {
        prop_assume!(data.len() >= n * (n + 1));
        let g = spd_from(data, n);
        let eig = sym_eigen(&g);
        for &lambda in &eig.values {
            prop_assert!(lambda > 0.0, "non-positive eigenvalue {lambda}");
        }
        let trace: f64 = (0..n).map(|i| g.get(i, i) as f64).sum();
        let sum: f64 = eig.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-3 * (1.0 + trace.abs()));
    }

    /// Cholesky solve actually solves.
    #[test]
    fn cholesky_solves_spd_systems(
        data in proptest::collection::vec(-2.0f32..2.0, 24..48),
        rhs_seed in 0u64..1000,
        n in 2usize..5,
    ) {
        prop_assume!(data.len() >= n * (n + 1));
        let g = spd_from(data, n);
        let l = cholesky(&g).expect("SPD must factor");
        let b = DenseMatrix::random(n, 2, rhs_seed);
        let x = cholesky_solve(&l, n, &b);
        let reconstructed = g.matmul(&x);
        prop_assert!(reconstructed.max_abs_diff(&b) < 1e-2);
    }

    /// The pseudo-inverse satisfies the first Penrose condition on SPD input.
    #[test]
    fn pinv_penrose_on_spd(
        data in proptest::collection::vec(-2.0f32..2.0, 24..48),
        n in 2usize..5,
    ) {
        prop_assume!(data.len() >= n * (n + 1));
        let g = spd_from(data, n);
        let p = pinv_sym(&g, 1e-12);
        let gpg = g.matmul(&p).matmul(&g);
        prop_assert!(gpg.max_abs_diff(&g) < 1e-2);
    }

    /// solve_normal_equations returns X with X·G ≈ M for SPD G.
    #[test]
    fn normal_equations_solution_is_consistent(
        data in proptest::collection::vec(-2.0f32..2.0, 24..48),
        m_seed in 0u64..1000,
        n in 2usize..5,
    ) {
        prop_assume!(data.len() >= n * (n + 1));
        let g = spd_from(data, n);
        let m = DenseMatrix::random(6, n, m_seed);
        let x = solve_normal_equations(&m, &g);
        prop_assert!(x.matmul(&g).max_abs_diff(&m) < 1e-2);
    }
}
