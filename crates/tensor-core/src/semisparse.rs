//! Semi-sparse tensors: the output of TTM (sCOO format of Li et al.).
//!
//! After `Y = X ×ₙ U`, every mode-`n` fiber at a surviving coordinate is
//! dense with length `R = U.cols()`. Following the sCOO format, we store one
//! coordinate tuple per non-empty fiber (the index modes only) plus an
//! `nfibs × R` row-major dense value block.

use crate::{DenseMatrix, Idx, Val};

/// A tensor that is sparse in all modes except one dense mode of length `R`.
#[derive(Debug, Clone, PartialEq)]
pub struct SemiSparseTensor {
    /// Shape of the originating sparse tensor (all modes).
    shape: Vec<usize>,
    /// The mode that became dense (the TTM product mode).
    dense_mode: usize,
    /// Length of the dense fibers (`R`).
    dense_len: usize,
    /// `coords[m][fib]` for each index mode `m` (product mode omitted),
    /// in the same order as `shape` minus `dense_mode`.
    coords: Vec<Vec<Idx>>,
    /// `nfibs × dense_len` row-major fiber values.
    values: Vec<Val>,
}

impl SemiSparseTensor {
    /// Creates an empty semi-sparse tensor.
    ///
    /// # Panics
    /// If `dense_mode` is out of range or `dense_len` is zero.
    pub fn new(shape: Vec<usize>, dense_mode: usize, dense_len: usize) -> Self {
        assert!(dense_mode < shape.len(), "dense mode out of range");
        assert!(dense_len > 0, "dense fiber length must be positive");
        let index_mode_count = shape.len() - 1;
        SemiSparseTensor {
            shape,
            dense_mode,
            dense_len,
            coords: vec![Vec::new(); index_mode_count],
            values: Vec::new(),
        }
    }

    /// Appends a fiber with its dense values.
    ///
    /// `index_coord` lists the coordinates of every mode except the dense
    /// mode, in ascending mode order.
    ///
    /// # Panics
    /// If arities or bounds are violated.
    pub fn push_fiber(&mut self, index_coord: &[Idx], fiber: &[Val]) {
        assert_eq!(
            index_coord.len(),
            self.coords.len(),
            "index coordinate arity mismatch"
        );
        assert_eq!(fiber.len(), self.dense_len, "fiber length mismatch");
        for (slot, (&index, size)) in index_coord.iter().zip(self.index_mode_sizes()).enumerate() {
            assert!(
                (index as usize) < size,
                "fiber coordinate {index} out of bounds in slot {slot}"
            );
            self.coords[slot].push(index);
        }
        self.values.extend_from_slice(fiber);
    }

    /// Sizes of the index modes, in ascending mode order.
    pub fn index_mode_sizes(&self) -> Vec<usize> {
        self.shape
            .iter()
            .enumerate()
            .filter(|(m, _)| *m != self.dense_mode)
            .map(|(_, &s)| s)
            .collect()
    }

    /// Original tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The dense (product) mode.
    pub fn dense_mode(&self) -> usize {
        self.dense_mode
    }

    /// Length of each dense fiber.
    pub fn dense_len(&self) -> usize {
        self.dense_len
    }

    /// Number of stored fibers.
    pub fn nfibs(&self) -> usize {
        if self.coords.is_empty() {
            // Order-1 tensor: a single dense fiber if any values exist.
            usize::from(!self.values.is_empty())
        } else {
            self.coords[0].len()
        }
    }

    /// Index coordinates of fiber `fib` (ascending mode order, dense mode
    /// omitted).
    pub fn fiber_coord(&self, fib: usize) -> Vec<Idx> {
        self.coords.iter().map(|column| column[fib]).collect()
    }

    /// Dense values of fiber `fib`.
    pub fn fiber(&self, fib: usize) -> &[Val] {
        &self.values[fib * self.dense_len..(fib + 1) * self.dense_len]
    }

    /// Mutable dense values of fiber `fib`.
    pub fn fiber_mut(&mut self, fib: usize) -> &mut [Val] {
        &mut self.values[fib * self.dense_len..(fib + 1) * self.dense_len]
    }

    /// All fiber values, row-major `nfibs × dense_len`.
    pub fn values(&self) -> &[Val] {
        &self.values
    }

    /// Sorts fibers lexicographically by index coordinates, dropping any
    /// all-zero fibers. Canonicalizes the tensor so two construction orders
    /// compare equal.
    pub fn canonicalize(&mut self) {
        let nfibs = self.nfibs();
        let mut perm: Vec<usize> = (0..nfibs).collect();
        let coords = &self.coords;
        perm.sort_unstable_by(|&a, &b| {
            for column in coords {
                match column[a].cmp(&column[b]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });
        let keep: Vec<usize> = perm
            .into_iter()
            .filter(|&fib| self.fiber(fib).iter().any(|&v| v != 0.0))
            .collect();
        let mut new_coords = vec![Vec::with_capacity(keep.len()); self.coords.len()];
        let mut new_values = Vec::with_capacity(keep.len() * self.dense_len);
        for &fib in &keep {
            for (column, new_column) in self.coords.iter().zip(&mut new_coords) {
                new_column.push(column[fib]);
            }
            new_values.extend_from_slice(self.fiber(fib));
        }
        self.coords = new_coords;
        self.values = new_values;
    }

    /// Views the fibers as a dense `nfibs × dense_len` matrix (clones values).
    pub fn to_matrix(&self) -> DenseMatrix {
        DenseMatrix::from_vec(self.nfibs(), self.dense_len, self.values.clone())
    }

    /// Largest absolute difference to `other`, after both are canonicalized.
    /// Returns `None` if the fiber sets differ.
    pub fn max_abs_diff(&self, other: &SemiSparseTensor) -> Option<f64> {
        if self.shape != other.shape
            || self.dense_mode != other.dense_mode
            || self.dense_len != other.dense_len
        {
            return None;
        }
        let mut a = self.clone();
        let mut b = other.clone();
        a.canonicalize();
        b.canonicalize();
        if a.nfibs() != b.nfibs() || a.coords != b.coords {
            return None;
        }
        Some(
            a.values
                .iter()
                .zip(&b.values)
                .map(|(x, y)| ((x - y) as f64).abs())
                .fold(0.0, f64::max),
        )
    }

    /// Expands the semi-sparse tensor back into coordinate format: the dense
    /// mode's positions become explicit coordinates (zeros are dropped).
    ///
    /// This is what a chained-TTM pipeline (the paper's Fig. 3a "previous
    /// method") must do between steps, and is exactly the conversion the
    /// one-shot method avoids.
    pub fn to_coo(&self) -> crate::SparseTensorCoo {
        let mut shape = self.shape.clone();
        shape[self.dense_mode] = self.dense_len;
        let mut out = crate::SparseTensorCoo::new(shape);
        let mut coord = vec![0 as Idx; self.shape.len()];
        for fib in 0..self.nfibs() {
            let index_coord = self.fiber_coord(fib);
            let mut slot = 0usize;
            for (m, c) in coord.iter_mut().enumerate() {
                if m != self.dense_mode {
                    *c = index_coord[slot];
                    slot += 1;
                }
            }
            for (r, &value) in self.fiber(fib).iter().enumerate() {
                if value != 0.0 {
                    coord[self.dense_mode] = r as Idx;
                    out.push(&coord, value);
                }
            }
        }
        out
    }

    /// Bytes occupied: sCOO stores index-mode coordinates once per fiber plus
    /// the dense block.
    pub fn storage_bytes(&self) -> usize {
        self.nfibs()
            * (self.coords.len() * std::mem::size_of::<Idx>()
                + self.dense_len * std::mem::size_of::<Val>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SemiSparseTensor {
        let mut y = SemiSparseTensor::new(vec![2, 2, 3], 2, 4);
        y.push_fiber(&[1, 0], &[5.0, 6.0, 7.0, 8.0]);
        y.push_fiber(&[0, 0], &[1.0, 2.0, 3.0, 4.0]);
        y
    }

    #[test]
    fn push_and_read_fibers() {
        let y = sample();
        assert_eq!(y.nfibs(), 2);
        assert_eq!(y.fiber_coord(0), vec![1, 0]);
        assert_eq!(y.fiber(1), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y.index_mode_sizes(), vec![2, 2]);
    }

    #[test]
    fn canonicalize_sorts_by_coordinates() {
        let mut y = sample();
        y.canonicalize();
        assert_eq!(y.fiber_coord(0), vec![0, 0]);
        assert_eq!(y.fiber(0), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn canonicalize_drops_zero_fibers() {
        let mut y = sample();
        y.push_fiber(&[1, 1], &[0.0, 0.0, 0.0, 0.0]);
        y.canonicalize();
        assert_eq!(y.nfibs(), 2);
    }

    #[test]
    fn diff_detects_equal_tensors_built_in_different_orders() {
        let a = sample();
        let mut b = SemiSparseTensor::new(vec![2, 2, 3], 2, 4);
        b.push_fiber(&[0, 0], &[1.0, 2.0, 3.0, 4.0]);
        b.push_fiber(&[1, 0], &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.max_abs_diff(&b), Some(0.0));
    }

    #[test]
    fn diff_detects_differing_fiber_sets() {
        let a = sample();
        let mut b = SemiSparseTensor::new(vec![2, 2, 3], 2, 4);
        b.push_fiber(&[0, 1], &[1.0, 2.0, 3.0, 4.0]);
        b.push_fiber(&[1, 0], &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.max_abs_diff(&b), None);
    }

    #[test]
    fn diff_measures_value_gap() {
        let a = sample();
        let mut b = a.clone();
        b.fiber_mut(0)[2] += 0.5;
        assert!((a.max_abs_diff(&b).unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn storage_bytes_scoo() {
        let y = sample();
        // 2 fibers × (2 index coords × 4 bytes + 4 dense values × 4 bytes).
        assert_eq!(y.storage_bytes(), 2 * (8 + 16));
    }

    #[test]
    fn to_coo_expands_dense_mode() {
        let y = sample();
        let coo = to_coo_of_sample(&y);
        assert_eq!(coo.shape(), &[2, 2, 4]);
        assert_eq!(coo.nnz(), 8);
        // Spot-check a couple of entries.
        let entries: std::collections::BTreeMap<Vec<u32>, f32> = coo.iter().collect();
        assert_eq!(entries[&vec![1, 0, 0]], 5.0);
        assert_eq!(entries[&vec![0, 0, 3]], 4.0);
    }

    fn to_coo_of_sample(y: &SemiSparseTensor) -> crate::SparseTensorCoo {
        y.to_coo()
    }

    #[test]
    fn to_coo_drops_zeros() {
        let mut y = SemiSparseTensor::new(vec![2, 2, 3], 2, 4);
        y.push_fiber(&[0, 1], &[1.0, 0.0, 0.0, 2.0]);
        let coo = y.to_coo();
        assert_eq!(coo.nnz(), 2);
    }

    #[test]
    fn to_coo_round_trips_through_spttm_identity() {
        // TTM with the identity matrix leaves values in place; converting
        // back to COO must reproduce the original tensor.
        let tensor = crate::SparseTensorCoo::from_entries(
            vec![3, 4, 5],
            &[
                (vec![0, 1, 2], 1.5),
                (vec![2, 3, 4], -2.0),
                (vec![1, 0, 0], 3.0),
            ],
        );
        let identity = crate::DenseMatrix::identity(5);
        let y = crate::ops::spttm(&tensor, 2, &identity);
        let mut recovered = y.to_coo();
        recovered.coalesce();
        let a: std::collections::BTreeMap<Vec<u32>, f32> = tensor.iter().collect();
        let b: std::collections::BTreeMap<Vec<u32>, f32> = recovered.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "fiber length mismatch")]
    fn push_rejects_bad_fiber_length() {
        let mut y = SemiSparseTensor::new(vec![2, 2, 3], 2, 4);
        y.push_fiber(&[0, 0], &[1.0]);
    }
}
