//! Sequential reference implementations of the paper's sparse tensor
//! operations.
//!
//! These are the correctness oracles: every optimized kernel (unified F-COO,
//! ParTI-style, SPLATT-style) is validated against them. They favour clarity
//! over speed and accumulate in `f64` where it matters.

use crate::{DenseMatrix, Idx, SemiSparseTensor, SparseTensorCoo, Val};
use std::collections::HashMap;

/// Sparse tensor-times-matrix on `mode` (paper Eq. 3): `Y = X ×ₙ U`.
///
/// `u` must have one row per index along `mode`; the result is semi-sparse
/// with `u.cols()` dense values per surviving fiber.
///
/// # Panics
/// If `u.rows()` does not match the size of `mode`.
pub fn spttm(x: &SparseTensorCoo, mode: usize, u: &DenseMatrix) -> SemiSparseTensor {
    assert!(mode < x.order(), "mode out of range");
    assert_eq!(
        u.rows(),
        x.shape()[mode],
        "matrix rows must match product-mode size"
    );
    let r = u.cols();
    let index_modes: Vec<usize> = (0..x.order()).filter(|&m| m != mode).collect();
    // Map each index-mode coordinate tuple to a fiber slot.
    let mut fiber_of: HashMap<Vec<Idx>, usize> = HashMap::new();
    let mut coords: Vec<Vec<Idx>> = Vec::new();
    let mut accumulators: Vec<Vec<f64>> = Vec::new();
    for nz in 0..x.nnz() {
        let key: Vec<Idx> = index_modes.iter().map(|&m| x.mode_indices(m)[nz]).collect();
        let slot = *fiber_of.entry(key.clone()).or_insert_with(|| {
            coords.push(key);
            accumulators.push(vec![0.0; r]);
            accumulators.len() - 1
        });
        let value = x.values()[nz] as f64;
        let row = u.row(x.mode_indices(mode)[nz] as usize);
        for (acc, &m) in accumulators[slot].iter_mut().zip(row) {
            *acc += value * m as f64;
        }
    }
    let mut y = SemiSparseTensor::new(x.shape().to_vec(), mode, r);
    for (coord, fiber) in coords.iter().zip(&accumulators) {
        let fiber: Vec<Val> = fiber.iter().map(|&v| v as Val).collect();
        y.push_fiber(coord, &fiber);
    }
    y.canonicalize();
    y
}

/// Sparse MTTKRP on `mode` (paper Eq. 6), one-shot over the non-zeros.
///
/// `factors` holds one matrix per tensor mode (the entry at `mode` is
/// ignored); all must share the column count `R`. Returns the dense
/// `shape[mode] × R` result.
///
/// # Panics
/// If factor shapes are inconsistent with the tensor.
pub fn spmttkrp(x: &SparseTensorCoo, mode: usize, factors: &[&DenseMatrix]) -> DenseMatrix {
    assert!(mode < x.order(), "mode out of range");
    assert_eq!(factors.len(), x.order(), "one factor per mode required");
    let r = factors[(mode + 1) % x.order()].cols();
    for (m, factor) in factors.iter().enumerate() {
        if m != mode {
            assert_eq!(factor.rows(), x.shape()[m], "factor {m} row count mismatch");
            assert_eq!(factor.cols(), r, "factor {m} column count mismatch");
        }
    }
    let rows = x.shape()[mode];
    let mut out = vec![0.0f64; rows * r];
    let mut scratch = vec![0.0f64; r];
    for nz in 0..x.nnz() {
        let value = x.values()[nz] as f64;
        for s in scratch.iter_mut() {
            *s = value;
        }
        for (m, factor) in factors.iter().enumerate() {
            if m == mode {
                continue;
            }
            let row = factor.row(x.mode_indices(m)[nz] as usize);
            for (s, &f) in scratch.iter_mut().zip(row) {
                *s *= f as f64;
            }
        }
        let out_row = x.mode_indices(mode)[nz] as usize;
        for (o, &s) in out[out_row * r..(out_row + 1) * r].iter_mut().zip(&scratch) {
            *o += s;
        }
    }
    DenseMatrix::from_vec(rows, r, out.into_iter().map(|v| v as Val).collect())
}

/// MTTKRP via explicit matricization and Khatri-Rao product (paper Eq. 5).
///
/// Exponential in memory — only usable for tiny tensors — but a completely
/// independent derivation, used to validate [`spmttkrp`] itself. Only
/// implemented for 3-order tensors.
pub fn spmttkrp_via_unfolding(
    x: &SparseTensorCoo,
    mode: usize,
    factors: &[&DenseMatrix],
) -> DenseMatrix {
    assert_eq!(x.order(), 3, "unfolding reference is 3-order only");
    let shape = x.shape();
    let (i, j, k) = (shape[0], shape[1], shape[2]);
    // Khatri-Rao operand order per paper Algorithm 1: mode-1 uses C ⊙ B, etc.
    let (rows, kr, col_of) = match mode {
        0 => {
            let kr = factors[2].khatri_rao(factors[1]);
            // X(1) is I × JK with column z = k·J + j.
            let col = move |c: &[Idx]| c[2] as usize * j + c[1] as usize;
            (i, kr, Box::new(col) as Box<dyn Fn(&[Idx]) -> usize>)
        }
        1 => {
            let kr = factors[2].khatri_rao(factors[0]);
            let col = move |c: &[Idx]| c[2] as usize * i + c[0] as usize;
            (j, kr, Box::new(col) as Box<dyn Fn(&[Idx]) -> usize>)
        }
        2 => {
            let kr = factors[1].khatri_rao(factors[0]);
            let col = move |c: &[Idx]| c[1] as usize * i + c[0] as usize;
            (k, kr, Box::new(col) as Box<dyn Fn(&[Idx]) -> usize>)
        }
        _ => panic!("mode out of range"),
    };
    let r = kr.cols();
    let mut out = DenseMatrix::zeros(rows, r);
    for (coord, value) in x.iter() {
        let row = coord[mode] as usize;
        let z = col_of(&coord);
        for c in 0..r {
            out.set(row, c, out.get(row, c) + value * kr.get(z, c));
        }
    }
    out
}

/// Sparse TTMc on `mode` for 3-order tensors (paper Eq. 4):
/// `Y(n)(iₙ, :) += X(i,j,k) · (U_a(a,:) ⊗ U_b(b,:))` where `a, b` are the
/// two non-`mode` coordinates in ascending mode order.
///
/// Returns the `shape[mode] × (R_a · R_b)` matricized result.
pub fn spttmc(x: &SparseTensorCoo, mode: usize, factors: &[&DenseMatrix]) -> DenseMatrix {
    assert_eq!(x.order(), 3, "TTMc reference is 3-order only");
    assert!(mode < 3, "mode out of range");
    let others: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
    let (ma, mb) = (others[0], others[1]);
    let (fa, fb) = (factors[ma], factors[mb]);
    assert_eq!(fa.rows(), x.shape()[ma], "factor row mismatch on mode {ma}");
    assert_eq!(fb.rows(), x.shape()[mb], "factor row mismatch on mode {mb}");
    let (ra, rb) = (fa.cols(), fb.cols());
    let rows = x.shape()[mode];
    let mut out = vec![0.0f64; rows * ra * rb];
    for nz in 0..x.nnz() {
        let value = x.values()[nz] as f64;
        let row_out = x.mode_indices(mode)[nz] as usize;
        let row_a = fa.row(x.mode_indices(ma)[nz] as usize);
        let row_b = fb.row(x.mode_indices(mb)[nz] as usize);
        let base = row_out * ra * rb;
        for (a, &va) in row_a.iter().enumerate() {
            let scaled = value * va as f64;
            for (b, &vb) in row_b.iter().enumerate() {
                out[base + a * rb + b] += scaled * vb as f64;
            }
        }
    }
    DenseMatrix::from_vec(rows, ra * rb, out.into_iter().map(|v| v as Val).collect())
}

/// Sparse TTMc on `mode` for tensors of any order: the matricized
/// `Y(n)(iₙ, :) += X(i₁,…,i_N) · (⊗_{m≠n} U_m(i_m, :))`, with the Kronecker
/// product taken over the product modes in ascending order (later modes
/// vary fastest, matching [`spttmc`] for 3-order inputs).
///
/// `factors` holds one matrix per *product mode*, in ascending mode order.
pub fn spttmc_norder(
    x: &SparseTensorCoo,
    mode: usize,
    product_factors: &[&DenseMatrix],
) -> DenseMatrix {
    assert!(mode < x.order(), "mode out of range");
    let product_modes: Vec<usize> = (0..x.order()).filter(|&m| m != mode).collect();
    assert_eq!(
        product_factors.len(),
        product_modes.len(),
        "one factor per product mode"
    );
    for (&m, factor) in product_modes.iter().zip(product_factors) {
        assert_eq!(
            factor.rows(),
            x.shape()[m],
            "factor row mismatch on mode {m}"
        );
    }
    let columns: usize = product_factors.iter().map(|f| f.cols()).product();
    let rows = x.shape()[mode];
    let mut out = vec![0.0f64; rows * columns];
    // Mixed-radix strides: the last product mode varies fastest.
    let mut strides = vec![1usize; product_factors.len()];
    for p in (0..product_factors.len().saturating_sub(1)).rev() {
        strides[p] = strides[p + 1] * product_factors[p + 1].cols();
    }
    let mut kron = vec![0.0f64; columns];
    for nz in 0..x.nnz() {
        let value = x.values()[nz] as f64;
        let row_out = x.mode_indices(mode)[nz] as usize;
        // Build the Kronecker row incrementally.
        kron[0] = 1.0;
        let mut width = 1usize;
        for (&m, factor) in product_modes.iter().zip(product_factors) {
            let row = factor.row(x.mode_indices(m)[nz] as usize);
            let cols = factor.cols();
            for existing in (0..width).rev() {
                let base_value = kron[existing];
                for (c, &f) in row.iter().enumerate() {
                    kron[existing * cols + c] = base_value * f as f64;
                }
            }
            width *= cols;
        }
        let base = row_out * columns;
        for (slot, &k) in kron[..width].iter().enumerate() {
            out[base + slot] += value * k;
        }
    }
    DenseMatrix::from_vec(rows, columns, out.into_iter().map(|v| v as Val).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::assert_slices_close;

    fn small_tensor() -> SparseTensorCoo {
        SparseTensorCoo::from_entries(
            vec![3, 4, 5],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![0, 1, 2], 2.0),
                (vec![1, 0, 1], -1.5),
                (vec![1, 3, 4], 0.5),
                (vec![2, 2, 2], 3.0),
                (vec![2, 2, 3], -2.0),
                (vec![2, 3, 0], 1.0),
            ],
        )
    }

    #[test]
    fn spttm_matches_dense_computation() {
        let x = small_tensor();
        let u = DenseMatrix::random(5, 3, 77);
        let y = spttm(&x, 2, &u);
        // Dense check: for every (i, j) compute sum_k X(i,j,k)·U(k,:).
        let mut expected: HashMap<(Idx, Idx), Vec<Val>> = HashMap::new();
        for (coord, value) in x.iter() {
            let entry = expected
                .entry((coord[0], coord[1]))
                .or_insert_with(|| vec![0.0; 3]);
            for (e, &m) in entry.iter_mut().zip(u.row(coord[2] as usize)) {
                *e += value * m;
            }
        }
        assert_eq!(y.nfibs(), expected.len());
        for fib in 0..y.nfibs() {
            let coord = y.fiber_coord(fib);
            let reference = &expected[&(coord[0], coord[1])];
            assert_slices_close(y.fiber(fib), reference, 1e-5);
        }
    }

    #[test]
    fn spttm_on_every_mode_has_right_fiber_count() {
        let x = small_tensor();
        for mode in 0..3 {
            let u = DenseMatrix::random(x.shape()[mode], 2, mode as u64);
            let y = spttm(&x, mode, &u);
            let index_modes: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
            assert_eq!(y.nfibs(), x.count_distinct(&index_modes));
            assert_eq!(y.dense_len(), 2);
        }
    }

    #[test]
    fn spmttkrp_matches_unfolding_reference_all_modes() {
        let x = small_tensor();
        let a = DenseMatrix::random(3, 4, 1);
        let b = DenseMatrix::random(4, 4, 2);
        let c = DenseMatrix::random(5, 4, 3);
        let factors = [&a, &b, &c];
        for mode in 0..3 {
            let fast = spmttkrp(&x, mode, &factors);
            let slow = spmttkrp_via_unfolding(&x, mode, &factors);
            assert!(
                fast.max_abs_diff(&slow) < 1e-4,
                "mode {mode}: max diff {}",
                fast.max_abs_diff(&slow)
            );
        }
    }

    #[test]
    fn spmttkrp_empty_tensor_is_zero() {
        let x = SparseTensorCoo::new(vec![3, 4, 5]);
        let a = DenseMatrix::random(3, 2, 1);
        let b = DenseMatrix::random(4, 2, 2);
        let c = DenseMatrix::random(5, 2, 3);
        let m = spmttkrp(&x, 0, &[&a, &b, &c]);
        assert_eq!(m.data(), DenseMatrix::zeros(3, 2).data());
    }

    #[test]
    fn spmttkrp_single_entry() {
        let x = SparseTensorCoo::from_entries(vec![2, 2, 2], &[(vec![1, 0, 1], 2.0)]);
        let a = DenseMatrix::random(2, 3, 4);
        let b = DenseMatrix::random(2, 3, 5);
        let c = DenseMatrix::random(2, 3, 6);
        let m = spmttkrp(&x, 0, &[&a, &b, &c]);
        for col in 0..3 {
            let expected = 2.0 * b.get(0, col) * c.get(1, col);
            assert!((m.get(1, col) - expected).abs() < 1e-6);
            assert_eq!(m.get(0, col), 0.0);
        }
    }

    #[test]
    fn spttmc_matches_kronecker_structure() {
        let x = small_tensor();
        let a = DenseMatrix::random(3, 2, 11);
        let b = DenseMatrix::random(4, 3, 12);
        let c = DenseMatrix::random(5, 2, 13);
        let y = spttmc(&x, 0, &[&a, &b, &c]);
        assert_eq!((y.rows(), y.cols()), (3, 6));
        // Independent check on one output entry: Y(1)(i, :) = Σ X(i,j,k)·(B(j,:) ⊗ C(k,:)).
        let mut expected = vec![0.0f32; 6];
        for (coord, value) in x.iter() {
            if coord[0] != 2 {
                continue;
            }
            for (p, &vb) in b.row(coord[1] as usize).iter().enumerate() {
                for (q, &vc) in c.row(coord[2] as usize).iter().enumerate() {
                    expected[p * 2 + q] += value * vb * vc;
                }
            }
        }
        assert_slices_close(y.row(2), &expected, 1e-5);
    }

    #[test]
    fn spttmc_reduces_to_khatri_rao_mttkrp_when_diagonal() {
        // With R_a = R_b = 1, TTMc and MTTKRP coincide.
        let x = small_tensor();
        let a = DenseMatrix::random(3, 1, 21);
        let b = DenseMatrix::random(4, 1, 22);
        let c = DenseMatrix::random(5, 1, 23);
        let factors = [&a, &b, &c];
        let ttmc = spttmc(&x, 1, &factors);
        let mttkrp = spmttkrp(&x, 1, &factors);
        assert!(ttmc.max_abs_diff(&mttkrp) < 1e-5);
    }

    #[test]
    fn spttmc_norder_matches_3_order_reference() {
        let x = small_tensor();
        let a = DenseMatrix::random(3, 2, 31);
        let b = DenseMatrix::random(4, 3, 32);
        let c = DenseMatrix::random(5, 2, 33);
        let general = spttmc_norder(&x, 0, &[&b, &c]);
        let special = spttmc(&x, 0, &[&a, &b, &c]);
        assert!(general.max_abs_diff(&special) < 1e-5);
        let general1 = spttmc_norder(&x, 1, &[&a, &c]);
        let special1 = spttmc(&x, 1, &[&a, &b, &c]);
        assert!(general1.max_abs_diff(&special1) < 1e-5);
    }

    #[test]
    fn spttmc_norder_on_4_order_matches_brute_force() {
        let x = SparseTensorCoo::from_entries(
            vec![3, 2, 4, 2],
            &[
                (vec![0, 0, 0, 0], 1.0),
                (vec![1, 1, 2, 0], 2.0),
                (vec![2, 0, 3, 1], -1.0),
                (vec![0, 1, 1, 1], 0.5),
            ],
        );
        let f1 = DenseMatrix::random(2, 2, 41);
        let f2 = DenseMatrix::random(4, 3, 42);
        let f3 = DenseMatrix::random(2, 2, 43);
        let result = spttmc_norder(&x, 0, &[&f1, &f2, &f3]);
        assert_eq!((result.rows(), result.cols()), (3, 12));
        // Brute force one output entry.
        let mut expected = vec![0.0f32; 12];
        for (coord, value) in x.iter() {
            if coord[0] != 0 {
                continue;
            }
            for (p, &a) in f1.row(coord[1] as usize).iter().enumerate() {
                for (q, &b) in f2.row(coord[2] as usize).iter().enumerate() {
                    for (r, &c) in f3.row(coord[3] as usize).iter().enumerate() {
                        expected[p * 6 + q * 2 + r] += value * a * b * c;
                    }
                }
            }
        }
        assert_slices_close(result.row(0), &expected, 1e-5);
    }

    #[test]
    #[should_panic(expected = "matrix rows must match")]
    fn spttm_rejects_mismatched_matrix() {
        let x = small_tensor();
        let u = DenseMatrix::zeros(4, 2);
        let _ = spttm(&x, 2, &u);
    }
}
