//! Tensor and dense linear-algebra substrate for the unified sparse tensor
//! reproduction (Liu et al., CLUSTER 2017).
//!
//! This crate provides everything the paper assumes as given:
//!
//! * [`DenseMatrix`] — row-major single-precision dense matrices (the factor
//!   matrices of tensor decompositions) with the product operations the paper
//!   uses (Kronecker, Khatri-Rao, Hadamard, Gram),
//! * [`linalg`] — the small dense solvers CP-ALS needs in place of CUBLAS:
//!   Cholesky, symmetric Jacobi eigendecomposition, Moore–Penrose
//!   pseudo-inverse,
//! * [`SparseTensorCoo`] — arbitrary-order coordinate-format sparse tensors
//!   with mode-ordered sorting, coalescing and fiber/slice statistics,
//! * [`SemiSparseTensor`] — the sCOO-style semi-sparse output of TTM (dense
//!   along one mode),
//! * [`ops`] — sequential reference implementations of TTM, MTTKRP and TTMc
//!   used as correctness oracles by every optimized kernel in the workspace,
//! * [`datasets`] — seeded synthetic generators standing in for the FROSTT
//!   datasets of the paper's Table IV, plus a FROSTT `.tns` reader/writer in
//!   [`io`].

pub mod approx;
pub mod coo;
pub mod datasets;
pub mod io;
pub mod linalg;
pub mod matricize;
pub mod matrix;
pub mod ops;
pub mod semisparse;
pub mod stats;
pub mod stream;

pub use coo::SparseTensorCoo;
pub use datasets::{DatasetInfo, DatasetKind};
pub use matricize::{matricize, MatricizeError};
pub use matrix::DenseMatrix;
pub use semisparse::SemiSparseTensor;
pub use stream::{StreamBlock, StreamSpec, TensorStream};

/// Index type for tensor coordinates.
///
/// The paper stores one 32-bit integer per product-mode coordinate; using
/// `u32` throughout keeps the storage-cost model (Table II) byte-exact.
pub type Idx = u32;

/// Value type for tensor non-zeros and factor matrices (the paper uses
/// single precision).
pub type Val = f32;
