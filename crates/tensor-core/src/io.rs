//! FROSTT `.tns` text format reader/writer.
//!
//! The format is one non-zero per line: `i₁ i₂ … iₙ value` with 1-based
//! indices; `#` starts a comment. This lets real FROSTT downloads replace the
//! synthetic datasets without touching any kernel code.

use crate::{Idx, SparseTensorCoo, Val};
use std::io::{BufRead, Write};

/// Errors from parsing a `.tns` stream.
#[derive(Debug)]
pub enum TnsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse { line: usize, message: String },
    /// The stream contained no non-zeros.
    Empty,
}

impl std::fmt::Display for TnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TnsError::Io(e) => write!(f, "i/o error: {e}"),
            TnsError::Parse { line, message } => write!(f, "line {line}: {message}"),
            TnsError::Empty => write!(f, "no non-zeros in stream"),
        }
    }
}

impl std::error::Error for TnsError {}

impl From<std::io::Error> for TnsError {
    fn from(e: std::io::Error) -> Self {
        TnsError::Io(e)
    }
}

/// Reads a `.tns` stream. The shape is the per-mode maximum index observed.
pub fn read_tns<R: BufRead>(reader: R) -> Result<SparseTensorCoo, TnsError> {
    let mut entries: Vec<(Vec<Idx>, Val)> = Vec::new();
    let mut order: Option<usize> = None;
    let mut shape: Vec<usize> = Vec::new();
    for (line_index, line) in reader.lines().enumerate() {
        let line_number = line_index + 1;
        let line = line?;
        let content = line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let fields: Vec<&str> = content.split_whitespace().collect();
        if fields.len() < 2 {
            return Err(TnsError::Parse {
                line: line_number,
                message: format!("expected at least 2 fields, got {}", fields.len()),
            });
        }
        let this_order = fields.len() - 1;
        match order {
            None => {
                order = Some(this_order);
                shape = vec![0; this_order];
            }
            Some(expected) if expected != this_order => {
                return Err(TnsError::Parse {
                    line: line_number,
                    message: format!("inconsistent arity: expected {expected}, got {this_order}"),
                });
            }
            _ => {}
        }
        let mut coord = Vec::with_capacity(this_order);
        for (mode, field) in fields[..this_order].iter().enumerate() {
            let index: u64 = field.parse().map_err(|_| TnsError::Parse {
                line: line_number,
                message: format!("bad index `{field}`"),
            })?;
            if index == 0 {
                return Err(TnsError::Parse {
                    line: line_number,
                    message: "indices are 1-based; found 0".to_string(),
                });
            }
            let zero_based = index - 1;
            if zero_based > u32::MAX as u64 {
                return Err(TnsError::Parse {
                    line: line_number,
                    message: format!("index {index} exceeds u32 range"),
                });
            }
            shape[mode] = shape[mode].max(index as usize);
            coord.push(zero_based as Idx);
        }
        let value: Val = fields[this_order].parse().map_err(|_| TnsError::Parse {
            line: line_number,
            message: format!("bad value `{}`", fields[this_order]),
        })?;
        entries.push((coord, value));
    }
    if entries.is_empty() {
        return Err(TnsError::Empty);
    }
    Ok(SparseTensorCoo::from_entries(shape, &entries))
}

/// Writes a tensor as `.tns` text (1-based indices).
pub fn write_tns<W: Write>(tensor: &SparseTensorCoo, mut writer: W) -> std::io::Result<()> {
    for (coord, value) in tensor.iter() {
        for index in &coord {
            write!(writer, "{} ", index + 1)?;
        }
        writeln!(writer, "{value}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip_preserves_entries() {
        let tensor = SparseTensorCoo::from_entries(
            vec![3, 4, 5],
            &[
                (vec![0, 0, 0], 1.5),
                (vec![2, 3, 4], -2.25),
                (vec![1, 2, 0], 0.5),
            ],
        );
        let mut buffer = Vec::new();
        write_tns(&tensor, &mut buffer).unwrap();
        let parsed = read_tns(Cursor::new(buffer)).unwrap();
        assert_eq!(parsed.nnz(), 3);
        assert_eq!(parsed.shape(), &[3, 4, 5]);
        let original: std::collections::BTreeMap<Vec<Idx>, Val> = tensor.iter().collect();
        let recovered: std::collections::BTreeMap<Vec<Idx>, Val> = parsed.iter().collect();
        assert_eq!(original, recovered);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header comment\n\n1 1 1 2.0  # trailing comment\n2 2 2 3.0\n";
        let tensor = read_tns(Cursor::new(text)).unwrap();
        assert_eq!(tensor.nnz(), 2);
        assert_eq!(tensor.shape(), &[2, 2, 2]);
    }

    #[test]
    fn rejects_zero_based_index() {
        let err = read_tns(Cursor::new("0 1 1 2.0\n")).unwrap_err();
        assert!(matches!(err, TnsError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_inconsistent_arity() {
        let err = read_tns(Cursor::new("1 1 1 2.0\n1 1 2.0\n")).unwrap_err();
        assert!(matches!(err, TnsError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_bad_value() {
        let err = read_tns(Cursor::new("1 1 1 zebra\n")).unwrap_err();
        assert!(matches!(err, TnsError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_empty_stream() {
        let err = read_tns(Cursor::new("# only a comment\n")).unwrap_err();
        assert!(matches!(err, TnsError::Empty));
    }

    #[test]
    fn matrix_arity_is_supported() {
        let tensor = read_tns(Cursor::new("1 2 5.0\n3 1 6.0\n")).unwrap();
        assert_eq!(tensor.order(), 2);
        assert_eq!(tensor.shape(), &[3, 2]);
    }
}
