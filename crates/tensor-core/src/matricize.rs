//! Tensor matricization (unfolding/flattening) — paper §II and Fig. 1.
//!
//! `X₍ₙ₎` is the matrix whose columns are the mode-`n` fibers of `X`: entry
//! `X(i₁,…,i_N)` lands at row `iₙ` and column `Σ_{m≠n} i_m · Π_{m'<m, m'≠n}
//! I_{m'}` (earlier modes vary fastest, matching Fig. 1 and Eq. 6's
//! `z % J` / `z / J` index arithmetic).
//!
//! The paper cites unfolding's fatal flaw for large tensors: "unfolding
//! tensors requires column index values up to `Π_{k≠i} I_k`, which easily
//! exceeds integer value limits" (§III-A, after Kaya & Uçar). That is
//! modeled faithfully here: [`matricize`] returns
//! [`MatricizeError::ColumnOverflow`] when the column dimension exceeds the
//! `u32` index range — which the scaled nell1/delicious datasets already do.

use crate::{Idx, SparseTensorCoo};

/// Why a matricization could not be represented.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatricizeError {
    /// The flattened column dimension `Π_{m≠n} I_m` exceeds the `u32` index
    /// range (the paper's §III-A criticism of unfolding-based methods).
    ColumnOverflow {
        /// The required column count.
        columns: u128,
    },
}

impl std::fmt::Display for MatricizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatricizeError::ColumnOverflow { columns } => write!(
                f,
                "mode-n matricization needs {columns} columns, exceeding the u32 index range"
            ),
        }
    }
}

impl std::error::Error for MatricizeError {}

/// Mode-`n` matricization of a sparse tensor into a 2-order sparse tensor
/// (`Iₙ × Π_{m≠n} I_m`).
///
/// ```
/// use tensor_core::{matricize, SparseTensorCoo};
///
/// let x = SparseTensorCoo::from_entries(vec![2, 3, 4], &[(vec![1, 2, 3], 5.0)]);
/// let x1 = matricize(&x, 0).unwrap();
/// assert_eq!(x1.shape(), &[2, 12]);
/// // column = j + k·J = 2 + 3·3 = 11
/// assert_eq!(x1.coord(0), vec![1, 11]);
/// ```
///
/// # Panics
/// If `mode` is out of range.
pub fn matricize(tensor: &SparseTensorCoo, mode: usize) -> Result<SparseTensorCoo, MatricizeError> {
    assert!(mode < tensor.order(), "mode out of range");
    let columns: u128 = tensor
        .shape()
        .iter()
        .enumerate()
        .filter(|(m, _)| *m != mode)
        .map(|(_, &s)| s as u128)
        .product();
    if columns > u32::MAX as u128 {
        return Err(MatricizeError::ColumnOverflow { columns });
    }
    let mut result = SparseTensorCoo::new(vec![tensor.shape()[mode], columns as usize]);
    // Strides: earlier non-`mode` modes vary fastest.
    let mut strides = vec![0u64; tensor.order()];
    let mut stride = 1u64;
    for (m, slot) in strides.iter_mut().enumerate() {
        if m == mode {
            continue;
        }
        *slot = stride;
        stride *= tensor.shape()[m] as u64;
    }
    for nz in 0..tensor.nnz() {
        let row = tensor.mode_indices(mode)[nz];
        let mut column = 0u64;
        for (m, &stride) in strides.iter().enumerate() {
            if m != mode {
                column += tensor.mode_indices(m)[nz] as u64 * stride;
            }
        }
        result.push(&[row, column as Idx], tensor.values()[nz]);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Val;

    /// The 2×2×2 tensor of the paper's Fig. 1: X(i,j,k) = 1 + i + 2j + 4k.
    fn figure1_tensor() -> SparseTensorCoo {
        let mut tensor = SparseTensorCoo::new(vec![2, 2, 2]);
        for k in 0..2u32 {
            for j in 0..2u32 {
                for i in 0..2u32 {
                    tensor.push(&[i, j, k], (1 + i + 2 * j + 4 * k) as Val);
                }
            }
        }
        tensor
    }

    fn dense_of(matrix: &SparseTensorCoo) -> Vec<Vec<Val>> {
        let mut dense = vec![vec![0.0; matrix.shape()[1]]; matrix.shape()[0]];
        for (coord, value) in matrix.iter() {
            dense[coord[0] as usize][coord[1] as usize] = value;
        }
        dense
    }

    #[test]
    fn figure1_mode1_unfolding() {
        let x1 = matricize(&figure1_tensor(), 0).unwrap();
        assert_eq!(x1.shape(), &[2, 4]);
        // Fig. 1: X(1) = [1 3 5 7; 2 4 6 8].
        assert_eq!(
            dense_of(&x1),
            vec![vec![1.0, 3.0, 5.0, 7.0], vec![2.0, 4.0, 6.0, 8.0]]
        );
    }

    #[test]
    fn figure1_mode2_unfolding() {
        let x2 = matricize(&figure1_tensor(), 1).unwrap();
        // Fig. 1: X(2) = [1 2 5 6; 3 4 7 8].
        assert_eq!(
            dense_of(&x2),
            vec![vec![1.0, 2.0, 5.0, 6.0], vec![3.0, 4.0, 7.0, 8.0]]
        );
    }

    #[test]
    fn figure1_mode3_unfolding() {
        let x3 = matricize(&figure1_tensor(), 2).unwrap();
        // Fig. 1: X(3) = [1 2 3 4; 5 6 7 8].
        assert_eq!(
            dense_of(&x3),
            vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]]
        );
    }

    #[test]
    fn matricization_preserves_nnz_and_values() {
        let (tensor, _) = crate::datasets::generate(crate::DatasetKind::Nell2, 2_000, 30);
        let x2 = matricize(&tensor, 1).unwrap();
        assert_eq!(x2.nnz(), tensor.nnz());
        let total: f64 = tensor.values().iter().map(|&v| v as f64).sum();
        let total_m: f64 = x2.values().iter().map(|&v| v as f64).sum();
        assert!((total - total_m).abs() < 1e-3);
    }

    #[test]
    fn column_index_matches_eq6_arithmetic() {
        // Eq. 6 for mode 1: z = k·J + j, recovered by z % J and z / J.
        let (tensor, _) = crate::datasets::generate(crate::DatasetKind::Nell2, 1_000, 31);
        let j_size = tensor.shape()[1] as u32;
        let x1 = matricize(&tensor, 0).unwrap();
        for nz in 0..tensor.nnz() {
            let z = x1.mode_indices(1)[nz];
            assert_eq!(z % j_size, tensor.mode_indices(1)[nz]);
            assert_eq!(z / j_size, tensor.mode_indices(2)[nz]);
        }
    }

    #[test]
    fn large_tensors_overflow_exactly_as_the_paper_warns() {
        // §III-A: the scaled nell1's non-mode dimensions already exceed u32
        // when multiplied — unfolding-based methods (DFacTo, CTF) cannot
        // even index it, while F-COO never forms the product.
        let (tensor, _) = crate::datasets::generate(crate::DatasetKind::Nell1, 1_000, 32);
        let columns: u128 = tensor.shape()[1] as u128 * tensor.shape()[2] as u128;
        assert!(
            columns > u32::MAX as u128,
            "scaled nell1 should still overflow"
        );
        match matricize(&tensor, 0) {
            Err(MatricizeError::ColumnOverflow { columns: reported }) => {
                assert_eq!(reported, columns);
            }
            Ok(_) => panic!("expected column overflow"),
        }
    }
}
