//! Small dense solvers standing in for CUBLAS in the CP-ALS update.
//!
//! CP-ALS needs `(BᵀB ∗ CᵀC)†` — the Moore–Penrose pseudo-inverse of an
//! `R × R` symmetric positive semi-definite matrix with `R ≤ 64`. We compute
//! it from a symmetric Jacobi eigendecomposition, which is simple, robust and
//! plenty fast at these sizes. A Cholesky path is also provided for the
//! well-conditioned case. All internals run in `f64`; inputs/outputs are the
//! workspace's `f32` matrices.

use crate::matrix::DenseMatrix;
use crate::Val;

/// A symmetric eigendecomposition `A = V · diag(λ) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, unordered.
    pub values: Vec<f64>,
    /// Column-eigenvector matrix (row-major, `n × n`), `f64`.
    pub vectors: Vec<f64>,
    /// Dimension.
    pub n: usize,
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// # Panics
/// If `a` is not square.
pub fn sym_eigen(a: &DenseMatrix) -> SymEigen {
    assert_eq!(a.rows(), a.cols(), "sym_eigen requires a square matrix");
    let n = a.rows();
    let mut m: Vec<f64> = a.data().iter().map(|&v| v as f64).collect();
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    // Cyclic sweeps until off-diagonal mass is negligible.
    let mut sweep = 0;
    loop {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[p * n + q] * m[p * n + q];
            }
        }
        let scale = (0..n).map(|i| m[i * n + i].abs()).fold(1e-300, f64::max);
        if off.sqrt() <= 1e-13 * scale * n as f64 || sweep > 64 {
            break;
        }
        sweep += 1;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q of m.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let values = (0..n).map(|i| m[i * n + i]).collect();
    SymEigen {
        values,
        vectors: v,
        n,
    }
}

/// Moore–Penrose pseudo-inverse of a symmetric positive semi-definite matrix.
///
/// Eigenvalues below `rcond * λ_max` are treated as zero, mirroring what the
/// paper's CP-ALS needs when a rank larger than a mode size produces a
/// deficient Gram matrix (§V-E discusses exactly this for brainq).
pub fn pinv_sym(a: &DenseMatrix, rcond: f64) -> DenseMatrix {
    let eig = sym_eigen(a);
    let n = eig.n;
    let max_abs = eig.values.iter().map(|v| v.abs()).fold(0.0, f64::max);
    let cutoff = rcond * max_abs;
    let mut out = vec![0.0f64; n * n];
    for (k, &lambda) in eig.values.iter().enumerate() {
        if lambda.abs() <= cutoff || lambda == 0.0 {
            continue;
        }
        let inv = 1.0 / lambda;
        for i in 0..n {
            let vik = eig.vectors[i * n + k];
            if vik == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i * n + j] += inv * vik * eig.vectors[j * n + k];
            }
        }
    }
    DenseMatrix::from_vec(n, n, out.into_iter().map(|v| v as Val).collect())
}

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive definite matrix.
///
/// Returns `None` if a non-positive pivot is met (matrix not SPD).
pub fn cholesky(a: &DenseMatrix) -> Option<Vec<f64>> {
    assert_eq!(a.rows(), a.cols(), "cholesky requires a square matrix");
    let n = a.rows();
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j) as f64;
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Solves `A · X = B` for SPD `A` using a Cholesky factor from [`cholesky`].
///
/// `B` is `n × m`; returns `X` of the same shape.
pub fn cholesky_solve(l: &[f64], n: usize, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(b.rows(), n, "rhs row count must match factor dimension");
    let m = b.cols();
    let mut x = vec![0.0f64; n * m];
    for col in 0..m {
        // Forward substitution L·y = b.
        for i in 0..n {
            let mut sum = b.get(i, col) as f64;
            for k in 0..i {
                sum -= l[i * n + k] * x[k * m + col];
            }
            x[i * m + col] = sum / l[i * n + i];
        }
        // Back substitution Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut sum = x[i * m + col];
            for k in (i + 1)..n {
                sum -= l[k * n + i] * x[k * m + col];
            }
            x[i * m + col] = sum / l[i * n + i];
        }
    }
    DenseMatrix::from_vec(n, m, x.into_iter().map(|v| v as Val).collect())
}

/// Solves the CP-ALS normal equation `M_new = M · G†` where `G` is the
/// Hadamard product of Gram matrices (symmetric PSD, `R × R`).
///
/// Tries Cholesky first (`G` SPD) and falls back to the pseudo-inverse for
/// deficient `G` — e.g. when the decomposition rank exceeds a mode size.
pub fn solve_normal_equations(m: &DenseMatrix, gram: &DenseMatrix) -> DenseMatrix {
    let r = gram.rows();
    assert_eq!(m.cols(), r, "factor width must match Gram dimension");
    if let Some(l) = cholesky(gram) {
        // X = M · G⁻¹ ⇔ G · Xᵀ = Mᵀ (G symmetric).
        let xt = cholesky_solve(&l, r, &m.transpose());
        xt.transpose()
    } else {
        m.matmul(&pinv_sym(gram, 1e-10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::assert_close;

    fn spd(n: usize, seed: u64) -> DenseMatrix {
        // AᵀA + n·I is comfortably SPD.
        let a = DenseMatrix::random(n + 3, n, seed);
        let mut g = a.gram();
        for i in 0..n {
            g.set(i, i, g.get(i, i) + n as Val);
        }
        g
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let a = spd(6, 42);
        let eig = sym_eigen(&a);
        let n = eig.n;
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0;
                for k in 0..n {
                    sum += eig.vectors[i * n + k] * eig.values[k] * eig.vectors[j * n + k];
                }
                assert_close(sum, a.get(i, j) as f64, 1e-4);
            }
        }
    }

    #[test]
    fn eigen_vectors_are_orthonormal() {
        let a = spd(8, 1);
        let eig = sym_eigen(&a);
        let n = eig.n;
        for p in 0..n {
            for q in 0..n {
                let dot: f64 = (0..n)
                    .map(|k| eig.vectors[k * n + p] * eig.vectors[k * n + q])
                    .sum();
                assert_close(dot, if p == q { 1.0 } else { 0.0 }, 1e-8);
            }
        }
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = DenseMatrix::from_vec(3, 3, vec![2.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 7.0]);
        let mut values = sym_eigen(&a).values;
        values.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_close(values[0], 2.0, 1e-10);
        assert_close(values[1], 5.0, 1e-10);
        assert_close(values[2], 7.0, 1e-10);
    }

    #[test]
    fn pinv_of_spd_is_inverse() {
        let a = spd(5, 7);
        let pinv = pinv_sym(&a, 1e-12);
        let product = a.matmul(&pinv);
        assert!(product.max_abs_diff(&DenseMatrix::identity(5)) < 1e-3);
    }

    #[test]
    fn pinv_of_singular_matrix_satisfies_penrose() {
        // Rank-1 matrix: outer product of [1, 2] with itself.
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        let p = pinv_sym(&a, 1e-10);
        // A·A†·A = A.
        let reconstructed = a.matmul(&p).matmul(&a);
        assert!(reconstructed.max_abs_diff(&a) < 1e-4);
        // A†·A·A† = A†.
        let p2 = p.matmul(&a).matmul(&p);
        assert!(p2.max_abs_diff(&p) < 1e-4);
    }

    #[test]
    fn pinv_of_zero_matrix_is_zero() {
        let z = DenseMatrix::zeros(4, 4);
        let p = pinv_sym(&z, 1e-10);
        assert_eq!(p.data(), DenseMatrix::zeros(4, 4).data());
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd(6, 3);
        let l = cholesky(&a).expect("SPD matrix must factor");
        let n = 6;
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0;
                for k in 0..n {
                    sum += l[i * n + k] * l[j * n + k];
                }
                assert_close(sum, a.get(i, j) as f64, 1e-4);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn cholesky_solve_matches_direct() {
        let a = spd(5, 9);
        let b = DenseMatrix::random(5, 3, 10);
        let l = cholesky(&a).unwrap();
        let x = cholesky_solve(&l, 5, &b);
        let reconstructed = a.matmul(&x);
        assert!(reconstructed.max_abs_diff(&b) < 1e-3);
    }

    #[test]
    fn solve_normal_equations_spd_path() {
        let g = spd(4, 21);
        let m = DenseMatrix::random(10, 4, 22);
        let x = solve_normal_equations(&m, &g);
        // X·G should reproduce M.
        assert!(x.matmul(&g).max_abs_diff(&m) < 1e-3);
    }

    #[test]
    fn solve_normal_equations_deficient_path() {
        // Singular Gram: rank 1.
        let g = DenseMatrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let m = DenseMatrix::random(6, 2, 23);
        let x = solve_normal_equations(&m, &g);
        // Minimum-norm least-squares solution satisfies X·G·G† = M·G†.
        let pinv = pinv_sym(&g, 1e-10);
        let lhs = x.matmul(&g).matmul(&pinv);
        let rhs = m.matmul(&pinv);
        assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }
}
