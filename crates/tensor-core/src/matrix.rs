//! Row-major dense matrices and the matrix products used by sparse tensor
//! operations (Kronecker, Khatri-Rao, Hadamard, Gram).

use crate::Val;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A row-major dense matrix of [`Val`] entries.
///
/// This is the representation of the dense factor matrices `U`, `A`, `B`, `C`
/// in the paper: tall-skinny `I × R` matrices whose rows are consumed by the
/// sparse kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Val>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Val) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Val>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        DenseMatrix { rows, cols, data }
    }

    /// Creates a matrix with entries drawn uniformly from `[0, 1)`, seeded
    /// deterministically.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        DenseMatrix::from_fn(rows, cols, |_, _| rng.gen::<Val>())
    }

    /// The `rows × rows` identity matrix.
    pub fn identity(rows: usize) -> Self {
        DenseMatrix::from_fn(rows, rows, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[Val] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [Val] {
        &mut self.data
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Val {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Entry setter.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: Val) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Borrow of row `row`.
    #[inline]
    pub fn row(&self, row: usize) -> &[Val] {
        let start = row * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutable borrow of row `row`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [Val] {
        let start = row * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Fills every entry with `value`.
    pub fn fill(&mut self, value: Val) {
        self.data.fill(value);
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Plain matrix product `self * other`.
    ///
    /// # Panics
    /// If the inner dimensions disagree.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        // i-k-j loop order: streams over `other` rows, friendly to row-major.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let other_row = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// The Gram matrix `selfᵀ · self` (`R × R` for a tall-skinny factor),
    /// accumulated in `f64` for accuracy.
    pub fn gram(&self) -> DenseMatrix {
        let r = self.cols;
        let mut acc = vec![0.0f64; r * r];
        for row in 0..self.rows {
            let values = self.row(row);
            for a in 0..r {
                let va = values[a] as f64;
                if va == 0.0 {
                    continue;
                }
                for b in a..r {
                    acc[a * r + b] += va * values[b] as f64;
                }
            }
        }
        let mut out = DenseMatrix::zeros(r, r);
        for a in 0..r {
            for b in a..r {
                let value = acc[a * r + b] as Val;
                out.set(a, b, value);
                out.set(b, a, value);
            }
        }
        out
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    /// If the shapes disagree.
    pub fn hadamard(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Kronecker product `self ⊗ other` (paper Eq. 1).
    pub fn kronecker(&self, other: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows * other.rows, self.cols * other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self.get(i, j);
                for k in 0..other.rows {
                    for l in 0..other.cols {
                        out.set(i * other.rows + k, j * other.cols + l, a * other.get(k, l));
                    }
                }
            }
        }
        out
    }

    /// Khatri-Rao (column-wise Kronecker) product `self ⊙ other` (paper Eq. 2).
    ///
    /// ```
    /// use tensor_core::DenseMatrix;
    ///
    /// let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
    /// let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
    /// let kr = a.khatri_rao(&b);
    /// assert_eq!((kr.rows(), kr.cols()), (4, 2));
    /// assert_eq!(kr.get(0, 0), 5.0);  // a(0,0)·b(0,0)
    /// assert_eq!(kr.get(3, 1), 32.0); // a(1,1)·b(1,1)
    /// ```
    ///
    /// # Panics
    /// If the column counts disagree.
    pub fn khatri_rao(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols, other.cols,
            "khatri-rao requires equal column counts"
        );
        let mut out = DenseMatrix::zeros(self.rows * other.rows, self.cols);
        for i in 0..self.rows {
            for k in 0..other.rows {
                let out_row = i * other.rows + k;
                for c in 0..self.cols {
                    out.set(out_row, c, self.get(i, c) * other.get(k, c));
                }
            }
        }
        out
    }

    /// Euclidean norm of each column.
    pub fn column_norms(&self) -> Vec<Val> {
        let mut norms = vec![0.0f64; self.cols];
        for row in 0..self.rows {
            for (norm, &value) in norms.iter_mut().zip(self.row(row)) {
                *norm += (value as f64) * (value as f64);
            }
        }
        norms.into_iter().map(|n| n.sqrt() as Val).collect()
    }

    /// Normalizes each column to unit norm and returns the norms (the `λ`
    /// weights of CP-ALS). Zero columns are left untouched and report norm 0.
    pub fn normalize_columns(&mut self) -> Vec<Val> {
        let norms = self.column_norms();
        for row in 0..self.rows {
            let start = row * self.cols;
            for (c, &norm) in norms.iter().enumerate() {
                if norm > 0.0 {
                    self.data[start + c] /= norm;
                }
            }
        }
        norms
    }

    /// Scales column `col` by `factor`.
    pub fn scale_column(&mut self, col: usize, factor: Val) {
        for row in 0..self.rows {
            self.data[row * self.cols + col] *= factor;
        }
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Largest absolute entry-wise difference to `other`.
    ///
    /// # Panics
    /// If the shapes disagree.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| ((a - b) as f64).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::assert_close;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = DenseMatrix::random(5, 5, 1);
        let id = DenseMatrix::identity(5);
        assert!(a.matmul(&id).max_abs_diff(&a) < 1e-6);
        assert!(id.matmul(&a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn gram_matches_transpose_matmul() {
        let a = DenseMatrix::random(40, 7, 3);
        let gram = a.gram();
        let reference = a.transpose().matmul(&a);
        assert!(gram.max_abs_diff(&reference) < 1e-3);
    }

    #[test]
    fn gram_is_symmetric() {
        let a = DenseMatrix::random(31, 9, 9);
        let g = a.gram();
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(g.get(i, j), g.get(j, i));
            }
        }
    }

    #[test]
    fn kronecker_dimensions_and_values() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_vec(1, 2, vec![5.0, 6.0]);
        let k = a.kronecker(&b);
        assert_eq!((k.rows(), k.cols()), (2, 4));
        assert_eq!(k.data(), &[5.0, 6.0, 10.0, 12.0, 15.0, 18.0, 20.0, 24.0]);
    }

    #[test]
    fn khatri_rao_is_columnwise_kronecker() {
        let a = DenseMatrix::random(3, 4, 11);
        let b = DenseMatrix::random(5, 4, 12);
        let kr = a.khatri_rao(&b);
        assert_eq!((kr.rows(), kr.cols()), (15, 4));
        for c in 0..4 {
            for i in 0..3 {
                for k in 0..5 {
                    assert_close(
                        kr.get(i * 5 + k, c) as f64,
                        (a.get(i, c) * b.get(k, c)) as f64,
                        1e-6,
                    );
                }
            }
        }
    }

    #[test]
    fn hadamard_elementwise() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.hadamard(&b).data(), &[5.0, 12.0, 21.0, 32.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = DenseMatrix::random(6, 3, 20);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn normalize_columns_returns_norms_and_unit_columns() {
        let mut a = DenseMatrix::from_vec(2, 2, vec![3.0, 0.0, 4.0, 0.0]);
        let norms = a.normalize_columns();
        assert_close(norms[0] as f64, 5.0, 1e-6);
        assert_eq!(norms[1], 0.0);
        assert_close(a.get(0, 0) as f64, 0.6, 1e-6);
        assert_close(a.get(1, 0) as f64, 0.8, 1e-6);
        // Zero column untouched.
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn column_norms_of_identity() {
        let id = DenseMatrix::identity(4);
        assert_eq!(id.column_norms(), vec![1.0; 4]);
    }

    #[test]
    fn frobenius_norm() {
        let a = DenseMatrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_close(a.frobenius(), 5.0, 1e-9);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "khatri-rao requires equal column counts")]
    fn khatri_rao_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 4);
        let _ = a.khatri_rao(&b);
    }

    #[test]
    fn fill_and_scale_column() {
        let mut a = DenseMatrix::zeros(3, 2);
        a.fill(2.0);
        assert!(a.data().iter().all(|&v| v == 2.0));
        a.scale_column(1, 0.5);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(2, 1), 1.0);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut a = DenseMatrix::zeros(2, 3);
        a.row_mut(1).copy_from_slice(&[7.0, 8.0, 9.0]);
        assert_eq!(a.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(a.row(1), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(DenseMatrix::random(4, 4, 7), DenseMatrix::random(4, 4, 7));
        assert_ne!(DenseMatrix::random(4, 4, 7), DenseMatrix::random(4, 4, 8));
    }
}
