//! Coordinate-format (COO) sparse tensors of arbitrary order.
//!
//! Storage is struct-of-arrays: one index vector per mode plus one value
//! vector, which is both cache-friendly and exactly the layout whose byte
//! cost the paper's Table II charges (one `u32` per mode per non-zero, one
//! `f32` value per non-zero).

use crate::{Idx, Val};

/// An arbitrary-order sparse tensor in coordinate format.
///
/// ```
/// use tensor_core::SparseTensorCoo;
///
/// let mut x = SparseTensorCoo::new(vec![4, 5, 6]);
/// x.push(&[0, 1, 2], 1.5);
/// x.push(&[3, 4, 5], -2.0);
/// assert_eq!(x.nnz(), 2);
/// assert_eq!(x.order(), 3);
/// assert!(x.density() < 0.02);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseTensorCoo {
    shape: Vec<usize>,
    /// `indices[mode][nz]` — coordinate of non-zero `nz` along `mode`.
    indices: Vec<Vec<Idx>>,
    values: Vec<Val>,
}

impl SparseTensorCoo {
    /// Creates an empty tensor with the given mode sizes.
    ///
    /// # Panics
    /// If `shape` is empty or any mode size is zero or exceeds `u32::MAX`.
    pub fn new(shape: Vec<usize>) -> Self {
        assert!(!shape.is_empty(), "tensor must have at least one mode");
        for (mode, &size) in shape.iter().enumerate() {
            assert!(size > 0, "mode {mode} has zero size");
            assert!(
                size <= u32::MAX as usize,
                "mode {mode} exceeds u32 index range"
            );
        }
        let order = shape.len();
        SparseTensorCoo {
            shape,
            indices: vec![Vec::new(); order],
            values: Vec::new(),
        }
    }

    /// Builds a tensor from `(coordinate, value)` entries.
    ///
    /// # Panics
    /// If any coordinate has the wrong arity or is out of bounds.
    pub fn from_entries(shape: Vec<usize>, entries: &[(Vec<Idx>, Val)]) -> Self {
        let mut tensor = SparseTensorCoo::new(shape);
        for (coord, value) in entries {
            tensor.push(coord, *value);
        }
        tensor
    }

    /// Appends one non-zero.
    ///
    /// # Panics
    /// If the coordinate arity or any index is out of bounds.
    pub fn push(&mut self, coord: &[Idx], value: Val) {
        assert_eq!(coord.len(), self.order(), "coordinate arity mismatch");
        for (mode, (&index, &size)) in coord.iter().zip(&self.shape).enumerate() {
            assert!(
                (index as usize) < size,
                "index {index} out of bounds for mode {mode} (size {size})"
            );
            self.indices[mode].push(index);
        }
        self.values.push(value);
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.len()
    }

    /// Mode sizes.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of cells that are non-zero.
    pub fn density(&self) -> f64 {
        let cells: f64 = self.shape.iter().map(|&s| s as f64).product();
        self.nnz() as f64 / cells
    }

    /// Coordinates along one mode, parallel to [`values`](Self::values).
    #[inline]
    pub fn mode_indices(&self, mode: usize) -> &[Idx] {
        &self.indices[mode]
    }

    /// Non-zero values.
    #[inline]
    pub fn values(&self) -> &[Val] {
        &self.values
    }

    /// Mutable non-zero values (coordinates are fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [Val] {
        &mut self.values
    }

    /// The full coordinate of non-zero `nz`.
    pub fn coord(&self, nz: usize) -> Vec<Idx> {
        self.indices.iter().map(|column| column[nz]).collect()
    }

    /// Iterates over `(coordinate, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Vec<Idx>, Val)> + '_ {
        (0..self.nnz()).map(move |nz| (self.coord(nz), self.values[nz]))
    }

    /// Sorts non-zeros lexicographically by the given mode order (e.g.
    /// `[2, 0, 1]` sorts primarily by mode-2 coordinates).
    ///
    /// Every kernel crate relies on this: F-COO preprocessing for mode `n`
    /// sorts with the index modes leading, CSF construction sorts with the
    /// root mode leading.
    ///
    /// # Panics
    /// If `mode_order` is not a permutation of `0..order`.
    pub fn sort_by_mode_order(&mut self, mode_order: &[usize]) {
        self.check_mode_order(mode_order);
        let mut perm: Vec<usize> = (0..self.nnz()).collect();
        let indices = &self.indices;
        perm.sort_unstable_by(|&a, &b| {
            for &mode in mode_order {
                match indices[mode][a].cmp(&indices[mode][b]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });
        self.apply_permutation(&perm);
    }

    /// True if the non-zeros are lexicographically sorted by `mode_order`.
    pub fn is_sorted_by(&self, mode_order: &[usize]) -> bool {
        self.check_mode_order(mode_order);
        (1..self.nnz()).all(|nz| {
            for &mode in mode_order {
                match self.indices[mode][nz - 1].cmp(&self.indices[mode][nz]) {
                    std::cmp::Ordering::Less => return true,
                    std::cmp::Ordering::Greater => return false,
                    std::cmp::Ordering::Equal => continue,
                }
            }
            true
        })
    }

    /// Sorts by the canonical mode order `0, 1, …` and sums duplicates.
    pub fn coalesce(&mut self) {
        let canonical: Vec<usize> = (0..self.order()).collect();
        self.sort_by_mode_order(&canonical);
        if self.nnz() < 2 {
            return;
        }
        let mut write = 0usize;
        for read in 1..self.nnz() {
            let same = (0..self.order()).all(|m| self.indices[m][read] == self.indices[m][write]);
            if same {
                self.values[write] += self.values[read];
            } else {
                write += 1;
                for m in 0..self.order() {
                    self.indices[m][write] = self.indices[m][read];
                }
                self.values[write] = self.values[read];
            }
        }
        let new_len = write + 1;
        for column in &mut self.indices {
            column.truncate(new_len);
        }
        self.values.truncate(new_len);
    }

    /// Counts distinct coordinate combinations over the given modes — i.e.
    /// the number of non-empty fibers (one mode omitted) or slices (two modes
    /// omitted) the computation will touch.
    pub fn count_distinct(&self, modes: &[usize]) -> usize {
        if self.nnz() == 0 {
            return 0;
        }
        let mut keys: Vec<Vec<Idx>> = (0..self.nnz())
            .map(|nz| modes.iter().map(|&m| self.indices[m][nz]).collect())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Histogram of non-zero counts per distinct coordinate combination over
    /// `modes` (e.g. fiber lengths). Used to quantify the load imbalance the
    /// paper attributes to fiber-centric parallelization.
    pub fn group_sizes(&self, modes: &[usize]) -> Vec<usize> {
        if self.nnz() == 0 {
            return Vec::new();
        }
        let mut keys: Vec<Vec<Idx>> = (0..self.nnz())
            .map(|nz| modes.iter().map(|&m| self.indices[m][nz]).collect())
            .collect();
        keys.sort_unstable();
        let mut sizes = Vec::new();
        let mut run = 1usize;
        for i in 1..keys.len() {
            if keys[i] == keys[i - 1] {
                run += 1;
            } else {
                sizes.push(run);
                run = 1;
            }
        }
        sizes.push(run);
        sizes
    }

    /// Bytes this COO representation occupies (Table II's `16 × nnz` for a
    /// 3-order tensor: one `u32` per mode plus one `f32` value per non-zero).
    pub fn storage_bytes(&self) -> usize {
        self.nnz() * (self.order() * std::mem::size_of::<Idx>() + std::mem::size_of::<Val>())
    }

    fn check_mode_order(&self, mode_order: &[usize]) {
        assert_eq!(mode_order.len(), self.order(), "mode order arity mismatch");
        let mut seen = vec![false; self.order()];
        for &mode in mode_order {
            assert!(mode < self.order(), "mode {mode} out of range");
            assert!(!seen[mode], "duplicate mode {mode} in order");
            seen[mode] = true;
        }
    }

    fn apply_permutation(&mut self, perm: &[usize]) {
        for column in &mut self.indices {
            let gathered: Vec<Idx> = perm.iter().map(|&p| column[p]).collect();
            *column = gathered;
        }
        self.values = perm.iter().map(|&p| self.values[p]).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseTensorCoo {
        // The 2×2×3 example spirit of the paper's Figure 2.
        SparseTensorCoo::from_entries(
            vec![2, 2, 3],
            &[
                (vec![1, 1, 2], 12.0),
                (vec![0, 0, 0], 1.0),
                (vec![1, 0, 1], 7.0),
                (vec![0, 0, 2], 3.0),
                (vec![1, 1, 0], 10.0),
                (vec![0, 0, 1], 2.0),
            ],
        )
    }

    #[test]
    fn push_and_read_back() {
        let t = sample();
        assert_eq!(t.nnz(), 6);
        assert_eq!(t.order(), 3);
        assert_eq!(t.coord(0), vec![1, 1, 2]);
        assert_eq!(t.values()[0], 12.0);
    }

    #[test]
    fn sort_canonical_orders_lexicographically() {
        let mut t = sample();
        t.sort_by_mode_order(&[0, 1, 2]);
        assert!(t.is_sorted_by(&[0, 1, 2]));
        assert_eq!(t.coord(0), vec![0, 0, 0]);
        assert_eq!(t.values()[0], 1.0);
        assert_eq!(t.coord(5), vec![1, 1, 2]);
    }

    #[test]
    fn sort_by_alternate_mode_order() {
        let mut t = sample();
        t.sort_by_mode_order(&[2, 0, 1]);
        assert!(t.is_sorted_by(&[2, 0, 1]));
        // First entries have k = 0.
        assert_eq!(t.mode_indices(2)[0], 0);
        assert_eq!(t.mode_indices(2)[5], 2);
    }

    #[test]
    fn sort_preserves_coordinate_value_pairing() {
        let mut t = sample();
        let before: std::collections::BTreeMap<Vec<Idx>, Val> = t.iter().collect();
        t.sort_by_mode_order(&[1, 2, 0]);
        let after: std::collections::BTreeMap<Vec<Idx>, Val> = t.iter().collect();
        assert_eq!(before, after);
    }

    #[test]
    fn coalesce_sums_duplicates() {
        let mut t = SparseTensorCoo::from_entries(
            vec![4, 4],
            &[
                (vec![1, 2], 1.0),
                (vec![0, 0], 5.0),
                (vec![1, 2], 2.5),
                (vec![1, 2], 0.5),
                (vec![3, 3], 1.0),
            ],
        );
        t.coalesce();
        assert_eq!(t.nnz(), 3);
        let entries: Vec<(Vec<Idx>, Val)> = t.iter().collect();
        assert_eq!(entries[1], (vec![1, 2], 4.0));
    }

    #[test]
    fn coalesce_on_empty_and_singleton() {
        let mut empty = SparseTensorCoo::new(vec![3, 3]);
        empty.coalesce();
        assert_eq!(empty.nnz(), 0);
        let mut one = SparseTensorCoo::from_entries(vec![3, 3], &[(vec![2, 2], 1.0)]);
        one.coalesce();
        assert_eq!(one.nnz(), 1);
    }

    #[test]
    fn count_distinct_fibers_and_slices() {
        let t = sample();
        // Mode-3 fibers are identified by (i, j): (0,0), (1,0), (1,1) → 3.
        assert_eq!(t.count_distinct(&[0, 1]), 3);
        // Mode-1 slices identified by i: {0, 1} → 2.
        assert_eq!(t.count_distinct(&[0]), 2);
    }

    #[test]
    fn group_sizes_sum_to_nnz() {
        let t = sample();
        let sizes = t.group_sizes(&[0, 1]);
        assert_eq!(sizes.iter().sum::<usize>(), t.nnz());
        assert_eq!(sizes, vec![3, 1, 2]);
    }

    #[test]
    fn density_of_sample() {
        let t = sample();
        let expected = 6.0 / (2.0 * 2.0 * 3.0);
        assert!((t.density() - expected).abs() < 1e-12);
    }

    #[test]
    fn storage_bytes_matches_coo_formula() {
        let t = sample();
        // 3-order: 16 bytes per nnz (Table II).
        assert_eq!(t.storage_bytes(), 16 * t.nnz());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_rejects_out_of_range_index() {
        let mut t = SparseTensorCoo::new(vec![2, 2]);
        t.push(&[2, 0], 1.0);
    }

    #[test]
    #[should_panic(expected = "coordinate arity mismatch")]
    fn push_rejects_wrong_arity() {
        let mut t = SparseTensorCoo::new(vec![2, 2]);
        t.push(&[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "duplicate mode")]
    fn sort_rejects_non_permutation() {
        let mut t = sample();
        t.sort_by_mode_order(&[0, 0, 1]);
    }

    #[test]
    fn empty_tensor_queries() {
        let t = SparseTensorCoo::new(vec![5, 5, 5]);
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.count_distinct(&[0]), 0);
        assert!(t.group_sizes(&[0]).is_empty());
        assert!(t.is_sorted_by(&[0, 1, 2]));
    }
}
