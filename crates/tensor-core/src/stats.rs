//! Structural statistics of sparse tensors — the quantities the paper's
//! load-balance arguments are about (fiber-length skew → warp divergence in
//! fiber-centric kernels, §III-B/§V-A).

use crate::SparseTensorCoo;

/// Summary of a size distribution (fiber or slice populations).
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionSummary {
    /// Number of groups.
    pub count: usize,
    /// Mean group size.
    pub mean: f64,
    /// Median group size.
    pub p50: usize,
    /// 90th percentile.
    pub p90: usize,
    /// 99th percentile.
    pub p99: usize,
    /// Largest group.
    pub max: usize,
    /// Gini coefficient in `[0, 1)`: 0 = perfectly balanced, →1 = all work
    /// in one group. This is the single number behind "load imbalance".
    pub gini: f64,
}

impl DistributionSummary {
    /// One-line rendering for reports.
    pub fn render(&self) -> String {
        format!(
            "{} groups, mean {:.1}, p50 {}, p90 {}, p99 {}, max {}, gini {:.3}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.max, self.gini
        )
    }
}

/// Summarizes a set of group sizes.
///
/// ```
/// let balanced = tensor_core::stats::summarize(&[5; 50]);
/// assert!(balanced.gini < 1e-9);
/// let skewed = tensor_core::stats::summarize(&[1, 1, 1, 1, 96]);
/// assert!(skewed.gini > 0.7);
/// ```
///
/// # Panics
/// If `sizes` is empty.
pub fn summarize(sizes: &[usize]) -> DistributionSummary {
    assert!(!sizes.is_empty(), "cannot summarize an empty distribution");
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable();
    let count = sorted.len();
    let total: u64 = sorted.iter().map(|&s| s as u64).sum();
    let mean = total as f64 / count as f64;
    let pct = |p: f64| sorted[(((count - 1) as f64) * p).floor() as usize];
    // Gini from the sorted sizes: G = (2·Σ i·x_i)/(n·Σ x) − (n+1)/n.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    let gini = if total == 0 {
        0.0
    } else {
        (2.0 * weighted / (count as f64 * total as f64) - (count as f64 + 1.0) / count as f64)
            .max(0.0)
    };
    DistributionSummary {
        count,
        mean,
        p50: pct(0.5),
        p90: pct(0.9),
        p99: pct(0.99),
        max: *sorted.last().expect("summary requires at least one sample"),
        gini,
    }
}

/// Fiber-length distribution for the fibers identified by fixing `modes`
/// (e.g. `&[0, 1]` gives mode-3 fibers of a 3-way tensor).
///
/// Returns `None` for an empty tensor.
pub fn group_summary(tensor: &SparseTensorCoo, modes: &[usize]) -> Option<DistributionSummary> {
    let sizes = tensor.group_sizes(modes);
    if sizes.is_empty() {
        None
    } else {
        Some(summarize(&sizes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{self, DatasetKind};

    #[test]
    fn uniform_distribution_has_low_gini() {
        let summary = summarize(&[10; 100]);
        assert_eq!(summary.mean, 10.0);
        assert_eq!(summary.p50, 10);
        assert_eq!(summary.max, 10);
        assert!(summary.gini < 1e-9);
    }

    #[test]
    fn concentrated_distribution_has_high_gini() {
        let mut sizes = vec![1usize; 99];
        sizes.push(10_000);
        let summary = summarize(&sizes);
        assert!(summary.gini > 0.9, "gini {}", summary.gini);
        assert_eq!(summary.max, 10_000);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let sizes: Vec<usize> = (1..=100).collect();
        let summary = summarize(&sizes);
        assert_eq!(summary.p50, 50);
        assert_eq!(summary.p90, 90);
        assert_eq!(summary.p99, 99);
        assert_eq!(summary.max, 100);
    }

    #[test]
    fn skewed_dataset_has_higher_gini_than_uniform() {
        let (skewed, _) = datasets::generate(DatasetKind::Nell1, 20_000, 3);
        let (uniform, _) = datasets::generate(DatasetKind::Uniform, 20_000, 3);
        let g_skewed = group_summary(&skewed, &[0]).unwrap().gini;
        let g_uniform = group_summary(&uniform, &[0]).unwrap().gini;
        assert!(
            g_skewed > g_uniform + 0.1,
            "nell1 gini {g_skewed:.3} should exceed uniform {g_uniform:.3}"
        );
    }

    #[test]
    fn empty_tensor_summarizes_to_none() {
        let tensor = SparseTensorCoo::new(vec![4, 4]);
        assert!(group_summary(&tensor, &[0]).is_none());
    }

    #[test]
    fn render_mentions_gini() {
        let summary = summarize(&[1, 2, 3]);
        assert!(summary.render().contains("gini"));
    }

    #[test]
    #[should_panic(expected = "empty distribution")]
    fn summarize_rejects_empty() {
        summarize(&[]);
    }
}
