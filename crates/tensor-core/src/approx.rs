//! Floating-point comparison helpers shared by tests across the workspace.

/// True if `a` and `b` agree within `tol`, measured relative to the larger
/// magnitude once values exceed 1 (absolute below that).
pub fn close(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

/// Panics with a descriptive message unless [`close`] holds.
#[track_caller]
pub fn assert_close(a: f64, b: f64, tol: f64) {
    assert!(close(a, b, tol), "values differ: {a} vs {b} (tol {tol})");
}

/// Panics unless every pair in the two slices is [`close`].
#[track_caller]
pub fn assert_slices_close(a: &[f32], b: &[f32], tol: f64) {
    assert_eq!(
        a.len(),
        b.len(),
        "slice length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            close(*x as f64, *y as f64, tol),
            "slices differ at {i}: {x} vs {y} (tol {tol})"
        );
    }
}

/// Largest relative difference between two slices.
pub fn max_rel_diff(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let (x, y) = (*x as f64, *y as f64);
            (x - y).abs() / x.abs().max(y.abs()).max(1.0)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_absolute_for_small_values() {
        assert!(close(0.0, 1e-7, 1e-6));
        assert!(!close(0.0, 1e-3, 1e-6));
    }

    #[test]
    fn close_relative_for_large_values() {
        assert!(close(1e9, 1e9 * (1.0 + 1e-7), 1e-6));
        assert!(!close(1e9, 1.001e9, 1e-6));
    }

    #[test]
    fn max_rel_diff_zero_for_equal() {
        let a = [1.0f32, 2.0, 3.0];
        assert_eq!(max_rel_diff(&a, &a), 0.0);
    }

    #[test]
    #[should_panic(expected = "slices differ at 1")]
    fn assert_slices_close_reports_index() {
        assert_slices_close(&[1.0, 2.0], &[1.0, 3.0], 1e-6);
    }
}
