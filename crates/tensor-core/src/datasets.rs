//! Synthetic stand-ins for the paper's FROSTT datasets (Table IV).
//!
//! The real datasets (brainq, nell2, delicious, nell1; 11M–144M non-zeros)
//! are multi-gigabyte downloads. The performance phenomena the paper measures
//! depend on three structural properties, all of which these generators
//! preserve at a configurable non-zero budget:
//!
//! 1. **Shape** — mode-size *ratios* are kept (brainq stays the "oddly
//!    shaped" `60 × J × 9` tensor, which drives the mode-behaviour
//!    experiment of Fig. 7);
//! 2. **Density** — each dataset keeps its paper density class (brainq
//!    `2.9e-1` dense-ish → high factor-row cache hit rates; nell1 `9.3e-13`
//!    extremely sparse → scattered product-mode indices, the case §V-A says
//!    GPUs handle poorly);
//! 3. **Fiber-length skew** — the NELL/delicious web tensors have power-law
//!    fiber populations, which is what produces the load imbalance and warp
//!    divergence of fiber-centric baselines.
//!
//! Generation is deterministic per seed. If a real FROSTT `.tns` file is on
//! disk, [`crate::io::read_tns`] loads it into the same [`SparseTensorCoo`]
//! type and every kernel accepts it unchanged.

use crate::{Idx, SparseTensorCoo, Val};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Which paper dataset a synthetic tensor imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// fMRI noun × voxel × subject: tiny odd shape, very dense (2.9e-1).
    Brainq,
    /// NELL noun-verb-noun, medium density (2.5e-5), skewed.
    Nell2,
    /// user × item × tag tagging tensor, very sparse (6.1e-12), heavy skew.
    Delicious,
    /// NELL full, extremely sparse (9.3e-13), heaviest skew.
    Nell1,
    /// Uniform random tensor (not in the paper; for tests and ablations).
    Uniform,
}

impl DatasetKind {
    /// The four paper datasets in the order of Table IV's speedup figures.
    pub const PAPER: [DatasetKind; 4] = [
        DatasetKind::Nell1,
        DatasetKind::Delicious,
        DatasetKind::Nell2,
        DatasetKind::Brainq,
    ];

    /// Dataset name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Brainq => "brainq",
            DatasetKind::Nell2 => "nell2",
            DatasetKind::Delicious => "delicious",
            DatasetKind::Nell1 => "nell1",
            DatasetKind::Uniform => "uniform",
        }
    }

    /// The full-size shape from Table IV.
    pub fn paper_shape(self) -> [usize; 3] {
        match self {
            DatasetKind::Brainq => [60, 70_000, 9],
            DatasetKind::Nell2 => [12_092, 9_184, 28_818],
            DatasetKind::Delicious => [532_924, 17_262_471, 2_480_308],
            DatasetKind::Nell1 => [2_902_330, 2_143_368, 25_495_389],
            DatasetKind::Uniform => [1_000, 1_000, 1_000],
        }
    }

    /// The full-size non-zero count from Table IV.
    pub fn paper_nnz(self) -> usize {
        match self {
            DatasetKind::Brainq => 11_000_000,
            DatasetKind::Nell2 => 77_000_000,
            DatasetKind::Delicious => 140_000_000,
            DatasetKind::Nell1 => 144_000_000,
            DatasetKind::Uniform => 1_000_000,
        }
    }

    /// Skew exponent for coordinate sampling (0 = uniform). Larger values
    /// concentrate non-zeros in a power-law head, increasing fiber-length
    /// variance.
    pub fn skew_exponent(self) -> f64 {
        self.skew()
    }

    fn skew(self) -> f64 {
        match self {
            DatasetKind::Brainq => 0.0,
            DatasetKind::Nell2 => 1.2,
            DatasetKind::Delicious => 2.0,
            DatasetKind::Nell1 => 2.5,
            DatasetKind::Uniform => 0.0,
        }
    }
}

/// Metadata describing a generated (or loaded) dataset, for Table IV.
#[derive(Debug, Clone)]
pub struct DatasetInfo {
    /// Dataset name.
    pub name: String,
    /// Shape actually generated.
    pub shape: Vec<usize>,
    /// Non-zeros actually generated.
    pub nnz: usize,
    /// Density of the generated tensor.
    pub density: f64,
    /// The paper's full-size nnz, for scale bookkeeping in EXPERIMENTS.md.
    pub paper_nnz: usize,
    /// Generation seed.
    pub seed: u64,
}

impl DatasetInfo {
    /// Formats a Table IV-style row.
    pub fn table_row(&self) -> String {
        let dims: Vec<String> = self.shape.iter().map(|s| s.to_string()).collect();
        format!(
            "{:<10} order={} modes={:<28} nnz={:<9} density={:.1e}",
            self.name,
            self.shape.len(),
            dims.join("x"),
            self.nnz,
            self.density
        )
    }
}

/// Generates a synthetic tensor imitating `kind`, scaled so that the
/// non-zero count is approximately `nnz_budget` while density and mode-size
/// ratios match the paper values.
///
/// ```
/// use tensor_core::datasets::{generate, DatasetKind};
///
/// let (tensor, info) = generate(DatasetKind::Brainq, 5_000, 42);
/// assert_eq!(tensor.shape()[0], 60); // brainq keeps its odd 60 × J × 9 shape
/// assert_eq!(tensor.shape()[2], 9);
/// assert!(info.density > 0.1); // and its dense-ish character
/// ```
///
/// Returns the tensor (coalesced, canonically sorted) and its metadata.
pub fn generate(kind: DatasetKind, nnz_budget: usize, seed: u64) -> (SparseTensorCoo, DatasetInfo) {
    assert!(nnz_budget >= 16, "nnz budget too small to be meaningful");
    let shape = scaled_shape(kind, nnz_budget);
    let density_target = kind.paper_nnz() as f64
        / kind
            .paper_shape()
            .iter()
            .map(|&s| s as f64)
            .product::<f64>();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_da7a);
    let tensor = if density_target > 0.01 {
        generate_bernoulli(&shape, density_target, &mut rng)
    } else {
        generate_skewed(&shape, nnz_budget, kind.skew(), &mut rng)
    };
    let info = DatasetInfo {
        name: kind.name().to_string(),
        shape: tensor.shape().to_vec(),
        nnz: tensor.nnz(),
        density: tensor.density(),
        paper_nnz: kind.paper_nnz(),
        seed,
    };
    (tensor, info)
}

/// The four paper datasets at a shared non-zero budget.
pub fn paper_datasets(nnz_budget: usize, seed: u64) -> Vec<(SparseTensorCoo, DatasetInfo)> {
    DatasetKind::PAPER
        .iter()
        .enumerate()
        .map(|(i, &kind)| generate(kind, nnz_budget, seed.wrapping_add(i as u64)))
        .collect()
}

/// Computes the scaled shape: keeps exact mode sizes that are already tiny
/// (brainq's 60 and 9), scales the rest so the cell count supports
/// `nnz_budget` at the paper's density.
pub(crate) fn scaled_shape(kind: DatasetKind, nnz_budget: usize) -> Vec<usize> {
    let paper_shape = kind.paper_shape();
    let paper_cells: f64 = paper_shape.iter().map(|&s| s as f64).product();
    let density = kind.paper_nnz() as f64 / paper_cells;
    let target_cells = nnz_budget as f64 / density;
    // Modes small enough to keep verbatim (preserves brainq's odd shape).
    let fixed: Vec<bool> = paper_shape.iter().map(|&s| s <= 128).collect();
    let fixed_cells: f64 = paper_shape
        .iter()
        .zip(&fixed)
        .filter(|(_, &f)| f)
        .map(|(&s, _)| s as f64)
        .product();
    let free_count = fixed.iter().filter(|&&f| !f).count().max(1);
    let free_paper: f64 = paper_shape
        .iter()
        .zip(&fixed)
        .filter(|(_, &f)| !f)
        .map(|(&s, _)| s as f64)
        .product();
    // Shrink each free mode by the same ratio.
    let ratio = ((target_cells / fixed_cells) / free_paper).powf(1.0 / free_count as f64);
    paper_shape
        .iter()
        .zip(&fixed)
        .map(|(&s, &f)| {
            if f {
                s
            } else {
                ((s as f64 * ratio).round() as usize).max(8)
            }
        })
        .collect()
}

/// Dense-ish generator: Bernoulli per cell (only viable when cells is small,
/// which the density > 1% gate guarantees given the nnz budget).
fn generate_bernoulli(shape: &[usize], density: f64, rng: &mut SmallRng) -> SparseTensorCoo {
    let mut tensor = SparseTensorCoo::new(shape.to_vec());
    let mut coord = vec![0 as Idx; shape.len()];
    fill_bernoulli(&mut tensor, shape, density, rng, &mut coord, 0);
    tensor
}

fn fill_bernoulli(
    tensor: &mut SparseTensorCoo,
    shape: &[usize],
    density: f64,
    rng: &mut SmallRng,
    coord: &mut Vec<Idx>,
    mode: usize,
) {
    if mode == shape.len() {
        if rng.gen::<f64>() < density {
            let value = 0.1 + 0.9 * rng.gen::<Val>();
            tensor.push(coord, value);
        }
        return;
    }
    for i in 0..shape[mode] {
        coord[mode] = i as Idx;
        fill_bernoulli(tensor, shape, density, rng, coord, mode + 1);
    }
}

/// Sparse generator: sample coordinates with a power-law head per mode, then
/// dedupe. Oversamples slightly to compensate for duplicates. Works for any
/// tensor order.
fn generate_skewed(
    shape: &[usize],
    nnz_budget: usize,
    skew: f64,
    rng: &mut SmallRng,
) -> SparseTensorCoo {
    let order = shape.len();
    let mut seen: HashSet<Vec<Idx>> = HashSet::with_capacity(nnz_budget * 2);
    let mut tensor = SparseTensorCoo::new(shape.to_vec());
    let attempts_cap = nnz_budget.saturating_mul(8).max(1024);
    let mut attempts = 0usize;
    // Random per-mode permutation offsets so the "head" isn't always index 0.
    let offsets: Vec<u64> = (0..order).map(|_| rng.gen()).collect();
    let mut coord = vec![0 as Idx; order];
    while tensor.nnz() < nnz_budget && attempts < attempts_cap {
        attempts += 1;
        for (m, c) in coord.iter_mut().enumerate() {
            let n = shape[m];
            let u: f64 = rng.gen();
            // u^(1+skew) concentrates mass near zero for skew > 0.
            let raw = (u.powf(1.0 + skew) * n as f64) as usize;
            // Decorrelate the heads of different modes.
            let shuffled = (raw as u64).wrapping_add(offsets[m]) % n as u64;
            *c = shuffled.min(n as u64 - 1) as Idx;
        }
        if seen.insert(coord.clone()) {
            let value = 0.1 + 0.9 * rng.gen::<Val>();
            tensor.push(&coord, value);
        }
    }
    let canonical: Vec<usize> = (0..order).collect();
    tensor.sort_by_mode_order(&canonical);
    tensor
}

/// Generates an arbitrary-order sparse tensor with per-mode power-law skew —
/// the entry point for the paper's "can be extended to higher-order tensors"
/// claims. `skew = 0` gives uniform coordinates.
///
/// # Panics
/// If `shape` is empty or the budget is degenerate.
pub fn generate_norder(
    shape: &[usize],
    nnz_budget: usize,
    skew: f64,
    seed: u64,
) -> SparseTensorCoo {
    assert!(!shape.is_empty(), "tensor needs at least one mode");
    assert!(nnz_budget >= 1, "need a positive non-zero budget");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0c0ffee0);
    generate_skewed(shape, nnz_budget, skew, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brainq_keeps_odd_shape_and_density() {
        let (tensor, info) = generate(DatasetKind::Brainq, 30_000, 1);
        assert_eq!(tensor.shape()[0], 60);
        assert_eq!(tensor.shape()[2], 9);
        // Density class preserved: dense-ish.
        assert!(
            info.density > 0.15,
            "brainq density {} too low",
            info.density
        );
        assert!(info.nnz > 10_000);
    }

    #[test]
    fn nell1_is_much_sparser_than_nell2() {
        let (_, nell1) = generate(DatasetKind::Nell1, 20_000, 2);
        let (_, nell2) = generate(DatasetKind::Nell2, 20_000, 3);
        assert!(nell1.density < nell2.density / 10.0);
    }

    #[test]
    fn density_ordering_matches_paper() {
        let infos: Vec<DatasetInfo> = paper_datasets(15_000, 7)
            .into_iter()
            .map(|(_, info)| info)
            .collect();
        // Paper order: nell1, delicious, nell2, brainq — increasing density.
        for pair in infos.windows(2) {
            assert!(
                pair[0].density < pair[1].density,
                "{} ({:.2e}) should be sparser than {} ({:.2e})",
                pair[0].name,
                pair[0].density,
                pair[1].name,
                pair[1].density
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = generate(DatasetKind::Nell2, 5_000, 42);
        let (b, _) = generate(DatasetKind::Nell2, 5_000, 42);
        assert_eq!(a, b);
        let (c, _) = generate(DatasetKind::Nell2, 5_000, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn skewed_datasets_have_unbalanced_fibers() {
        let (nell1, _) = generate(DatasetKind::Nell1, 30_000, 5);
        let sizes = nell1.group_sizes(&[0, 1]);
        let max = *sizes.iter().max().unwrap();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        // Power-law head: the longest fiber dwarfs the mean.
        assert!(
            max as f64 > 4.0 * mean,
            "expected skew, got max {max} vs mean {mean:.2}"
        );
    }

    #[test]
    fn uniform_dataset_is_balanced() {
        let (uniform, _) = generate(DatasetKind::Uniform, 30_000, 6);
        let sizes = uniform.group_sizes(&[0]);
        let max = *sizes.iter().max().unwrap() as f64;
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(
            max < 3.0 * mean,
            "uniform should be balanced: max {max} mean {mean}"
        );
    }

    #[test]
    fn nnz_close_to_budget_for_sparse_kinds() {
        let budget = 25_000;
        let (tensor, _) = generate(DatasetKind::Delicious, budget, 8);
        assert!(tensor.nnz() >= budget * 9 / 10, "got {}", tensor.nnz());
        assert!(tensor.nnz() <= budget);
    }

    #[test]
    fn values_are_positive_and_bounded() {
        let (tensor, _) = generate(DatasetKind::Nell2, 5_000, 9);
        assert!(tensor.values().iter().all(|&v| (0.1..=1.0).contains(&v)));
    }

    #[test]
    fn no_duplicate_coordinates() {
        let (tensor, _) = generate(DatasetKind::Delicious, 10_000, 10);
        let mut t = tensor.clone();
        t.coalesce();
        assert_eq!(t.nnz(), tensor.nnz());
    }

    #[test]
    fn norder_generator_produces_valid_4_order_tensor() {
        let tensor = generate_norder(&[30, 40, 20, 10], 5_000, 1.0, 3);
        assert_eq!(tensor.order(), 4);
        assert!(tensor.nnz() >= 4_500, "got {}", tensor.nnz());
        // No duplicates.
        let mut copy = tensor.clone();
        copy.coalesce();
        assert_eq!(copy.nnz(), tensor.nnz());
        assert!(tensor.is_sorted_by(&[0, 1, 2, 3]));
    }

    #[test]
    fn norder_generator_is_deterministic() {
        let a = generate_norder(&[8, 8, 8, 8, 8], 1_000, 0.5, 9);
        let b = generate_norder(&[8, 8, 8, 8, 8], 1_000, 0.5, 9);
        assert_eq!(a, b);
        assert_eq!(a.order(), 5);
    }

    #[test]
    fn table_row_mentions_name_and_density() {
        let (_, info) = generate(DatasetKind::Brainq, 20_000, 11);
        let row = info.table_row();
        assert!(row.contains("brainq"));
        assert!(row.contains("density"));
    }
}
