//! Streaming paper-scale synthetic tensor generator.
//!
//! [`datasets::generate`](crate::datasets::generate) materialises the whole
//! tensor in host memory, which caps it at a few million non-zeros. The
//! out-of-core path (`crates/ooc`) exists precisely because FROSTT-scale
//! tensors (11M–144M nnz, Table IV) do **not** fit — so their generator must
//! not either. This module produces the same FROSTT-shaped power-law
//! tensors *block by block*:
//!
//! * Non-zero mass is assigned to mode-0 slices through the closed-form
//!   power-law CDF `F(x) = x^(1/(1+skew))` with cumulative rounding — O(1)
//!   generator state, no per-slice table, exact total count.
//! * Within a slice, trailing coordinates are sampled (mode 1 by stratified
//!   inverse-CDF quantiles, deeper modes independently), then sorted and
//!   deduplicated in a slice-local buffer.
//! * Finished entries are emitted as [`StreamBlock`]s of at most
//!   `block_nnz` entries. Peak host memory is `O(block_nnz + largest
//!   slice)` — independent of the total non-zero count, so a 10M+ nnz
//!   stream runs in a few megabytes of buffer.
//!
//! Blocks arrive in canonical sorted order (ascending mode 0, then the
//! trailing modes), so concatenating them reproduces exactly what
//! [`TensorStream::materialize`] returns. Generation is deterministic per
//! seed: the same spec always yields the same block sequence.

use crate::datasets::DatasetKind;
use crate::{Idx, SparseTensorCoo, Val};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Full description of a streamed synthetic tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// Mode sizes (order ≥ 2).
    pub shape: Vec<usize>,
    /// Target non-zero count. The stream emits at most this many entries
    /// and normally reaches it exactly; very dense slices may fall a few
    /// entries short after deduplication.
    pub nnz: usize,
    /// Power-law skew exponent (0 = uniform coordinates).
    pub skew: f64,
    /// Generation seed.
    pub seed: u64,
    /// Maximum entries per emitted [`StreamBlock`].
    pub block_nnz: usize,
}

/// One contiguous run of generated non-zeros, in canonical sorted order.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBlock {
    /// Tensor order (coordinates per entry).
    pub order: usize,
    /// Flattened coordinates, row-major: entry `t` occupies
    /// `coords[t*order .. (t+1)*order]`.
    pub coords: Vec<Idx>,
    /// One value per entry.
    pub values: Vec<Val>,
}

impl StreamBlock {
    /// Entries in this block.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Coordinate tuple of entry `t`.
    pub fn coord(&self, t: usize) -> &[Idx] {
        &self.coords[t * self.order..(t + 1) * self.order]
    }
}

/// Iterator of [`StreamBlock`]s for a [`StreamSpec`].
#[derive(Debug)]
pub struct TensorStream {
    spec: StreamSpec,
    rng: SmallRng,
    /// Per-mode rotation offsets decorrelating the power-law heads.
    offsets: Vec<u64>,
    /// Next mode-0 slice to generate.
    next_slice: usize,
    /// Σ slice masses consumed so far (cumulative-rounding state).
    cum_mass: f64,
    /// Entries allocated to slices so far.
    allocated: usize,
    /// Entries actually emitted (can trail `allocated` after dedup loss).
    emitted: usize,
    /// Carry buffer between blocks (flattened coords + values).
    buf_coords: Vec<Idx>,
    buf_values: Vec<Val>,
    /// Largest buffer population observed, in entries (memory telemetry).
    peak_buffered: usize,
}

impl TensorStream {
    /// Builds a stream for an explicit spec.
    ///
    /// # Panics
    /// If the shape has fewer than two modes, or counts are degenerate.
    pub fn new(spec: StreamSpec) -> Self {
        assert!(spec.shape.len() >= 2, "stream needs at least two modes");
        assert!(spec.shape.iter().all(|&s| s > 0), "empty mode");
        assert!(spec.nnz > 0, "need a positive non-zero target");
        assert!(spec.block_nnz > 0, "need a positive block size");
        let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x57ea_11b1_0c4e_ed00);
        let offsets = (0..spec.shape.len()).map(|_| rng.gen()).collect();
        TensorStream {
            spec,
            rng,
            offsets,
            next_slice: 0,
            cum_mass: 0.0,
            allocated: 0,
            emitted: 0,
            buf_coords: Vec::new(),
            buf_values: Vec::new(),
            peak_buffered: 0,
        }
    }

    /// The spec this stream was built from.
    pub fn spec(&self) -> &StreamSpec {
        &self.spec
    }

    /// Entries emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Largest number of entries ever resident in the carry buffer — the
    /// stream's peak host-memory footprint in entries.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Drains the whole stream into a materialised tensor (tests and
    /// small-scale convenience; defeats the purpose at paper scale).
    pub fn materialize(mut self) -> SparseTensorCoo {
        let mut tensor = SparseTensorCoo::new(self.spec.shape.clone());
        let order = self.spec.shape.len();
        let mut coord = vec![0 as Idx; order];
        for block in &mut self {
            for t in 0..block.nnz() {
                coord.copy_from_slice(block.coord(t));
                tensor.push(&coord, block.values[t]);
            }
        }
        tensor
    }

    /// Number of entries the cumulative-rounding allocator gives slice `i`.
    fn slice_count(&mut self, i: usize) -> usize {
        let n0 = self.spec.shape[0];
        let remaining = self.spec.nnz - self.allocated;
        let count = if i + 1 == n0 {
            remaining
        } else {
            // Rotate which physical slice carries the power-law head.
            let rank = ((i as u64).wrapping_add(self.offsets[0]) % n0 as u64) as f64;
            let alpha = 1.0 / (1.0 + self.spec.skew);
            let mass = ((rank + 1.0) / n0 as f64).powf(alpha) - (rank / n0 as f64).powf(alpha);
            self.cum_mass += mass;
            let target = (self.cum_mass * self.spec.nnz as f64).floor() as usize;
            target.saturating_sub(self.allocated).min(remaining)
        };
        // A slice cannot hold more distinct entries than it has cells.
        let cells: usize = self.spec.shape[1..]
            .iter()
            .try_fold(1usize, |a, &s| a.checked_mul(s))
            .unwrap_or(usize::MAX);
        let count = count.min(cells);
        self.allocated += count;
        count
    }

    /// Generates slice `i`'s entries (sorted by trailing coordinates,
    /// deduplicated) and appends them to the carry buffer.
    fn generate_slice(&mut self, i: usize, count: usize) {
        if count == 0 {
            return;
        }
        let order = self.spec.shape.len();
        let pow = 1.0 + self.spec.skew;
        let mut tails: Vec<Vec<Idx>> = Vec::with_capacity(count);
        // Dedup can lose entries; top up a few rounds, then accept the
        // shortfall (only near-full slices ever hit the cap).
        for round in 0..4 {
            if tails.len() >= count {
                break;
            }
            let need = count - tails.len();
            let batch = if round == 0 {
                need
            } else {
                need.saturating_mul(2)
            };
            for t in 0..batch {
                let mut tail = Vec::with_capacity(order - 1);
                for (m, &n) in self.spec.shape.iter().enumerate().skip(1) {
                    let u: f64 = if m == 1 && round == 0 {
                        // Stratified quantiles spread mode-1 fibers evenly
                        // across the power-law CDF within the slice.
                        (t as f64 + self.rng.gen::<f64>()) / batch as f64
                    } else {
                        self.rng.gen()
                    };
                    let raw = (u.powf(pow) * n as f64) as u64;
                    let rotated = raw.wrapping_add(self.offsets[m]) % n as u64;
                    tail.push(rotated.min(n as u64 - 1) as Idx);
                }
                tails.push(tail);
            }
            tails.sort_unstable();
            tails.dedup();
        }
        tails.truncate(count);
        tails.sort_unstable();
        for tail in &tails {
            self.buf_coords.push(i as Idx);
            self.buf_coords.extend_from_slice(tail);
            self.buf_values.push(0.1 + 0.9 * self.rng.gen::<Val>());
        }
        self.emitted += tails.len();
    }
}

impl Iterator for TensorStream {
    type Item = StreamBlock;

    fn next(&mut self) -> Option<StreamBlock> {
        let order = self.spec.shape.len();
        while self.buf_values.len() < self.spec.block_nnz && self.next_slice < self.spec.shape[0] {
            let i = self.next_slice;
            self.next_slice += 1;
            let count = self.slice_count(i);
            self.generate_slice(i, count);
            self.peak_buffered = self.peak_buffered.max(self.buf_values.len());
        }
        if self.buf_values.is_empty() {
            return None;
        }
        let take = self.buf_values.len().min(self.spec.block_nnz);
        let rest_values = self.buf_values.split_off(take);
        let rest_coords = self.buf_coords.split_off(take * order);
        let block = StreamBlock {
            order,
            coords: std::mem::replace(&mut self.buf_coords, rest_coords),
            values: std::mem::replace(&mut self.buf_values, rest_values),
        };
        Some(block)
    }
}

/// Default block size: 64K entries ≈ 1 MiB of coordinates+values for an
/// order-3 tensor.
pub const DEFAULT_BLOCK_NNZ: usize = 64 * 1024;

/// Streams a synthetic tensor imitating `kind` at `nnz_budget` non-zeros,
/// with the same scaled shape and skew class as
/// [`datasets::generate`](crate::datasets::generate).
pub fn stream(kind: DatasetKind, nnz_budget: usize, seed: u64) -> TensorStream {
    assert!(nnz_budget >= 16, "nnz budget too small to be meaningful");
    TensorStream::new(StreamSpec {
        shape: crate::datasets::scaled_shape(kind, nnz_budget),
        nnz: nnz_budget,
        skew: kind.skew_exponent(),
        seed,
        block_nnz: DEFAULT_BLOCK_NNZ,
    })
}

/// Streams `kind` at its full Table IV scale — the paper's actual non-zero
/// count over the paper's actual mode sizes (11M–144M entries). Host memory
/// stays bounded by the block size plus the head slice.
pub fn stream_paper_scale(kind: DatasetKind, seed: u64) -> TensorStream {
    TensorStream::new(StreamSpec {
        shape: kind.paper_shape().to_vec(),
        nnz: kind.paper_nnz(),
        skew: kind.skew_exponent(),
        seed,
        block_nnz: DEFAULT_BLOCK_NNZ,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(nnz: usize, block: usize, skew: f64, seed: u64) -> StreamSpec {
        StreamSpec {
            shape: vec![40, 50, 30],
            nnz,
            skew,
            seed,
            block_nnz: block,
        }
    }

    #[test]
    fn blocks_respect_the_cap_and_cover_the_budget() {
        let stream = TensorStream::new(small_spec(5_000, 256, 1.2, 3));
        let mut total = 0usize;
        for block in stream {
            assert!(block.nnz() <= 256);
            assert!(block.nnz() > 0);
            total += block.nnz();
        }
        assert!(total >= 4_500, "got {total}");
        assert!(total <= 5_000);
    }

    #[test]
    fn concatenated_blocks_are_canonically_sorted_and_distinct() {
        let tensor = TensorStream::new(small_spec(4_000, 333, 2.0, 7)).materialize();
        assert!(tensor.is_sorted_by(&[0, 1, 2]));
        let mut copy = tensor.clone();
        copy.coalesce();
        assert_eq!(copy.nnz(), tensor.nnz(), "duplicates survived");
        assert!(tensor.values().iter().all(|&v| (0.1..=1.0).contains(&v)));
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let a: Vec<StreamBlock> = TensorStream::new(small_spec(3_000, 100, 1.5, 11)).collect();
        let b: Vec<StreamBlock> = TensorStream::new(small_spec(3_000, 100, 1.5, 11)).collect();
        assert_eq!(a, b);
        let c: Vec<StreamBlock> = TensorStream::new(small_spec(3_000, 100, 1.5, 12)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn skew_concentrates_mass_in_a_head_slice() {
        let tensor = TensorStream::new(StreamSpec {
            shape: vec![200, 300, 300],
            nnz: 20_000,
            skew: 2.5,
            seed: 5,
            block_nnz: 4_096,
        })
        .materialize();
        let sizes = tensor.group_sizes(&[0]);
        let max = sizes.iter().copied().max().unwrap_or(0) as f64;
        let mean = tensor.nnz() as f64 / sizes.len() as f64;
        assert!(max > 4.0 * mean, "expected skew, max {max} mean {mean:.1}");
    }

    #[test]
    fn frostt_kind_stream_matches_generate_shape() {
        let s = stream(DatasetKind::Nell2, 10_000, 9);
        let (t, _) = crate::datasets::generate(DatasetKind::Nell2, 10_000, 9);
        assert_eq!(s.spec().shape, t.shape());
    }

    #[test]
    fn buffering_stays_bounded_relative_to_total() {
        let mut s = TensorStream::new(StreamSpec {
            shape: vec![500, 400, 400],
            nnz: 200_000,
            skew: 1.2,
            seed: 21,
            block_nnz: 2_048,
        });
        let mut total = 0usize;
        for block in &mut s {
            total += block.nnz();
        }
        assert!(total >= 180_000, "got {total}");
        // Peak buffer ≪ total: the stream never holds the tensor.
        assert!(
            s.peak_buffered() < total / 10,
            "peak {} vs total {total}",
            s.peak_buffered()
        );
    }

    /// Paper-scale smoke: 10M non-zeros streamed with bounded memory.
    /// Ignored in the default test run (seconds of work); `tensortool
    /// oocbench` exercises the same path in release in CI.
    #[test]
    #[ignore = "paper-scale; run explicitly or via tensortool oocbench"]
    fn ten_million_nnz_stream_with_bounded_buffer() {
        let mut s = stream(DatasetKind::Nell2, 10_000_000, 1);
        let mut total = 0usize;
        for block in &mut s {
            total += block.nnz();
        }
        assert!(total >= 9_500_000, "got {total}");
        assert!(
            s.peak_buffered() < 4 * DEFAULT_BLOCK_NNZ + total / 50,
            "peak {} not bounded",
            s.peak_buffered()
        );
    }
}
