//! Context-aware tag recommendation from a delicious-like user × item × tag
//! tensor — the recommender-system workload the paper's introduction
//! motivates (tensor methods in recommender systems [7]).
//!
//! A CP decomposition on the simulated GPU factorizes the tagging history;
//! the factors then score unseen (user, item, tag) triples, and the example
//! prints the top tags predicted for a (user, item) pair.
//!
//! Run with: `cargo run --release --example context_recommender`

use unified_tensors::prelude::*;

fn main() {
    // A scaled delicious-like tagging tensor.
    let (tensor, info) = datasets::generate(DatasetKind::Delicious, 30_000, 11);
    println!("tagging history: {}", info.table_row());

    let opts = CpOptions {
        rank: 16,
        max_iters: 8,
        tol: 1e-6,
        seed: 5,
    };
    let mut engine =
        UnifiedGpuEngine::new(GpuDevice::titan_x(), &tensor, 8, LaunchConfig::default())
            .expect("tensor fits on the device");
    let run = cp_als(&tensor, &mut engine, &opts);
    println!(
        "CP rank-{} factorization: fit {:.3} in {} iterations ({:.1} ms simulated GPU time)\n",
        opts.rank,
        run.fit,
        run.iterations,
        run.total_us() / 1e3
    );

    // Pick the user and item with the most observed activity.
    let user = busiest_index(&tensor, 0);
    let item = busiest_index(&tensor, 1);
    let num_tags = tensor.shape()[2];

    // Score every tag for (user, item) from the factors and rank them.
    let mut scores: Vec<(usize, f32)> = (0..num_tags)
        .map(|tag| {
            (
                tag,
                run.model.predict(&[user as u32, item as u32, tag as u32]),
            )
        })
        .collect();
    scores.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("top 10 recommended tags for user {user}, item {item}:");
    for (rank, (tag, score)) in scores.iter().take(10).enumerate() {
        println!("  {:>2}. tag {:>7}  score {score:.4}", rank + 1, tag);
    }

    // Sanity: tags the user actually used should score above the median.
    let median = scores[scores.len() / 2].1;
    let mut observed = Vec::new();
    for (coord, _) in tensor.iter() {
        if coord[0] as usize == user {
            observed.push(run.model.predict(&coord));
        }
    }
    let above = observed.iter().filter(|&&s| s > median).count();
    println!(
        "\n{} of {} of user {user}'s observed interactions score above the median tag — \
         the factorization carries signal",
        above,
        observed.len()
    );
}

/// The index with the most non-zeros along `mode`.
fn busiest_index(tensor: &SparseTensorCoo, mode: usize) -> usize {
    let mut counts = vec![0usize; tensor.shape()[mode]];
    for &index in tensor.mode_indices(mode) {
        counts[index as usize] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}
