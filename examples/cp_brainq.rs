//! CP decomposition of a brainq-like fMRI tensor (noun × voxel × subject),
//! comparing the paper's unified-GPU implementation against SPLATT on the
//! CPU — a miniature of the paper's Fig. 10 experiment.
//!
//! Run with: `cargo run --release --example cp_brainq`

use unified_tensors::prelude::*;

fn main() {
    let (tensor, info) = datasets::generate(DatasetKind::Brainq, 60_000, 7);
    println!("dataset: {}", info.table_row());
    // Rank 8, like the paper (brainq's third mode has size 9, so larger
    // ranks would produce a deficient Gram matrix — §V-E).
    let opts = CpOptions {
        rank: 8,
        max_iters: 10,
        tol: 1e-6,
        seed: 3,
    };

    println!("\n== SPLATT (CSF, CPU pool) ==");
    let mut splatt = SplattEngine::new(&tensor);
    let splatt_run = cp_als(&tensor, &mut splatt, &opts);
    report(&splatt_run);

    println!("\n== Unified (F-COO, simulated Titan X) ==");
    let mut unified =
        UnifiedGpuEngine::new(GpuDevice::titan_x(), &tensor, 16, LaunchConfig::default())
            .expect("brainq fits on the device");
    let unified_run = cp_als(&tensor, &mut unified, &opts);
    report(&unified_run);

    println!(
        "\nunified/splatt total time ratio: {:.2}x (CPU wall-clock vs simulated GPU µs)",
        splatt_run.total_us() / unified_run.total_us()
    );
    println!(
        "fits agree to {:.2e} (same algorithm, different engines)",
        (splatt_run.fit - unified_run.fit).abs()
    );
}

fn report(run: &CpRun) {
    println!(
        "engine {:<12} fit {:.4} after {} iterations",
        run.engine, run.fit, run.iterations
    );
    for (mode, &time) in run.mode_us.iter().enumerate() {
        println!("  mode-{} MTTKRP total: {:>10.1} µs", mode + 1, time);
    }
    println!("  other (dense ops):   {:>10.1} µs", run.other_us);
    println!("  total:               {:>10.1} µs", run.total_us());
    let max = run.mode_us.iter().copied().fold(0.0f64, f64::max);
    let min = run.mode_us.iter().copied().fold(f64::INFINITY, f64::min);
    println!("  mode balance (max/min): {:.2}", max / min);
}
