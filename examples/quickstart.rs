//! Quickstart: build a sparse tensor, preprocess it into F-COO, and run the
//! two headline kernels (SpTTM and SpMTTKRP) on the simulated Titan X,
//! checking both against the sequential references.
//!
//! Run with: `cargo run --release --example quickstart`

use unified_tensors::prelude::*;

fn main() {
    // A small NELL-like noun × verb × noun tensor.
    let (tensor, info) = datasets::generate(DatasetKind::Nell2, 20_000, 42);
    println!("dataset: {}", info.table_row());

    let device = GpuDevice::titan_x();
    println!("device:  {}\n", device.config().name);
    let rank = 16;

    // --- SpTTM on mode 3 (paper Eq. 3) -----------------------------------
    let u_host = DenseMatrix::random(tensor.shape()[2], rank, 7);
    let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpTtm { mode: 2 }, 8);
    println!(
        "F-COO for SpTTM: {} nnz → {} segments, {:.1} KiB ({} B/nnz core model)",
        fcoo.nnz(),
        fcoo.segments(),
        fcoo.storage().total_bytes() as f64 / 1024.0,
        fcoo.storage().paper_model_bytes() / fcoo.nnz(),
    );
    let on_device = FcooDevice::upload(device.memory(), &fcoo).expect("upload");
    let u = DeviceMatrix::upload(device.memory(), &u_host).expect("upload");
    let (result, stats) =
        unified_tensors::fcoo::spttm(&device, &on_device, &u, &LaunchConfig::default())
            .expect("SpTTM");
    let reference = unified_tensors::tensor_core::ops::spttm(&tensor, 2, &u_host);
    let diff = result
        .max_abs_diff(&reference)
        .expect("fiber sets must match");
    println!(
        "SpTTM(mode-3):    {:>9.1} µs simulated | {} fibers × {rank} | max |Δ| vs reference {diff:.2e}",
        stats.time_us,
        result.nfibs(),
    );

    // --- SpMTTKRP on mode 1 (paper Eq. 6), one-shot -----------------------
    let factor_hosts: Vec<DenseMatrix> = tensor
        .shape()
        .iter()
        .enumerate()
        .map(|(m, &n)| DenseMatrix::random(n, rank, 100 + m as u64))
        .collect();
    let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpMttkrp { mode: 0 }, 8);
    let on_device = FcooDevice::upload(device.memory(), &fcoo).expect("upload");
    let factors: Vec<DeviceMatrix> = factor_hosts
        .iter()
        .map(|f| DeviceMatrix::upload(device.memory(), f).expect("upload"))
        .collect();
    let refs: Vec<&DeviceMatrix> = factors.iter().collect();
    let (m, stats) =
        unified_tensors::fcoo::spmttkrp(&device, &on_device, &refs, &LaunchConfig::default())
            .expect("SpMTTKRP");
    let host_refs: Vec<&DenseMatrix> = factor_hosts.iter().collect();
    let reference = unified_tensors::tensor_core::ops::spmttkrp(&tensor, 0, &host_refs);
    println!(
        "SpMTTKRP(mode-1): {:>9.1} µs simulated | output {}×{} | max |Δ| vs reference {:.2e}",
        stats.time_us,
        m.rows(),
        m.cols(),
        m.max_abs_diff(&reference),
    );
    println!(
        "                  read-only cache hit rate {:.1}%, {} atomics (scan removed the rest)",
        100.0 * stats.rocache_hit_rate,
        stats.atomics,
    );
    println!(
        "\nGPU memory in use: {:.1} MiB",
        device.memory().live_bytes() as f64 / (1 << 20) as f64
    );
}
