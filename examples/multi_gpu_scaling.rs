//! Multi-GPU strong scaling of SpMTTKRP (paper §IV-D: "For very large
//! tensors, multiple-GPUs can be used") plus the preprocessing cache:
//! F-COO is built once, serialized, reloaded, and the non-zeros are split
//! across 1–4 simulated Titan X cards.
//!
//! Run with: `cargo run --release --example multi_gpu_scaling`

use unified_tensors::fcoo::{read_fcoo, spmttkrp_multi_gpu, write_fcoo};
use unified_tensors::prelude::*;

fn main() {
    let (tensor, info) = datasets::generate(DatasetKind::Nell2, 150_000, 21);
    println!("dataset: {}", info.table_row());
    let rank = 16;
    let hosts: Vec<DenseMatrix> = tensor
        .shape()
        .iter()
        .enumerate()
        .map(|(m, &n)| DenseMatrix::random(n, rank, 300 + m as u64))
        .collect();
    let refs: Vec<&DenseMatrix> = hosts.iter().collect();

    // Preprocess once, persist, reload — the cache a production pipeline
    // would keep next to the tensor file.
    let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpMttkrp { mode: 0 }, 16);
    let mut cache = Vec::new();
    write_fcoo(&fcoo, &mut cache).expect("serialize");
    let reloaded = read_fcoo(cache.as_slice()).expect("deserialize");
    println!(
        "preprocessed F-COO: {} segments, {:.1} KiB serialized (COO would be {:.1} KiB)\n",
        reloaded.segments(),
        cache.len() as f64 / 1024.0,
        tensor.storage_bytes() as f64 / 1024.0,
    );

    // Reference result for validation.
    let reference = unified_tensors::tensor_core::ops::spmttkrp(&tensor, 0, &refs);

    println!("SpMTTKRP(mode-1) rank {rank}, strong scaling:");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>8}",
        "GPUs", "slowest", "reduce", "elapsed", "speedup"
    );
    let mut single = 0.0f64;
    for device_count in [1usize, 2, 4] {
        let devices: Vec<GpuDevice> = (0..device_count).map(|_| GpuDevice::titan_x()).collect();
        let (result, stats) =
            spmttkrp_multi_gpu(&devices, &tensor, 0, &refs, 16, &LaunchConfig::default())
                .expect("fits on each card");
        let diff = result.max_abs_diff(&reference);
        assert!(diff < 1e-2, "multi-GPU result diverged: {diff}");
        let slowest = stats.per_device_us.iter().copied().fold(0.0f64, f64::max);
        if device_count == 1 {
            single = stats.elapsed_us;
        }
        println!(
            "{:>6} {:>10.1}µs {:>10.1}µs {:>8.1}µs {:>7.2}x",
            device_count,
            slowest,
            stats.reduce_us,
            stats.elapsed_us,
            single / stats.elapsed_us,
        );
    }
    println!("\n(the partial-output reduction over the interconnect bounds the scaling,");
    println!(" which is why the paper reserves multi-GPU for tensors that do not fit one card)");
}
