//! Tucker decomposition via HOOI on the unified SpTTMc kernel — the
//! extension the paper sketches in §IV-D ("A similar approach can be used to
//! implement Tucker using unified").
//!
//! Builds a noisy low-multilinear-rank tensor, recovers the factors and the
//! explicit core on the simulated GPU, and reports fit and reconstruction
//! quality.
//!
//! Run with: `cargo run --release --example tucker_hooi`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use unified_tensors::prelude::*;

fn main() {
    // Plant a rank-(3,2,2) tensor with 2% relative noise.
    let shape = [40usize, 30, 20];
    let ranks = [3usize, 2, 2];
    let mut rng = SmallRng::seed_from_u64(7);
    let factors: Vec<DenseMatrix> = shape
        .iter()
        .zip(&ranks)
        .map(|(&n, &r)| DenseMatrix::from_fn(n, r, |_, _| rng.gen::<f32>() - 0.5))
        .collect();
    let core_len = ranks.iter().product::<usize>();
    let core: Vec<f32> = (0..core_len).map(|_| rng.gen::<f32>() + 0.5).collect();
    let mut tensor = SparseTensorCoo::new(shape.to_vec());
    for i in 0..shape[0] {
        for j in 0..shape[1] {
            for k in 0..shape[2] {
                let mut value = 0.0f32;
                for (g, &cv) in core.iter().enumerate() {
                    let (p, q, r) = (g / 4, (g / 2) % 2, g % 2);
                    value +=
                        cv * factors[0].get(i, p) * factors[1].get(j, q) * factors[2].get(k, r);
                }
                value *= 1.0 + 0.02 * (rng.gen::<f32>() - 0.5);
                if value.abs() > 1e-4 {
                    tensor.push(&[i as u32, j as u32, k as u32], value);
                }
            }
        }
    }
    println!(
        "tensor: {:?}, {} nnz (noisy multilinear rank {:?})",
        tensor.shape(),
        tensor.nnz(),
        ranks
    );

    let device = GpuDevice::titan_x();
    let model = tucker_hooi(
        &device,
        &tensor,
        &TuckerOptions {
            ranks: ranks.to_vec(),
            max_iters: 8,
            seed: 3,
        },
    )
    .expect("fits on device");

    println!("HOOI fit: {:.4} (1.0 = exact)", model.fit());
    println!(
        "core: {}x{} matricized, ‖G‖ = {:.3}",
        model.core.rows(),
        model.core.cols(),
        model.core_norm
    );
    for (mode, factor) in model.factors.iter().enumerate() {
        let gram = factor.gram();
        let max_off = (0..gram.rows())
            .flat_map(|a| (0..gram.cols()).map(move |b| (a, b)))
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| gram.get(a, b).abs())
            .fold(0.0f32, f32::max);
        println!(
            "factor {}: {}x{}, max off-diagonal of AᵀA = {:.2e} (orthonormal)",
            mode + 1,
            factor.rows(),
            factor.cols(),
            max_off
        );
    }

    // Reconstruction check on the stored entries.
    let mut worst = 0.0f64;
    for (coord, value) in tensor.iter() {
        let predicted = model.predict(&coord);
        worst = worst.max(((predicted - value) as f64).abs() / (value.abs().max(0.05) as f64));
    }
    println!("worst relative reconstruction error over non-zeros: {worst:.3}");
}
