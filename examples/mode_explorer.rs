//! Mode behaviour on the "oddly shaped" brainq tensor (60 × J × 9) — a
//! runnable miniature of the paper's Fig. 7: the unified method's running
//! time stays flat across modes, while the fiber-centric ParTI-GPU baseline
//! and tree-based SPLATT swing with the mode.
//!
//! Run with: `cargo run --release --example mode_explorer`

use unified_tensors::prelude::*;

fn main() {
    let (tensor, info) = datasets::generate(DatasetKind::Brainq, 40_000, 3);
    println!("dataset: {}\n", info.table_row());
    let rank = 16;
    let device = GpuDevice::titan_x();
    let factor_hosts: Vec<DenseMatrix> = tensor
        .shape()
        .iter()
        .enumerate()
        .map(|(m, &n)| DenseMatrix::random(n, rank, 200 + m as u64))
        .collect();
    let host_refs: Vec<&DenseMatrix> = factor_hosts.iter().collect();

    println!("SpMTTKRP (rank {rank}), time per mode:");
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "", "mode-1", "mode-2", "mode-3"
    );

    // Unified (simulated GPU).
    let mut unified_times = Vec::new();
    for mode in 0..3 {
        let fcoo = Fcoo::from_coo(&tensor, TensorOp::SpMttkrp { mode }, 16);
        let on_device = FcooDevice::upload(device.memory(), &fcoo).expect("upload");
        let factors: Vec<DeviceMatrix> = factor_hosts
            .iter()
            .map(|f| DeviceMatrix::upload(device.memory(), f).expect("upload"))
            .collect();
        let refs: Vec<&DeviceMatrix> = factors.iter().collect();
        let (_, stats) =
            unified_tensors::fcoo::spmttkrp(&device, &on_device, &refs, &LaunchConfig::default())
                .expect("kernel");
        unified_times.push(stats.time_us);
    }
    print_row("unified", &unified_times);

    // ParTI-GPU (two-step with intermediate + atomics).
    let mut parti_times = Vec::new();
    for mode in 0..3 {
        let (_, stats, _) =
            spmttkrp_two_step_gpu(&device, &tensor, mode, &host_refs).expect("ParTI kernel");
        parti_times.push(stats.time_us);
    }
    print_row("ParTI-GPU", &parti_times);

    // SPLATT (CSF trees on the CPU pool; wall-clock µs).
    let mut splatt_times = Vec::new();
    for mode in 0..3 {
        let csf = Csf::build(&tensor, mode);
        let (_, elapsed) = mttkrp_csf(&csf, &host_refs);
        splatt_times.push(elapsed);
    }
    print_row("SPLATT", &splatt_times);

    println!("\nmode-variation (max/min time across modes; 1.0 = perfectly mode-insensitive):");
    for (name, times) in [
        ("unified", &unified_times),
        ("ParTI-GPU", &parti_times),
        ("SPLATT", &splatt_times),
    ] {
        let max = times.iter().copied().fold(0.0f64, f64::max);
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        println!("  {name:<10} {:.2}", max / min);
    }
}

fn print_row(name: &str, times: &[f64]) {
    println!(
        "{:<12} {:>9.1} µs {:>9.1} µs {:>9.1} µs",
        name, times[0], times[1], times[2]
    );
}
