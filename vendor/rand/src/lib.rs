//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the tiny subset of the `rand 0.8` API the workspace actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! sampling methods `gen`, `gen_range` and `gen_bool`. Streams differ from
//! upstream `rand` (this is a xoshiro256** generator seeded via SplitMix64),
//! which is fine for every caller in this repository: seeds only pin
//! determinism, never exact values.

#![forbid(unsafe_code)]

/// Random number generators.
pub mod rngs {
    /// A small, fast, non-cryptographic PRNG (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        pub(crate) state: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn next_raw(&mut self) -> u64 {
            let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }
    }
}

/// Seeding support (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        rngs::SmallRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }
}

/// Core sampling interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

/// Types samplable uniformly over their full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open `start..end` range.
pub trait SampleUniform: Sized {
    /// Draws one value in `[start, end)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// The user-facing sampling methods (`rand::Rng` subset).
pub trait Rng: RngCore {
    /// Samples a value of `T` over its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(7);
            (0..8).map(|_| rng.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(7);
            (0..8).map(|_| rng.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        let mut rng = SmallRng::seed_from_u64(8);
        let c: Vec<u64> = (0..8).map(|_| rng.gen::<u64>()).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let n = rng.gen_range(-5i64..-1);
            assert!((-5..-1).contains(&n));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
