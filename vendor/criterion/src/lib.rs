//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_with_input`,
//! `BenchmarkId`, `black_box`) with a minimal runner: each benchmark closure
//! executes a handful of timed iterations and the mean wall-clock time is
//! printed. There is no statistical analysis, HTML report, or CLI parsing.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id `"{function}/{parameter}"`.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        let function_name = function_name.into();
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a small fixed number of iterations.
    // Vendored benchmark harness: measuring host wall-clock is its whole
    // purpose, so the workspace `disallowed-methods` ban does not apply.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed in this stand-in.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; no warm-up is performed.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark identified by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.iterations,
            f,
        );
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.iterations,
            |b| f(b, input),
        );
        self
    }

    /// Finishes the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Throughput declaration, accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iterations: u64, mut f: F) {
    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = if bencher.iterations == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iterations as u32
    };
    println!("bench {label:60} {per_iter:>12.2?}/iter");
}

/// Benchmark driver.
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // One timed iteration per bench: enough to prove the bench code runs
        // (these also execute under `cargo test --benches`), cheap enough not
        // to dominate CI time.
        Criterion { iterations: 1 }
    }
}

impl Criterion {
    /// Accepted for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.iterations, f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(10).warm_up_time(Duration::from_millis(1));
            group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
                b.iter(|| {
                    ran += 1;
                    x * 2
                })
            });
            group.finish();
        }
        assert!(ran >= 1);
    }
}
