//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API (the
//! subset this workspace uses: [`Mutex::lock`] returning a guard directly,
//! and [`Condvar::wait`]/[`Condvar::notify_all`]). Poisoned locks are
//! recovered rather than propagated, matching `parking_lot`'s semantics of
//! not poisoning at all.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// The inner `Option` is only ever `None` transiently inside
/// [`Condvar::wait`], where the std condvar consumes the guard and hands
/// back a new one.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded lock and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let held = guard
            .inner
            .take()
            .expect("guard present outside Condvar::wait");
        guard.inner = Some(
            self.inner
                .wait(held)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }
}
