//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro, numeric-range / vec / tuple / bool / string
//! strategies, `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and
//! [`ProptestConfig::with_cases`]. Cases are generated from a fixed seed per
//! test (deterministic across runs); there is no shrinking — the failing
//! input is printed instead via the case's `Debug` representation.

#![forbid(unsafe_code)]

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; the case is skipped.
    Reject,
    /// `prop_assert!`/`prop_assert_eq!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
            TestCaseError::Fail(message) => write!(f, "{message}"),
        }
    }
}

/// Deterministic generator used to produce test cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; test runners derive the seed from the test name
    /// so distinct tests explore distinct streams.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seed derived from a test's name via FNV-1a.
    pub fn from_name(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(hash)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator: the stand-in for proptest's `Strategy` trait.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_strategy_float_range!(f32, f64);

/// String strategies: a `&str` used as a strategy is treated as a regex in
/// real proptest. This stand-in supports the one shape the workspace uses —
/// `.{lo,hi}` (arbitrary text with a length range) — and falls back to
/// arbitrary text up to 64 chars for any other pattern.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repetition(self).unwrap_or((0, 64));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| {
                // Bias toward characters that stress text parsers: ASCII
                // (printable + controls) most of the time, occasional
                // arbitrary unicode.
                match rng.below(8) {
                    0 => char::from(rng.below(32) as u8),          // control chars
                    1..=5 => char::from(32 + rng.below(95) as u8), // printable
                    6 => ['\n', '\t', '\r', ' ', '-', '.', 'e'][rng.below(7) as usize],
                    _ => char::from_u32(rng.below(0x1_0000) as u32).unwrap_or('\u{fffd}'),
                }
            })
            .collect()
    }
}

fn parse_dot_repetition(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy generating `Vec`s whose elements come from `element` and
    /// whose length is drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing arbitrary booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body; failures report the case
/// rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Each function body runs once per generated case;
/// `prop_assert!` failures report the offending inputs.
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    { config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )* } => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            $(let $arg = $strategy;)*
            let strategies = ($(&$arg,)*);
            #[allow(unused_variables, unused_mut)]
            let mut run_case = |rng: &mut $crate::TestRng| -> ::core::result::Result<(), $crate::TestCaseError> {
                let ($($arg,)*) = strategies;
                $(let $arg = $crate::Strategy::generate($arg, rng);)*
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)*),
                    $(&$arg),*
                );
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        ::core::result::Result::Err($crate::TestCaseError::Fail(
                            format!("{message}\n  case inputs: {inputs}"),
                        ))
                    }
                    other => other,
                }
            };
            let mut ran = 0u32;
            let mut attempts = 0u32;
            while ran < config.cases && attempts < config.cases.saturating_mul(20).max(20) {
                attempts += 1;
                match run_case(&mut rng) {
                    ::core::result::Result::Ok(()) => ran += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::core::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!("property failed after {} cases: {}", ran, message);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -1.5f32..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_assume(pair in (0i64..100, 0i64..100)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }

        #[test]
        fn strings_have_bounded_length(s in ".{0,40}") {
            prop_assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        // No `#[test]` on the inner function: it is nested inside this test
        // and called directly, and rustc cannot register inner items anyway.
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        let result = std::panic::catch_unwind(always_fails);
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("case inputs"), "message: {message}");
    }
}
